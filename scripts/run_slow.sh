#!/usr/bin/env bash
# Run the FULL test suite, including tests marked @pytest.mark.slow
# (multi-worker determinism checks and other long-running cases) that
# the tier-1 command (`pytest -x -q`) skips via pyproject's addopts.
#
# Usage: scripts/run_slow.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m pytest -q -m "slow or not slow" "$@"
