#!/usr/bin/env bash
# Run the self-hosted static-analysis suite (`repro lint`) over the
# source tree.  Exit code 0 = clean, 1 = violations, 2 = usage error.
#
# Usage: scripts/lint.sh [paths...] [--format json] [--select RULE-ID ...]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m repro lint "$@"
