"""Telemetry overhead guard: disabled telemetry must not tax the engine.

The engine's event loop is the hottest path in the repo (the figure
sweeps execute hundreds of thousands of events), so the telemetry
instrumentation was designed to stay out of it: the only change is one
``enabled``-guarded callback per ``run``/``run_until`` *batch*, never
per event.  This bench measures the same chained-event workload under
the default :data:`~repro.telemetry.NULL_TELEMETRY` and under a fully
enabled :class:`~repro.telemetry.TelemetryHub`, interleaved, best-of-N.
If even the *enabled* hub is within noise of the disabled one on a pure
engine workload, the disabled configuration — the default for every
seed-equivalent run — is certainly unchanged.

The second half measures the *fully observed* configuration — a hub
with the SLO engine and the run profiler armed — against a bare run of
the same experiment, end to end.  That is the worst case a CI health
gate ever pays, and it must stay within ``MAX_RATIO`` too; the combined
result lands in ``benchmarks/out/BENCH_obs_overhead.json``.

Run via ``pytest benchmarks/bench_telemetry_overhead.py -s`` to see the
measured events/s and ratios, or standalone
(``python benchmarks/bench_telemetry_overhead.py``) to also write the
JSON report.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.sim.engine import Engine
from repro.telemetry import TelemetryHub

N_EVENTS = 20_000
ROUNDS = 7
#: CI-safe bound on enabled/disabled per-event cost.  The expected
#: ratio is ~1.00 (one extra callback per *batch*); the acceptance
#: target is <= 1.02, and anything beyond 1.10 means a per-event cost
#: crept into the hot loop.
MAX_RATIO = 1.10

#: Paired rounds for the fully observed run.  Each round times one
#: bare and one observed run back to back (alternating which goes
#: first, so quota throttling cannot systematically tax one arm).
OBS_ROUNDS = 12
OUT_PATH = Path(__file__).parent / "out" / "BENCH_obs_overhead.json"


def _chained_run(telemetry: TelemetryHub | None) -> float:
    """One timed run: N_EVENTS chained engine events."""
    engine = Engine(telemetry=telemetry)
    remaining = {"n": N_EVENTS}

    def tick() -> None:
        if remaining["n"] > 0:
            remaining["n"] -= 1
            engine.schedule(0.001, tick)

    engine.schedule(0.0, tick)
    t0 = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - t0
    assert engine.executed_count == N_EVENTS + 1
    return elapsed


def measure() -> dict[str, float]:
    """Interleaved best-of-ROUNDS timing for disabled vs enabled."""
    disabled = []
    enabled = []
    hub = TelemetryHub()  # no sink: measures the instrumentation itself
    for _ in range(ROUNDS):
        disabled.append(_chained_run(None))  # default NULL_TELEMETRY
        enabled.append(_chained_run(hub))
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    return {
        "disabled_events_per_s": N_EVENTS / best_disabled,
        "enabled_events_per_s": N_EVENTS / best_enabled,
        "ratio": best_enabled / best_disabled,
    }


def _experiment_run(observed: bool) -> float:
    """One timed end-to-end experiment on a telemetry-enabled hub.

    Both arms pay for the instrumentation callbacks; the ``observed``
    arm additionally arms the SLO engine and the run profiler, so the
    ratio isolates exactly what the consumption layer adds.  The run is
    long (240 periods) and timed in CPU seconds so the per-run cost
    dominates scheduler noise.
    """
    from repro.experiments.config import BaselineConfig, ExperimentConfig
    from repro.experiments.runner import run_experiment
    from repro.telemetry.slo import DEFAULT_SLO_RULES

    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=30.0,
        baseline=BaselineConfig(n_periods=240, seed=0),
    )
    hub = TelemetryHub()  # fresh per round: SLO state must not carry over
    if observed:
        hub.arm_slo(DEFAULT_SLO_RULES)
        hub.arm_profiler()
    t0 = time.process_time()
    run_experiment(config, telemetry=hub)
    return time.process_time() - t0


def measure_observed() -> dict[str, float]:
    """Paired interleaved timing: hub-only vs SLO+profiler.

    The true ratio is estimated two ways — the median of per-pair
    ratios, and the ratio of per-arm minima — and the guard takes the
    smaller.  Each estimator is vulnerable to a different noise mode
    (sustained throttling phases vs unlucky minima), while a real
    per-event regression inflates both, so the combination keeps the
    guard's false-alarm rate low without loosening the bound.
    """
    ratios = []
    bare = []
    observed = []
    _experiment_run(observed=False)  # warm the cached estimator fit
    _experiment_run(observed=True)
    for i in range(OBS_ROUNDS):
        if i % 2 == 0:
            b = _experiment_run(observed=False)
            o = _experiment_run(observed=True)
        else:
            o = _experiment_run(observed=True)
            b = _experiment_run(observed=False)
        bare.append(b)
        observed.append(o)
        ratios.append(o / b)
    ratios.sort()
    median_pair = ratios[len(ratios) // 2]
    min_ratio = min(observed) / min(bare)
    return {
        "bare_run_s": min(bare),
        "observed_run_s": min(observed),
        "median_pair_ratio": median_pair,
        "min_ratio": min_ratio,
        "observed_ratio": min(median_pair, min_ratio),
    }


def write_report() -> Path:
    """Run both measurements and write the JSON artifact for CI."""
    report = {
        "bound_max_ratio": MAX_RATIO,
        "engine": measure(),
        "full_run": measure_observed(),
    }
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


def test_disabled_telemetry_is_free():
    """The guard: telemetry must cost per batch, not per event."""
    stats = measure()
    print(
        f"\nengine throughput: disabled {stats['disabled_events_per_s']:,.0f}"
        f" ev/s, enabled {stats['enabled_events_per_s']:,.0f} ev/s,"
        f" enabled/disabled ratio {stats['ratio']:.3f}"
    )
    assert stats["ratio"] < MAX_RATIO, (
        f"enabled-telemetry engine run is {stats['ratio']:.3f}x the disabled"
        f" one (> {MAX_RATIO}) — a per-event cost has crept into the hot loop"
    )
    # Sanity: the enabled hub actually observed the batches.
    hub = TelemetryHub()
    _chained_run(hub)
    assert hub.registry.counter("sim.events_executed").value == N_EVENTS + 1


def test_observed_run_overhead_is_bounded():
    """The health-gate guard: SLO + profiler must stay within MAX_RATIO."""
    stats = measure_observed()
    print(
        f"\nend-to-end run: bare {stats['bare_run_s']:.3f}s cpu, observed"
        f" {stats['observed_run_s']:.3f}s cpu, ratio"
        f" {stats['observed_ratio']:.3f} (median-pair"
        f" {stats['median_pair_ratio']:.3f}, min {stats['min_ratio']:.3f})"
    )
    assert stats["observed_ratio"] < MAX_RATIO, (
        f"fully observed run is {stats['observed_ratio']:.3f}x the bare one"
        f" (> {MAX_RATIO}) — SLO/profiler feeds are too hot"
    )


if __name__ == "__main__":
    import sys

    path = write_report()
    print(path.read_text(), end="")
    report = json.loads(path.read_text())
    if (
        report["engine"]["ratio"] >= MAX_RATIO
        or report["full_run"]["observed_ratio"] >= MAX_RATIO
    ):
        print(f"overhead bound {MAX_RATIO} exceeded", file=sys.stderr)
        sys.exit(1)
