"""Telemetry overhead guard: disabled telemetry must not tax the engine.

The engine's event loop is the hottest path in the repo (the figure
sweeps execute hundreds of thousands of events), so the telemetry
instrumentation was designed to stay out of it: the only change is one
``enabled``-guarded callback per ``run``/``run_until`` *batch*, never
per event.  This bench measures the same chained-event workload under
the default :data:`~repro.telemetry.NULL_TELEMETRY` and under a fully
enabled :class:`~repro.telemetry.TelemetryHub`, interleaved, best-of-N.
If even the *enabled* hub is within noise of the disabled one on a pure
engine workload, the disabled configuration — the default for every
seed-equivalent run — is certainly unchanged.

Run via ``pytest benchmarks/bench_telemetry_overhead.py -s`` to see the
measured events/s and ratio.
"""

from __future__ import annotations

import time

from repro.sim.engine import Engine
from repro.telemetry import TelemetryHub

N_EVENTS = 20_000
ROUNDS = 7
#: CI-safe bound on enabled/disabled per-event cost.  The expected
#: ratio is ~1.00 (one extra callback per *batch*); the acceptance
#: target is <= 1.02, and anything beyond 1.10 means a per-event cost
#: crept into the hot loop.
MAX_RATIO = 1.10


def _chained_run(telemetry: TelemetryHub | None) -> float:
    """One timed run: N_EVENTS chained engine events."""
    engine = Engine(telemetry=telemetry)
    remaining = {"n": N_EVENTS}

    def tick() -> None:
        if remaining["n"] > 0:
            remaining["n"] -= 1
            engine.schedule(0.001, tick)

    engine.schedule(0.0, tick)
    t0 = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - t0
    assert engine.executed_count == N_EVENTS + 1
    return elapsed


def measure() -> dict[str, float]:
    """Interleaved best-of-ROUNDS timing for disabled vs enabled."""
    disabled = []
    enabled = []
    hub = TelemetryHub()  # no sink: measures the instrumentation itself
    for _ in range(ROUNDS):
        disabled.append(_chained_run(None))  # default NULL_TELEMETRY
        enabled.append(_chained_run(hub))
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    return {
        "disabled_events_per_s": N_EVENTS / best_disabled,
        "enabled_events_per_s": N_EVENTS / best_enabled,
        "ratio": best_enabled / best_disabled,
    }


def test_disabled_telemetry_is_free():
    """The guard: telemetry must cost per batch, not per event."""
    stats = measure()
    print(
        f"\nengine throughput: disabled {stats['disabled_events_per_s']:,.0f}"
        f" ev/s, enabled {stats['enabled_events_per_s']:,.0f} ev/s,"
        f" enabled/disabled ratio {stats['ratio']:.3f}"
    )
    assert stats["ratio"] < MAX_RATIO, (
        f"enabled-telemetry engine run is {stats['ratio']:.3f}x the disabled"
        f" one (> {MAX_RATIO}) — a per-event cost has crept into the hot loop"
    )
    # Sanity: the enabled hub actually observed the batches.
    hub = TelemetryHub()
    _chained_run(hub)
    assert hub.registry.counter("sim.events_executed").value == N_EVENTS + 1


if __name__ == "__main__":
    for key, value in measure().items():
        print(f"{key}: {value:,.3f}")
