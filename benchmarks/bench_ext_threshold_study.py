"""E-X1 — extension: the beyond-threshold fluctuation region.

§5.2 reports that past ~28 workload units the two algorithms' ordering
on monotone ramps fluctuates.  The paper does not show this data
("The results of this study are not shown here"); this bench generates
it: an extended increasing-ramp sweep from 25 to 50 units.
"""

from __future__ import annotations

from repro.experiments.figures import extended_threshold_sweep

from benchmarks.conftest import run_once

UNITS = (25.0, 28.0, 31.0, 34.0, 37.0, 40.0, 45.0, 50.0)


def test_ext_threshold_study(benchmark, emit, baseline, estimator):
    data = run_once(
        benchmark,
        lambda: extended_threshold_sweep(
            units=UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit("ext_threshold_study", data.render())

    predictive = data.series["predictive"]
    nonpredictive = data.series["nonpredictive"]
    # Both remain bounded deep into saturation.
    assert max(predictive) < 4.0
    assert max(nonpredictive) < 4.0
    # The gap between the two shrinks relative to the metric scale —
    # the 'fluctuating' regime: no policy dominates by a wide margin.
    gaps = [abs(a - b) for a, b in zip(predictive, nonpredictive)]
    assert max(gaps) < 0.5 * max(max(predictive), max(nonpredictive))
