"""Ablation: the overload-shedding watchdog (``drop_factor``).

Our substitution note (DESIGN.md §2 / docs/paper_mapping.md #5): periods
still in flight ``drop_factor`` periods after release are shed.  This
ablation runs the cold-start overload scenario (decreasing ramp from 30
units — the worst case) across shedding factors and shows the knob's
effect is confined to the overload transient: patient settings let
backlog linger; aggressive ones shed more but recover equally.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once

FACTORS = (1.2, 2.0, 3.0, 5.0)


def test_abl_drop_factor(benchmark, emit, baseline, estimator):
    def sweep():
        out = {}
        for factor in FACTORS:
            config = ExperimentConfig(
                policy="predictive",
                pattern="decreasing",
                max_workload_units=30.0,
                baseline=baseline.with_overrides(drop_factor=factor),
            )
            out[factor] = run_experiment(config, estimator=estimator).metrics
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [
            factor,
            results[factor].missed_deadline_ratio,
            results[factor].periods_aborted,
            results[factor].avg_cpu_utilization,
            results[factor].combined,
        ]
        for factor in FACTORS
    ]
    emit(
        "abl_drop_factor",
        format_table(
            ["drop factor", "MD", "periods shed", "cpu", "C"],
            rows,
            title="Drop-factor ablation (predictive, decreasing ramp, 30 units)",
        ),
    )

    # More patience -> fewer sheds.
    sheds = [results[f].periods_aborted for f in FACTORS]
    assert sheds == sorted(sheds, reverse=True)
    # The conclusion is insensitive to the knob: MD varies modestly
    # across a 4x range of the factor.
    md_values = [results[f].missed_deadline_ratio for f in FACTORS]
    assert max(md_values) - min(md_values) <= 0.25