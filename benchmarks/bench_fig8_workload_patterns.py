"""E-F8 — Figure 8: the workload patterns used by the evaluation.

Regenerates the increasing-ramp, decreasing-ramp and triangular series
and asserts their defining shape properties.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig8_workload_patterns

from benchmarks.conftest import run_once


def test_fig8_workload_patterns(benchmark, emit):
    data = run_once(
        benchmark,
        lambda: fig8_workload_patterns(max_workload_units=20.0, n_periods=60),
    )
    emit("fig8_workload_patterns", data.render())

    increasing = np.array(data.series["increasing"])
    decreasing = np.array(data.series["decreasing"])
    triangular = np.array(data.series["triangular"])

    assert np.all(np.diff(increasing) >= 0)
    assert np.all(np.diff(decreasing) <= 0)
    # The triangular pattern alternates: both signs occur in its slope.
    slopes = np.diff(triangular)
    assert (slopes > 0).any() and (slopes < 0).any()
    # All three share the same bounds.
    for series in (increasing, decreasing, triangular):
        assert series.max() == 10_000.0
        assert series.min() == 250.0
