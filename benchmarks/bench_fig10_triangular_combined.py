"""E-F10 — Figure 10: combined performance metric, triangular pattern.

The paper's headline figure: under the fluctuating (triangular)
workload the predictive algorithm's combined metric
``C = MD + U_cpu + U_net + R/Max(R)`` is equal to the baseline's at
small workloads (no replication) and lower once replication matters.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SWEEP_UNITS
from repro.experiments.figures import fig10_triangular_combined

from benchmarks.conftest import run_once


def test_fig10_triangular_combined(benchmark, emit, baseline, estimator):
    data = run_once(
        benchmark,
        lambda: fig10_triangular_combined(
            units=DEFAULT_SWEEP_UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit("fig10_triangular_combined", data.render())

    predictive = data.series["predictive"]
    nonpredictive = data.series["nonpredictive"]

    # Identical at the smallest workload (no replication needed).
    assert abs(predictive[0] - nonpredictive[0]) / nonpredictive[0] < 0.05

    # The predictive algorithm wins at the majority of
    # replication-relevant workloads (the paper's headline).
    heavy = [i for i, u in enumerate(DEFAULT_SWEEP_UNITS) if u >= 5.0]
    wins = sum(1 for i in heavy if predictive[i] <= nonpredictive[i])
    assert wins >= len(heavy) * 0.6

    # Lower-is-better metric grows with workload for both.
    assert predictive[-1] > predictive[0]
    assert nonpredictive[-1] > nonpredictive[0]
