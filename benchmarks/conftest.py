"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment(s) under pytest-benchmark timing, prints the resulting
series (visible with ``pytest benchmarks/ --benchmark-only -s``), and
writes the same text to ``benchmarks/out/<name>.txt`` so the artefacts
survive the run.  The profiled estimator is fitted once per session and
cached on disk under ``benchmarks/.cache``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.runner import get_default_estimator

BENCH_DIR = Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"
CACHE_DIR = BENCH_DIR / ".cache"


@pytest.fixture(scope="session")
def baseline() -> BaselineConfig:
    """The Table 1 baseline used by every figure bench."""
    return BaselineConfig()


@pytest.fixture(scope="session")
def estimator(baseline):
    """The profiled + fitted regression models (disk-cached)."""
    return get_default_estimator(baseline, cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def emit():
    """Print a bench artefact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (figure sweeps are too slow to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
