"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment(s) under pytest-benchmark timing, prints the resulting
series (visible with ``pytest benchmarks/ --benchmark-only -s``), and
writes the same text to ``benchmarks/out/<name>.txt`` so the artefacts
survive the run.  The profiled estimator is fitted once per session and
cached on disk under ``benchmarks/.cache`` (override with
``--cache-dir``); ``--jobs N`` fans sweep-shaped benches out over the
:mod:`repro.parallel` process pool.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.estimator_cache import get_estimator

BENCH_DIR = Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"
CACHE_DIR = BENCH_DIR / ".cache"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel-capable benches "
        "(1 = serial, 0 = all CPUs)",
    )
    parser.addoption(
        "--cache-dir",
        default=None,
        help=f"estimator cache directory (default: {CACHE_DIR})",
    )


@pytest.fixture(scope="session")
def n_jobs(request) -> int:
    """Worker-process count from ``--jobs``."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def cache_dir(request) -> Path:
    """Estimator cache directory from ``--cache-dir``."""
    override = request.config.getoption("--cache-dir")
    return Path(override) if override else CACHE_DIR


@pytest.fixture(scope="session")
def baseline() -> BaselineConfig:
    """The Table 1 baseline used by every figure bench."""
    return BaselineConfig()


@pytest.fixture(scope="session")
def estimator(baseline, cache_dir):
    """The profiled + fitted regression models (disk-cached)."""
    return get_estimator(baseline, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def emit():
    """Print a bench artefact and persist it under benchmarks/out/."""
    from repro.experiments.export import atomic_write_text

    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        atomic_write_text(OUT_DIR / f"{name}.txt", text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (figure sweeps are too slow to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
