"""E-X2 — ablation: the desired slack fraction ``sl``.

The paper fixes ``sl = 0.2 x dl(st)`` (Figure 5's comment).  This bench
sweeps the fraction and shows the trade-off it controls: small slack
targets replicate later/less (fewer replicas, more misses), large ones
replicate earlier/more.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_slack_fraction

from benchmarks.conftest import run_once

FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.4)


def test_abl_slack_fraction(benchmark, emit, baseline, estimator):
    data = run_once(
        benchmark,
        lambda: ablation_slack_fraction(
            fractions=FRACTIONS,
            max_workload_units=20.0,
            baseline=baseline,
            estimator=estimator,
        ),
    )
    emit("abl_slack_fraction", data.render())

    ratios = data.series["replica_ratio"]
    # Larger desired slack => at least as many replicas held.
    assert ratios[-1] >= ratios[0] - 0.05
    # All configurations stay functional.
    assert all(m <= 0.8 for m in data.series["missed"])
