"""E-CHAOS — resilience scorecards across fault classes and policies.

Sweeps a matrix of fault scenarios × allocation policies × RM hardening
and records each cell's :class:`~repro.chaos.scorecard.ResilienceScorecard`
in ``benchmarks/out/BENCH_chaos_matrix.json``.  Two hard requirements
(nonzero exit when violated):

* **replay determinism** — re-running a cell under the same master seed
  must reproduce its scorecard and metrics bit-identically;
* **hardening pays off** — with the predictive policy, the hardened RM
  must *strictly* improve MTTR or the miss-window ratio on at least
  ``MIN_WINS`` of the swept fault classes (it must never make a class
  catastrophically worse either: availability may not drop by more than
  ``AVAILABILITY_TOLERANCE``).

Run standalone (``python benchmarks/bench_ext_chaos_matrix.py``), in CI
smoke form (``--smoke``: fewer periods), or via
``pytest benchmarks/bench_ext_chaos_matrix.py -m "slow or not slow"``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_chaos_matrix.json"

#: The swept fault classes (one controller failure mode each: node
#: churn, a flapping node, lying utilization sensors, broken forecasts).
FAULT_CLASSES = ("crashes", "flaky_node", "corrupt_readings", "estimator_bias")
POLICIES = ("predictive", "nonpredictive")

#: The hardened RM must strictly win (lower MTTR or lower miss-window
#: ratio) on at least this many fault classes under the predictive
#: policy.
MIN_WINS = 2

#: ... and must not cost more than this much availability on any class.
AVAILABILITY_TOLERANCE = 0.10

FULL_PERIODS = 60
SMOKE_PERIODS = 30

#: Peak offered workload.  Chosen hot enough that every fault class
#: produces deadline misses in the unhardened runs — at gentle loads
#: most scenarios sail through on slack and the matrix cannot
#: differentiate hardened from unhardened.
MAX_WORKLOAD_UNITS = 30.0


def _run_cell(scenario: str, policy: str, hardened: bool, baseline, estimator):
    """One matrix cell; returns (scorecard dict | None, metrics dict | None, error).

    A :class:`~repro.errors.ReproError` escaping the run is the
    *controller crashing on faulty input* (e.g. a corrupted utilization
    reading reaching the regression model) — recorded as a crashed
    cell, the worst possible resilience outcome, not a bench failure.
    """
    from repro.chaos import run_chaos_experiment
    from repro.errors import ReproError

    try:
        result = run_chaos_experiment(
            scenario=scenario,
            policy=policy,
            max_workload_units=MAX_WORKLOAD_UNITS,
            baseline=baseline,
            hardened=hardened,
            estimator=estimator,
        )
    except ReproError as exc:
        return None, None, f"{type(exc).__name__}: {exc}"
    return result.scorecard.as_dict(), result.metrics.as_dict(), None


def measure_chaos_matrix(n_periods: int = FULL_PERIODS) -> dict:
    """The full scenario × policy × hardening scorecard matrix."""
    from repro.experiments.config import BaselineConfig
    from repro.experiments.estimator_cache import get_estimator

    baseline = BaselineConfig(n_periods=n_periods)
    estimator = get_estimator(baseline)

    rows = []
    for scenario in FAULT_CLASSES:
        for policy in POLICIES:
            for hardened in (False, True):
                scorecard, metrics, error = _run_cell(
                    scenario, policy, hardened, baseline, estimator
                )
                rows.append(
                    {
                        "scenario": scenario,
                        "policy": policy,
                        "hardened": hardened,
                        "crashed": error is not None,
                        "error": error,
                        "scorecard": scorecard,
                        "metrics": metrics,
                    }
                )

    # Replay determinism: the first cell, re-run from scratch.
    replay_scorecard, replay_metrics, replay_error = _run_cell(
        rows[0]["scenario"],
        rows[0]["policy"],
        rows[0]["hardened"],
        baseline,
        estimator,
    )
    replay_identical = (
        replay_scorecard == rows[0]["scorecard"]
        and replay_metrics == rows[0]["metrics"]
        and (replay_error is not None) == rows[0]["crashed"]
    )

    return {
        "bench": "chaos_matrix",
        "kernel": {
            "n_periods": n_periods,
            "max_workload_units": MAX_WORKLOAD_UNITS,
            "fault_classes": list(FAULT_CLASSES),
            "policies": list(POLICIES),
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "requirements": {
            "min_wins": MIN_WINS,
            "availability_tolerance": AVAILABILITY_TOLERANCE,
        },
        "replay_identical": replay_identical,
        "rows": rows,
        "note": "a 'win' = hardened strictly lowers MTTR or the "
        "miss-window ratio vs the unhardened predictive RM",
    }


def _cell(report: dict, scenario: str, policy: str, hardened: bool) -> dict:
    for row in report["rows"]:
        if (
            row["scenario"] == scenario
            and row["policy"] == policy
            and row["hardened"] == hardened
        ):
            return row
    raise KeyError((scenario, policy, hardened))


def hardening_wins(report: dict) -> dict[str, bool]:
    """Per fault class: does the hardened predictive RM strictly win?

    Surviving a scenario that crashes the unhardened controller is the
    strongest possible win; a crashed hardened cell can never win.
    """
    wins: dict[str, bool] = {}
    for scenario in report["kernel"]["fault_classes"]:
        plain_row = _cell(report, scenario, "predictive", False)
        hard_row = _cell(report, scenario, "predictive", True)
        if hard_row["crashed"]:
            wins[scenario] = False
            continue
        if plain_row["crashed"]:
            wins[scenario] = True
            continue
        plain = plain_row["scorecard"]
        hard = hard_row["scorecard"]
        better_mttr = (
            plain["mttr_s"] is not None
            and hard["mttr_s"] is not None
            and hard["mttr_s"] < plain["mttr_s"]
        ) or (plain["mttr_s"] is not None and hard["mttr_s"] is None)
        better_window = hard["miss_window_ratio"] < plain["miss_window_ratio"]
        wins[scenario] = bool(better_mttr or better_window)
    return wins


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    if not report["replay_identical"]:
        problems.append("fixed-seed replay diverged (scorecard or metrics)")
    wins = hardening_wins(report)
    n_wins = sum(wins.values())
    if n_wins < MIN_WINS:
        problems.append(
            f"hardened RM wins on {n_wins} fault class(es) "
            f"({', '.join(k for k, v in wins.items() if v) or 'none'}); "
            f"needs >= {MIN_WINS}"
        )
    for scenario in report["kernel"]["fault_classes"]:
        plain_row = _cell(report, scenario, "predictive", False)
        hard_row = _cell(report, scenario, "predictive", True)
        if hard_row["crashed"]:
            problems.append(
                f"{scenario}: hardened controller crashed: {hard_row['error']}"
            )
            continue
        if plain_row["crashed"]:
            continue
        drop = (
            plain_row["scorecard"]["availability"]
            - hard_row["scorecard"]["availability"]
        )
        if drop > AVAILABILITY_TOLERANCE:
            problems.append(
                f"{scenario}: hardening costs {drop:.3f} availability "
                f"(tolerance {AVAILABILITY_TOLERANCE})"
            )
    return problems


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


@pytest.mark.slow
def test_chaos_matrix():
    report = measure_chaos_matrix(n_periods=SMOKE_PERIODS)
    path = write_report(report)
    print(f"\nchaos matrix report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: fewer periods per run",
    )
    args = parser.parse_args(argv)
    periods = SMOKE_PERIODS if args.smoke else FULL_PERIODS
    report = measure_chaos_matrix(n_periods=periods)
    path = write_report(report)
    wins = hardening_wins(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    print(f"hardening wins: {wins}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
