"""E-X13 — extension: offline capacity planning vs the online manager.

The fitted models double as a planning tool: replaying Figure 5's
budget check analytically yields, per sustained workload, the replica
counts the machine *should* need.  This bench compares the plan with
what the online manager actually converges to at the same sustained
workloads.

Measured relationship: the plan is a reliable **sizing floor** — the
online loop never converges below it — while the loop's monitoring
hysteresis (replicate below 20 % slack, shut down only above 60 %)
parks it up to ~3 replicas above the plan at mid workloads.  Near the
machine's capacity edge the plan's feasibility verdict is the earlier
warning: at 15,000 tracks the forecast sits within a few percent of
the deadline, and the live system indeed misses.
"""

from __future__ import annotations

from repro.experiments.capacity import plan_capacity
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once

WORKLOADS = (2000.0, 5000.0, 10000.0, 15000.0)


def test_ext_capacity_planning(benchmark, emit, baseline, estimator):
    def plan_and_measure():
        plan = plan_capacity(
            estimator,
            WORKLOADS,
            n_processors=baseline.n_nodes,
            utilization=0.2,
        )
        measured = {}
        for d_tracks in WORKLOADS:
            config = ExperimentConfig(
                policy="predictive",
                pattern="constant",
                max_workload_units=d_tracks / 500.0,
                baseline=baseline,
            )
            result = run_experiment(config, estimator=estimator)
            measured[d_tracks] = result
        return plan, measured

    plan, measured = run_once(benchmark, plan_and_measure)
    rows = []
    for point in plan.points:
        result = measured[point.d_tracks]
        final_replicas = sum(
            len(result.final_placement[j]) for j in (3, 5)
        )
        rows.append(
            [
                point.d_tracks,
                point.total_replicas,
                final_replicas,
                result.metrics.avg_replicas,
                result.metrics.missed_deadline_ratio,
            ]
        )
    emit(
        "ext_capacity_planning",
        format_table(
            ["tracks/period", "planned replicas", "final online replicas",
             "avg online replicas", "MD"],
            rows,
            title="E-X13. Offline capacity plan vs online convergence "
            "(predictive, constant workload)",
        ),
    )

    task_deadline = estimator.task.deadline
    for point in plan.points:
        result = measured[point.d_tracks]
        final = sum(len(result.final_placement[j]) for j in (3, 5))
        # The plan is a sizing floor: the loop never converges below it.
        assert final >= point.total_replicas - 1, (
            f"at {point.d_tracks}: planned {point.total_replicas}, "
            f"online {final}"
        )
        # ...and the hysteresis overshoot is bounded.
        assert final - point.total_replicas <= 3
        # Comfortably-feasible plans (forecast <= 90% of the deadline)
        # are indeed handled online; boundary cases are the plan's
        # saturation warning, not a guarantee.
        if point.feasible and point.forecast_end_to_end_s <= 0.9 * task_deadline:
            assert result.metrics.missed_deadline_ratio <= 0.25
