"""E-X4 — ablation: the deadline-decomposition strategy.

Compares the default sequential EQF against the literal eqs. 1-2 form
("paper_eqf", whose terminal-stage budget equals the full deadline —
see repro.core.deadlines) and the proportional baseline, all under the
predictive policy on the triangular pattern.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_deadline_strategy
from repro.experiments.report import format_table

from benchmarks.conftest import run_once

STRATEGIES = ("sequential_eqf", "paper_eqf", "proportional")


def test_abl_deadline_assignment(benchmark, emit, baseline, estimator):
    data = run_once(
        benchmark,
        lambda: ablation_deadline_strategy(
            strategies=STRATEGIES,
            max_workload_units=20.0,
            baseline=baseline,
            estimator=estimator,
        ),
    )
    rows = [
        [
            name,
            data.series["missed"][i],
            data.series["replica_ratio"][i],
            data.series["combined"][i],
        ]
        for i, name in enumerate(data.strategy_names)
    ]
    text = format_table(
        ["strategy", "missed", "replica_ratio", "combined"],
        rows,
        title="E-X4. Deadline-strategy ablation (predictive, triangular, 20 units)",
    )
    emit("abl_deadline_assignment", text)

    combined = dict(zip(data.strategy_names, data.series["combined"]))
    missed = dict(zip(data.strategy_names, data.series["missed"]))
    # Every strategy keeps the system functional...
    assert all(v < 3.0 for v in combined.values())
    # ...and the default does not lose to the literal paper form on
    # missed deadlines (whose last stage is unmonitorable).
    assert missed["sequential_eqf"] <= missed["paper_eqf"] + 0.05
