"""Ablation: execution-time noise sensitivity.

The synthetic benchmark's log-normal execution noise (sigma = 0.08 by
default) stands in for the real application's run-to-run variation.
This bench sweeps sigma to confirm the reproduction's conclusions do
not hinge on a particular noise level: the predictive policy's combined-
metric advantage persists from a deterministic app up to 3x the default
noise.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.runner import run_experiment

from benchmarks.conftest import CACHE_DIR, run_once

SIGMAS = (0.0, 0.08, 0.16, 0.24)
MAX_UNITS = 15.0


def test_abl_noise_sensitivity(benchmark, emit, baseline):
    def sweep():
        out = {}
        for sigma in SIGMAS:
            noisy = baseline.with_overrides(noise_sigma=sigma)
            estimator = get_estimator(noisy, cache_dir=CACHE_DIR)
            for policy in ("predictive", "nonpredictive"):
                config = ExperimentConfig(
                    policy=policy,
                    pattern="triangular",
                    max_workload_units=MAX_UNITS,
                    baseline=noisy,
                )
                out[(sigma, policy)] = run_experiment(
                    config, estimator=estimator
                ).metrics
        return out

    results = run_once(benchmark, sweep)
    rows = []
    for sigma in SIGMAS:
        pred = results[(sigma, "predictive")]
        nonpred = results[(sigma, "nonpredictive")]
        rows.append(
            [
                sigma,
                pred.missed_deadline_ratio,
                nonpred.missed_deadline_ratio,
                pred.combined,
                nonpred.combined,
            ]
        )
    emit(
        "abl_noise_sensitivity",
        format_table(
            ["sigma", "MD pred", "MD nonpred", "C pred", "C nonpred"],
            rows,
            title=f"Noise-sensitivity ablation (triangular, {MAX_UNITS:g} units)",
        ),
    )

    # The headline ordering survives every noise level probed.
    for sigma in SIGMAS:
        assert results[(sigma, "predictive")].combined <= (
            results[(sigma, "nonpredictive")].combined + 0.05
        )
