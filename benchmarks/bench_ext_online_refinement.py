"""E-X12 — extension: online refinement of the static forecasts.

The paper's related work ([RSYJ97], [BN+98]) refines a-priori estimates
with run-time observations.  We wrap the fitted estimator in an EWMA
correction layer fed by the manager and re-run the E-X11 calibration
audit.

**Measured outcome (an honest negative result):** the correction moves
MAPE and bias only marginally.  E-X11's optimism is *transient* — it
appears at allocation instants, when the trailing-window ``ut(p, t)``
readings have not yet caught up with the just-changed placement —
whereas the EWMA is dominated by steady-state observations where the
static forecast is already accurate.  Fixing the bias would require
modelling the allocation's own utilization impact (forecasting
``u_after``), not averaging the past harder.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.forecast_eval import evaluate_forecasts
from repro.experiments.report import format_table

from benchmarks.conftest import run_once

UNITS = (20.0, 30.0)


def test_ext_online_refinement(benchmark, emit, baseline, estimator):
    def sweep():
        out = {}
        for units in UNITS:
            config = ExperimentConfig(
                policy="predictive",
                pattern="triangular",
                max_workload_units=units,
                baseline=baseline,
            )
            for online in (False, True):
                out[(units, online)] = evaluate_forecasts(
                    config, estimator=estimator, online=online
                )
        return out

    reports = run_once(benchmark, sweep)
    rows = [
        [
            f"{units:g}",
            "online" if online else "static",
            reports[(units, online)].n,
            reports[(units, online)].mape,
            reports[(units, online)].mean_error_s * 1e3,
            reports[(units, online)].missed_deadline_ratio,
        ]
        for units in UNITS
        for online in (False, True)
    ]
    emit(
        "ext_online_refinement",
        format_table(
            ["max workload", "estimator", "decisions", "MAPE",
             "mean error (ms)", "MD"],
            rows,
            title="E-X12. Online EWMA refinement vs static forecasts "
            "(triangular)",
        ),
    )

    for units in UNITS:
        static = reports[(units, False)]
        online = reports[(units, True)]
        # The refinement never degrades calibration or timeliness much...
        assert online.mape <= static.mape + 0.1
        assert online.missed_deadline_ratio <= (
            static.missed_deadline_ratio + 0.05
        )
        # ...but (the negative result) it also does not repair the
        # transient optimism: the bias stays within 25% of the static
        # estimator's at the saturated scale.
        if units == 30.0:
            assert abs(online.mean_error_s) >= 0.5 * abs(static.mean_error_s)