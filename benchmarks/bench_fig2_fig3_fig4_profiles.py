"""E-F2/F3/F4 — Figures 2-4: latency profiles and fitted curves.

* Figure 2: Filter execution latency at 80 % CPU utilization over data
  size — measured samples ("y"), the per-level quadratic fit ("Y"), and
  the combined two-stage surface evaluated at that level ("Y-").
* Figure 3: the same for EvalDecide at 60 % utilization.
* Figure 4: the Filter surface over the full (utilization x data size)
  grid.

Reproduction targets: the per-level fit tracks the measurements
(R^2 > 0.95), the surface tracks the per-level fits, and latency is
monotone in both data size and utilization.
"""

from __future__ import annotations

import numpy as np

from repro.bench.app import aaw_task
from repro.bench.profiler import profile_subtask
from repro.experiments.report import format_series_table

from benchmarks.conftest import run_once

D_GRID = (250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0)
U_GRID = (0.0, 0.2, 0.4, 0.6, 0.8)


def _figure_series(result, level):
    """Per-data-size series at one utilization level: y, Y, Y-."""
    by_d: dict[float, list[float]] = {}
    for sample in result.samples:
        if sample.u_target == level:
            by_d.setdefault(sample.d_tracks, []).append(sample.latency_s * 1e3)
    d_values = sorted(by_d)
    measured = [float(np.mean(by_d[d])) for d in d_values]
    surface = [result.model.predict_ms(d / 100.0, level) for d in d_values]
    return d_values, measured, surface


def test_fig2_filter_profile_at_80pct(benchmark, emit):
    task = aaw_task()
    result = run_once(
        benchmark,
        lambda: profile_subtask(
            task.subtask(3), u_grid=U_GRID, d_grid_tracks=D_GRID,
            repetitions=3, seed=2,
        ),
    )
    d_values, measured, surface = _figure_series(result, 0.8)
    text = format_series_table(
        "data size (tracks)",
        d_values,
        {"y: measured (ms)": measured, "Y-: surface fit (ms)": surface},
        title="Figure 2. Filter execution latency at 80% CPU utilization",
    )
    emit("fig2_filter_profile", text)

    assert result.model.r_squared > 0.9
    # Monotone growth with data size at the profiled level.
    assert all(a < b for a, b in zip(surface, surface[1:]))
    # Surface tracks measurements within noise.
    for m, s in zip(measured, surface):
        assert abs(m - s) / max(m, 1.0) < 0.5


def test_fig3_evaldecide_profile_at_60pct(benchmark, emit):
    task = aaw_task()
    result = run_once(
        benchmark,
        lambda: profile_subtask(
            task.subtask(5), u_grid=U_GRID, d_grid_tracks=D_GRID,
            repetitions=3, seed=3,
        ),
    )
    d_values, measured, surface = _figure_series(result, 0.6)
    text = format_series_table(
        "data size (tracks)",
        d_values,
        {"y: measured (ms)": measured, "Y-: surface fit (ms)": surface},
        title="Figure 3. EvalDecide execution latency at 60% CPU utilization",
    )
    emit("fig3_evaldecide_profile", text)
    assert result.model.r_squared > 0.9
    assert all(a < b for a, b in zip(surface, surface[1:]))


def test_fig4_filter_surface(benchmark, emit):
    task = aaw_task()
    result = run_once(
        benchmark,
        lambda: profile_subtask(
            task.subtask(3), u_grid=U_GRID, d_grid_tracks=D_GRID,
            repetitions=2, seed=4,
        ),
    )
    model = result.model
    series = {
        f"u={u:.0%}": [model.predict_ms(d / 100.0, u) for d in D_GRID]
        for u in U_GRID
    }
    text = format_series_table(
        "data size (tracks)",
        list(D_GRID),
        series,
        title="Figure 4. Filter latency surface over (CPU utilization, data size)",
    )
    emit("fig4_filter_surface", text)

    # Latency rises with utilization across the surface.  A quadratic
    # A(u) fitted to the convex PS stretch may dip slightly at low u
    # (the published Table 2 likewise has a negative a1 for subtask 3),
    # so monotonicity is asserted from 20 % upward plus end-to-end.
    for i in range(len(D_GRID)):
        column = [series[f"u={u:.0%}"][i] for u in U_GRID]
        assert column[-1] > column[0]
        assert all(a <= b + 1e-9 for a, b in zip(column[1:], column[2:]))
