"""E-F13 — Figure 13(a, b): combined metric under both ramps.

Paper §5.2: for monotone ramps the predictive algorithm wins up to a
threshold workload (~28 units), beyond which the ordering fluctuates.
The assertions therefore check dominance on the below-threshold region
and mere boundedness beyond it.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SWEEP_UNITS
from repro.experiments.figures import fig13_ramp_combined

from benchmarks.conftest import run_once

THRESHOLD_UNITS = 28.0


def test_fig13_ramp_combined(benchmark, emit, baseline, estimator):
    figures = run_once(
        benchmark,
        lambda: fig13_ramp_combined(
            units=DEFAULT_SWEEP_UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit(
        "fig13_ramp_combined",
        figures["a"].render() + "\n\n" + figures["b"].render(),
    )

    for key in ("a", "b"):
        data = figures[key]
        predictive = data.series["predictive"]
        nonpredictive = data.series["nonpredictive"]
        below = [
            i for i, u in enumerate(DEFAULT_SWEEP_UNITS)
            if 5.0 <= u < THRESHOLD_UNITS
        ]
        wins = sum(
            1 for i in below if predictive[i] <= nonpredictive[i] * 1.02
        )
        assert wins >= len(below) * 0.5
        # Beyond the threshold both stay finite and same order.
        assert predictive[-1] < 3.0
        assert nonpredictive[-1] < 3.0
