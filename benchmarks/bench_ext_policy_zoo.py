"""E-X5 — extension: the full policy spectrum.

Brackets the paper's two algorithms with the no-adaptation lower bound,
the static-max upper bound and the hybrid variant, all on the
triangular pattern at a replication-relevant workload.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once

POLICIES = ("noadapt", "predictive", "hybrid", "nonpredictive", "staticmax")
MAX_UNITS = 20.0


def test_ext_policy_zoo(benchmark, emit, baseline, estimator):
    def sweep():
        results = {}
        for policy in POLICIES:
            config = ExperimentConfig(
                policy=policy,
                pattern="triangular",
                max_workload_units=MAX_UNITS,
                baseline=baseline,
            )
            results[policy] = run_experiment(config, estimator=estimator).metrics
        return results

    results = run_once(benchmark, sweep)
    rows = [
        [
            policy,
            m.missed_deadline_ratio,
            m.avg_cpu_utilization,
            m.avg_network_utilization,
            m.avg_replicas,
            m.combined,
        ]
        for policy, m in ((p, results[p]) for p in POLICIES)
    ]
    emit(
        "ext_policy_zoo",
        format_table(
            ["policy", "MD", "cpu", "net", "replicas", "C"],
            rows,
            title=f"E-X5. Policy spectrum (triangular, {MAX_UNITS:g} units)",
        ),
    )

    # The brackets hold:
    assert results["noadapt"].missed_deadline_ratio >= max(
        results[p].missed_deadline_ratio for p in ("predictive", "nonpredictive")
    )
    assert results["noadapt"].avg_replicas == min(
        results[p].avg_replicas for p in POLICIES
    )
    # Static-max sits at the top of the replica range (the shutdown path
    # prunes both greedy policies similarly, so allow a small tolerance
    # against the equally-saturating non-predictive heuristic).
    assert results["staticmax"].avg_replicas >= results["predictive"].avg_replicas
    assert results["staticmax"].avg_replicas >= (
        results["nonpredictive"].avg_replicas - 0.3
    )
    # The paper's two policies both beat the no-adaptation bound on the
    # combined metric.
    assert results["predictive"].combined < results["noadapt"].combined
    assert results["nonpredictive"].combined < results["noadapt"].combined
