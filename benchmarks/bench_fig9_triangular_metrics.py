"""E-F9 — Figure 9(a-d): four metrics under the triangular pattern.

Runs the full predictive-vs-non-predictive sweep over the paper's
maximum-workload axis and prints the four panels: missed-deadline
ratio, average CPU utilization, average network utilization, and
average replica count.

Shape assertions (paper §5.2):
* the non-predictive algorithm uses at least as many replicas and at
  least as much network as the predictive one at replication-relevant
  workloads;
* its CPU utilization is not higher (more parallelism splits the
  quadratic work);
* metrics grow with the maximum workload.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SWEEP_UNITS
from repro.experiments.figures import fig9_triangular_panels

from benchmarks.conftest import run_once


def test_fig9_triangular_metrics(benchmark, emit, baseline, estimator):
    panels = run_once(
        benchmark,
        lambda: fig9_triangular_panels(
            units=DEFAULT_SWEEP_UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit(
        "fig9_triangular_metrics",
        "\n\n".join(panels[letter].render() for letter in "abcd"),
    )

    replicas = panels["d"].series
    net = panels["c"].series
    cpu = panels["b"].series
    # Indices past the no-replication region (>= 10 units).
    heavy = [i for i, u in enumerate(DEFAULT_SWEEP_UNITS) if u >= 10.0]
    for i in heavy:
        assert replicas["nonpredictive"][i] >= replicas["predictive"][i] - 0.5
        assert net["nonpredictive"][i] >= 0.9 * net["predictive"][i]
        assert cpu["nonpredictive"][i] <= cpu["predictive"][i] + 0.03
    # Utilizations rise with workload for both policies.
    for policy in ("predictive", "nonpredictive"):
        assert cpu[policy][-1] > cpu[policy][0]
        assert net[policy][-1] > net[policy][0]
