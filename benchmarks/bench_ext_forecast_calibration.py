"""E-X11 — extension: in-vivo calibration of the eq. 3/4 forecasts.

The paper evaluates the predictive algorithm only end to end; this
bench audits the mechanism itself.  For every replication decision
Figure 5 takes during triangular runs at three workload scales, the
forecast stage latency is paired with the stage latency subsequently
observed, and the calibration summarized (MAPE, signed bias, pessimism
rate).

Finding worth recording: the forecasts are well-calibrated at moderate
load but drift *optimistic* as the system saturates (the ``ut(p, t)``
readings used by eq. 3 lag the allocation changes), which is exactly
where the predictive policy starts missing deadlines in Figs. 9-13.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.forecast_eval import evaluate_forecasts
from repro.experiments.report import format_table

from benchmarks.conftest import run_once

UNITS = (10.0, 20.0, 30.0)


def test_ext_forecast_calibration(benchmark, emit, baseline, estimator):
    def sweep():
        return {
            units: evaluate_forecasts(
                ExperimentConfig(
                    policy="predictive",
                    pattern="triangular",
                    max_workload_units=units,
                    baseline=baseline,
                ),
                estimator=estimator,
            )
            for units in UNITS
        }

    reports = run_once(benchmark, sweep)
    rows = [
        [
            f"{units:g}",
            reports[units].n,
            reports[units].mape,
            reports[units].mean_error_s * 1e3,
            reports[units].pessimism_rate,
        ]
        for units in UNITS
    ]
    emit(
        "ext_forecast_calibration",
        format_table(
            ["max workload", "decisions", "MAPE", "mean error (ms)",
             "pessimism rate"],
            rows,
            title="E-X11. Forecast calibration of Figure 5's budget checks "
            "(triangular)",
        ),
    )

    for units in UNITS:
        report = reports[units]
        assert report.n > 0
        # Forecasts stay within the usable range at every scale.
        assert report.mape < 1.0
    # The documented saturation drift: bias becomes more optimistic
    # (more negative) as the workload scale grows.
    assert reports[30.0].mean_error_s <= reports[10.0].mean_error_s
