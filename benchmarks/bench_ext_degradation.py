"""E-X15 — extension: graceful degradation beyond machine capacity.

Figures 9-13 show both algorithms saturating past ~30 workload units:
the machine is simply too small, and misses pile up.  The paper's own
citations ([LL+91] imprecise computations) suggest the missing control:
shed the optional portion of the data.  This bench runs the predictive
policy at 40 units (well past saturation) with and without the
degradation controller and reports the trade: deadlines recovered vs
fraction of the picture dropped.
"""

from __future__ import annotations

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.degradation import DataShedder, DegradationController
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.experiments.report import format_table
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import TriangularPattern

from benchmarks.conftest import run_once

N_PERIODS = 60
MAX_TRACKS = 20_000.0  # 40 units: beyond the 6-node machine's capacity


def run(baseline, estimator, with_shedding):
    system = build_system(n_processors=baseline.n_nodes, seed=baseline.seed)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    pattern = TriangularPattern(
        min_tracks=250.0, max_tracks=MAX_TRACKS, n_periods=N_PERIODS
    )
    shedder = DataShedder(offered=pattern, min_cap_tracks=500.0)
    workload = shedder if with_shedding else pattern
    executor = PeriodicTaskExecutor(system, task, assignment, workload=workload)
    manager = AdaptiveResourceManager(
        system, executor, estimator,
        policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=250.0),
    )
    controller = DegradationController(manager, shedder)
    manager.start(N_PERIODS)
    if with_shedding:
        controller.start(N_PERIODS)
    executor.start(N_PERIODS)
    system.engine.run_until(N_PERIODS + 3.0)
    missed = sum(1 for r in executor.records if r.missed)
    return {
        "missed_ratio": missed / N_PERIODS,
        "shed_fraction": shedder.shed_fraction if with_shedding else 0.0,
        "sheds": controller.sheds if with_shedding else 0,
    }


def test_ext_degradation(benchmark, emit, baseline, estimator):
    plain = run_once(benchmark, lambda: run(baseline, estimator, False))
    shedding = run(baseline, estimator, True)

    rows = [
        ["missed-deadline ratio", plain["missed_ratio"], shedding["missed_ratio"]],
        ["data shed fraction", plain["shed_fraction"], shedding["shed_fraction"]],
        ["shed actions", plain["sheds"], shedding["sheds"]],
    ]
    emit(
        "ext_degradation",
        format_table(
            ["metric", "replication only", "replication + shedding"],
            rows,
            title=f"E-X15. Graceful degradation at 40 units "
            f"(triangular, {MAX_TRACKS:.0f} tracks peak)",
        ),
    )

    # Past machine capacity, replication alone misses heavily...
    assert plain["missed_ratio"] >= 0.25
    # ...and shedding converts those misses into explicit quality loss.
    assert shedding["missed_ratio"] <= plain["missed_ratio"] * 0.5
    assert 0.0 < shedding["shed_fraction"] < 0.8