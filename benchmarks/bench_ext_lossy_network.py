"""E-X14 — extension: robustness to message loss.

The paper's asynchronous model assumes "processing and communication
latencies [without] known upper bounds" (§1) but evaluates on a
loss-free LAN.  This bench injects per-transmission loss (go-back
retransmission after a 50 ms timeout) and sweeps the loss rate: the
adaptation loop must absorb the latency spikes, with misses growing
gracefully rather than collapsing.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once

LOSS_RATES = (0.0, 0.01, 0.03, 0.05, 0.10)
MAX_UNITS = 15.0


def test_ext_lossy_network(benchmark, emit, baseline, estimator):
    def sweep():
        out = {}
        for loss in LOSS_RATES:
            for policy in ("predictive", "nonpredictive"):
                config = ExperimentConfig(
                    policy=policy,
                    pattern="triangular",
                    max_workload_units=MAX_UNITS,
                    baseline=baseline.with_overrides(
                        message_loss_probability=loss
                    ),
                )
                out[(loss, policy)] = run_experiment(
                    config, estimator=estimator
                ).metrics
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [
            f"{loss:.0%}",
            results[(loss, "predictive")].missed_deadline_ratio,
            results[(loss, "nonpredictive")].missed_deadline_ratio,
            results[(loss, "predictive")].avg_replicas,
            results[(loss, "predictive")].combined,
            results[(loss, "nonpredictive")].combined,
        ]
        for loss in LOSS_RATES
    ]
    emit(
        "ext_lossy_network",
        format_table(
            ["loss", "MD pred", "MD nonpred", "replicas pred",
             "C pred", "C nonpred"],
            rows,
            title=f"E-X14. Message-loss robustness (triangular, "
            f"{MAX_UNITS:g} units, 50 ms retransmit)",
        ),
    )

    # Graceful degradation: even at 10% loss the system functions.
    for policy in ("predictive", "nonpredictive"):
        assert results[(0.10, policy)].missed_deadline_ratio <= 0.5
    # Misses do not *improve* with loss (sanity of the injection).
    md0 = results[(0.0, "predictive")].missed_deadline_ratio
    md10 = results[(0.10, "predictive")].missed_deadline_ratio
    assert md10 >= md0 - 0.02