"""E-X10 — extension: heterogeneous processors.

The paper assumes homogeneous processors (§3, property 12); its eq. 3
latency surfaces carry no notion of node speed, so the predictive
algorithm forecasts the same execution time on a fast node and a slow
one.  This bench runs the triangular study on a machine whose nodes
span 0.5x-1.5x the reference speed (same total capacity as the 6-node
homogeneous baseline) and quantifies how much the speed-blind forecasts
cost — the motivation for per-node profiling as future work.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once

#: Total capacity 6.0, like six reference nodes.
SPEEDS = (1.5, 1.25, 1.0, 1.0, 0.75, 0.5)
MAX_UNITS = 15.0


def test_ext_heterogeneous(benchmark, emit, baseline, estimator):
    def sweep():
        out = {}
        for label, factors in (("homogeneous", None), ("heterogeneous", SPEEDS)):
            for policy in ("predictive", "nonpredictive"):
                config = ExperimentConfig(
                    policy=policy,
                    pattern="triangular",
                    max_workload_units=MAX_UNITS,
                    baseline=baseline.with_overrides(speed_factors=factors),
                )
                out[(label, policy)] = run_experiment(
                    config, estimator=estimator
                ).metrics
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [
            label,
            policy,
            m.missed_deadline_ratio,
            m.avg_replicas,
            m.combined,
        ]
        for (label, policy), m in sorted(results.items())
    ]
    emit(
        "ext_heterogeneous",
        format_table(
            ["machine", "policy", "MD", "replicas", "C"],
            rows,
            title=f"E-X10. Heterogeneous machine (speeds {SPEEDS}, "
            f"triangular, {MAX_UNITS:g} units)",
        ),
    )

    # Heterogeneity never helps: the speed-blind forecasts misjudge slow
    # nodes, so misses do not decrease.
    for policy in ("predictive", "nonpredictive"):
        assert results[("heterogeneous", policy)].missed_deadline_ratio >= (
            results[("homogeneous", policy)].missed_deadline_ratio - 0.02
        )
    # The system still functions (the RM compensates with replicas).
    for metrics in results.values():
        assert metrics.combined < 3.0
