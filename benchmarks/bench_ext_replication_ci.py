"""E-X8 — extension: seed-replication confidence intervals for Fig. 10.

The paper reports one run per data point; this bench repeats the
Figure 10 comparison under 5 seeds at three representative workloads
and reports mean +- 95 % CI for the combined metric, confirming the
predictive policy's advantage is not a single-seed artefact.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import replicate_experiment
from repro.experiments.report import format_table

from benchmarks.conftest import run_once

UNITS = (5.0, 15.0, 25.0)
N_SEEDS = 5


def test_ext_replication_ci(benchmark, emit, baseline, estimator):
    def sweep():
        out = {}
        for policy in ("predictive", "nonpredictive"):
            for units in UNITS:
                config = ExperimentConfig(
                    policy=policy,
                    pattern="triangular",
                    max_workload_units=units,
                    baseline=baseline,
                )
                out[(policy, units)] = replicate_experiment(
                    config, n_seeds=N_SEEDS, estimator=estimator
                )
        return out

    results = run_once(benchmark, sweep)
    rows = []
    for units in UNITS:
        for policy in ("predictive", "nonpredictive"):
            summary = results[(policy, units)].summary("combined")
            rows.append(
                [
                    f"{units:g}",
                    policy,
                    summary.mean,
                    summary.std,
                    f"[{summary.ci_low:.3f}, {summary.ci_high:.3f}]",
                ]
            )
    emit(
        "ext_replication_ci",
        format_table(
            ["max workload", "policy", "mean C", "sd", "95% CI"],
            rows,
            title=f"E-X8. Combined metric over {N_SEEDS} seeds (triangular)",
        ),
    )

    # The predictive advantage holds in the mean at every probed point.
    for units in UNITS:
        pred = results[("predictive", units)].summary("combined")
        nonpred = results[("nonpredictive", units)].summary("combined")
        assert pred.mean <= nonpred.mean + 0.02
    # Run-to-run spread is small relative to the means.
    for key, replicated in results.items():
        summary = replicated.summary("combined")
        assert summary.std < 0.3 * max(summary.mean, 1e-9)
