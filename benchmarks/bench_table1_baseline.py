"""E-T1 — Table 1: baseline parameters of the experimental study.

Regenerates the published parameter table from the default
:class:`~repro.experiments.config.BaselineConfig` and asserts the
published values, timing a full system construction as the benchmark
body.
"""

from __future__ import annotations

from repro.cluster.topology import build_system
from repro.experiments.config import BaselineConfig
from repro.experiments.tables import render_table1

from benchmarks.conftest import run_once


def test_table1_baseline(benchmark, emit):
    config = BaselineConfig()

    def build():
        return build_system(
            n_processors=config.n_nodes,
            bandwidth_bps=config.bandwidth_bps,
            quantum=config.quantum,
        )

    system = run_once(benchmark, build)
    assert system.size == 6

    text = render_table1(config)
    emit("table1_baseline", text)

    # The published Table 1 values, asserted.
    assert config.n_nodes == 6
    assert config.quantum == 0.001
    assert config.bandwidth_bps == 100e6
    assert config.track_bytes == 80
    assert config.period == 1.0
    assert abs(config.deadline - 0.990) < 1e-12
    assert config.utilization_threshold == 0.20
