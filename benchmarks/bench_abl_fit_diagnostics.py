"""Ablation: auditing the regression fits themselves.

Runs the profiling campaign for both replicable subtasks at the default
noise level and prints the fit diagnostics (per-level R², residual
summary, heteroscedasticity).  Asserts the health criteria that all
other experiments implicitly rely on.
"""

from __future__ import annotations

from repro.bench.app import aaw_task
from repro.bench.profiler import profile_subtask
from repro.regression.diagnostics import diagnose_latency_fit

from benchmarks.conftest import run_once


def test_abl_fit_diagnostics(benchmark, emit, baseline):
    task = aaw_task(noise_sigma=baseline.noise_sigma)

    def profile_and_diagnose():
        out = {}
        for index in (3, 5):
            result = profile_subtask(
                task.subtask(index),
                repetitions=3,
                seed=baseline.seed + index,
            )
            out[index] = diagnose_latency_fit(result)
        return out

    diagnostics = run_once(benchmark, profile_and_diagnose)
    emit(
        "abl_fit_diagnostics",
        "\n\n".join(diagnostics[index].render() for index in (3, 5)),
    )

    for index, diag in diagnostics.items():
        assert diag.is_healthy, f"subtask {index} fit is unhealthy"
        assert diag.r_squared > 0.95
        # Multiplicative noise on quadratic demand: residuals grow with
        # data size (documented heteroscedasticity).
        assert diag.heteroscedasticity_ratio > 1.0
