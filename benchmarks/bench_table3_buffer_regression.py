"""E-T3 — Table 3: the buffer-delay regression slope.

Runs the §4.2.1.2 campaign (message-pattern replay at increasing total
periodic workloads), fits eq. 5's through-origin line, and prints the
fitted slope next to the published k = 0.7 (per 500-track unit).
Reproduction target: positive, well-fitting linear growth of buffer
delay with total periodic workload, same order of magnitude as the
published slope.
"""

from __future__ import annotations

from repro.experiments.config import BaselineConfig
from repro.experiments.tables import render_table3, reproduce_table3

from benchmarks.conftest import run_once


def test_table3_buffer_regression(benchmark, emit):
    baseline = BaselineConfig()
    result = run_once(benchmark, lambda: reproduce_table3(baseline))
    emit("table3_buffer_regression", render_table3(result))

    fitted = result.fitted
    assert fitted.k_ms_per_track > 0.0
    assert fitted.r_squared > 0.7
    # Same order of magnitude as the paper's 0.7 ms per 500-track unit.
    fitted_per_unit = fitted.k_ms_per_track * 500.0
    assert 0.07 < fitted_per_unit < 70.0
