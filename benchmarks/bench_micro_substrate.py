"""Micro-benchmarks of the substrate layers.

Not a paper artefact — these keep the simulator's own performance
honest (the figure sweeps run hundreds of simulated minutes, so engine
and processor throughput matter) and give pytest-benchmark stable,
repeatable timing targets.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import Network
from repro.cluster.processor import Processor
from repro.regression.latency_model import ExecutionLatencyModel
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    """Schedule + execute 10k chained events.

    Recorded on the reference container (1 CPU, Python 3.11, 100k-event
    chained run, best-of-7 process-CPU time) across the engine hot-path
    tuning (inlined run/run_until loops, hoisted heappush/heappop,
    allocation-free ``Event.__lt__``):

    * before: ~463k events/s
    * after:  ~518k events/s  (+12%)
    """

    def run():
        engine = Engine()
        remaining = {"n": 10_000}

        def tick():
            if remaining["n"] > 0:
                remaining["n"] -= 1
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.executed_count

    executed = benchmark(run)
    assert executed == 10_001


def test_processor_sharing_churn(benchmark):
    """1k overlapping jobs through one PS processor."""

    def run():
        engine = Engine()
        processor = Processor(engine, "p")
        rng = np.random.default_rng(0)
        for i in range(1000):
            engine.schedule_at(
                float(i) * 0.001, processor.run_for, float(rng.uniform(0.001, 0.01))
            )
        engine.run()
        return processor.completed_jobs

    assert benchmark(run) == 1000


def test_network_message_churn(benchmark):
    """1k queued messages through the shared medium."""

    def run():
        engine = Engine()
        network = Network(engine)
        for _ in range(1000):
            network.send_bytes(10_000.0)
        engine.run()
        return network.delivered_count

    assert benchmark(run) == 1000


def test_regression_prediction_throughput(benchmark):
    """Vectorized surface evaluation over a 100x100 grid."""
    model = ExecutionLatencyModel("s", a=(0.5, -0.1, 0.3), b=(2.0, 0.5, 1.0))
    d = np.tile(np.linspace(0.0, 30.0, 100), 100)
    u = np.repeat(np.linspace(0.0, 0.8, 100), 100)

    result = benchmark(lambda: model.predict_ms_grid(d, u))
    assert result.shape == (10_000,)
    assert (result >= 0).all()
