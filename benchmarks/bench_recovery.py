"""E-RECOVERY — checkpoint overhead, resume determinism, failover gain.

Part A drives the calendar kernel from ``bench_engine_speed`` — one
``schedule_many`` batch of P events per 1 s period — with a
:class:`~repro.recovery.Checkpointer` armed at a 10-period interval,
times every capture *inside* the run (so machine noise hits numerator
and denominator alike instead of drowning the signal), and **gates the
events/sec overhead at ≤ 5 %** for every measured P ≥ 512.  The kernel
is where "events/sec" is a meaningful unit: the paper-scale 6-node
experiment simulates a full period in well under a millisecond of wall
time, so there a whole-world pickle every 10 periods is dominated by
fixed pickling cost — that end-to-end overhead is *recorded*
(percentage and ms per snapshot) but gated only on bit-identity, not
throughput.

Part B is the resume-determinism matrix: policies × engines × chaos
scenarios, each run twice — once uninterrupted, once snapshotted
mid-run with :func:`~repro.recovery.take_snapshot` and resumed with
:func:`~repro.recovery.resume_experiment` — gating **bit-identical**
decision digests and metrics in every cell.

Part C runs the ``rm_crash_under_load`` chaos scenario with and
without the standby controller armed and gates the ISSUE's failover
contract: failover strictly beats no-failover on availability and
deadline-miss windows, reports a positive takeover latency, and misses
strictly fewer monitoring cycles.

Part D journals a small campaign, truncates the journal to a torn
mid-campaign crash, resumes with ``resume=True``, and gates that the
merged rows are **byte-identical** to the uninterrupted campaign with
no failed cells.

Run standalone (``python benchmarks/bench_recovery.py``), in CI smoke
form (``--smoke``: smaller kernel, reduced matrix — every gate still
enforced), or via ``pytest benchmarks/bench_recovery.py -m "slow or
not slow"``.  Results land in ``benchmarks/out/BENCH_recovery.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_recovery.json"

#: Calendar densities for the kernel overhead sweep.
SIZES = (128, 512)
SMOKE_SIZES = (128, 512)

KERNEL_PERIODS = 200
SMOKE_KERNEL_PERIODS = 60

#: Checkpoint cadence under test: 10 monitoring periods (period = 1 s).
CHECKPOINT_INTERVAL_PERIODS = 10

#: Maximum events/sec loss with checkpointing armed, at P >= TARGET_P.
TARGET_P = 512
MAX_OVERHEAD = 0.05

#: Resume matrix shape (Part B).
POLICIES = ("predictive", "nonpredictive")
ENGINES = ("scalar", "vectorized")
SCENARIOS = (None, "crashes")
MATRIX_PERIODS = 12
MATRIX_UNITS = 15.0
SNAP_AT = 4.0

#: Failover gate shape (Part C) — the load point where the crashed
#: controller demonstrably costs availability.
FAILOVER_PERIODS = 24
FAILOVER_UNITS = 25.0
FAILOVER_SEED = 5


class _KernelWorld:
    """Minimal world for the calendar kernel: just ``.system.engine``."""

    def __init__(self, engine) -> None:
        self.system = _KernelSystem(engine)


class _KernelSystem:
    def __init__(self, engine) -> None:
        self.engine = engine


class _Noop:
    """Module-level picklable kernel callback."""

    def __call__(self) -> None:
        pass


def _estimator():
    """Reduced-grid fitted estimator (same shape the test suite uses)."""
    from repro.bench.app import aaw_task
    from repro.bench.profiler import build_estimator

    return build_estimator(
        aaw_task(noise_sigma=0.0),
        u_grid=(0.0, 0.2, 0.4, 0.6),
        d_grid_tracks=(200.0, 500.0, 1000.0, 2000.0, 4000.0),
        repetitions=1,
        seed=7,
    )


class _TimedCheckpointer:
    """Wraps :class:`Checkpointer` timing each capture.

    Separating time-in-capture from time-in-simulation inside ONE run
    makes the overhead ratio robust to machine noise — a CPU stall
    inflates both sides of the ratio instead of fabricating (or hiding)
    a 20 % swing between two back-to-back runs.
    """

    def __init__(self, checkpointer) -> None:
        self.checkpointer = checkpointer
        self.take_seconds = 0.0

    def arm(self, engine) -> None:
        engine.schedule(
            self.checkpointer.interval_s,
            self.take,
            priority=100,
            label="ckpt.take",
        )

    def take(self) -> None:
        t0 = time.perf_counter()
        engine = self.checkpointer.world.system.engine
        engine.schedule(
            self.checkpointer.interval_s,
            self.take,
            priority=100,
            label="ckpt.take",
        )
        from repro.recovery import take_snapshot

        snapshot = take_snapshot(self.checkpointer.world)
        self.checkpointer.snapshots.append(snapshot)
        del self.checkpointer.snapshots[: -self.checkpointer.keep]
        self.take_seconds += time.perf_counter() - t0


def _make_batches(p: int, n_periods: int, seed: int) -> list[list[float]]:
    rng = np.random.default_rng(seed)
    return [
        [float(c) + d for d in rng.uniform(0.0, 0.9, size=p)]
        for c in range(n_periods)
    ]


def _kernel(
    batches: list[list[float]], checkpoint: bool
) -> tuple[int, float, float]:
    """Run the kernel; returns (events, total seconds, capture seconds)."""
    from repro.recovery import Checkpointer
    from repro.sim.engine import Engine

    engine = Engine()
    callback = _Noop()
    timed = None
    if checkpoint:
        timed = _TimedCheckpointer(
            Checkpointer(
                _KernelWorld(engine),
                interval_s=float(CHECKPOINT_INTERVAL_PERIODS),
            )
        )
        timed.arm(engine)
    t0 = time.perf_counter()
    for c, times in enumerate(batches):
        engine.schedule_many(times, callback)
        engine.run_until(float(c) + 1.0)
    elapsed = time.perf_counter() - t0
    return engine.executed_count, elapsed, timed.take_seconds if timed else 0.0


def measure_kernel_overhead(p: int, n_periods: int, repetitions: int) -> dict:
    """Events/sec cost of checkpointing at a 10-period cadence.

    ``overhead`` is the best (least noise-inflated) per-run ratio of
    capture time to simulation time — the fraction of throughput the
    checkpointer costs.
    """
    batches = _make_batches(p, n_periods, seed=1)
    n_checkpoints = n_periods // CHECKPOINT_INTERVAL_PERIODS
    best_plain = float("inf")
    best_overhead = float("inf")
    best_take_s = float("inf")
    events = 0
    for _ in range(repetitions):
        n_plain, t_plain, _zero = _kernel(batches, checkpoint=False)
        events = n_plain
        best_plain = min(best_plain, t_plain)
        _n, t_total, t_take = _kernel(batches, checkpoint=True)
        best_overhead = min(best_overhead, t_take / (t_total - t_take))
        best_take_s = min(best_take_s, t_take)
    plain_eps = events / best_plain
    return {
        "p": p,
        "events": events,
        "n_checkpoints": n_checkpoints,
        "plain_events_per_s": plain_eps,
        "checkpointed_events_per_s": plain_eps / (1.0 + best_overhead),
        "ms_per_snapshot": best_take_s / n_checkpoints * 1e3,
        "overhead": best_overhead,
    }


def measure_end_to_end_overhead(estimator, n_periods: int) -> dict:
    """Checkpoint cost on the paper-scale 6-node run (recorded, ungated).

    Also asserts the cheap invariant that *is* gated end to end: the
    checkpointed run finishes with the reference digest and metrics.
    """
    from repro.experiments.config import BaselineConfig, ExperimentConfig
    from repro.experiments.runner import build_world, finalize_world

    timings = {}
    results = {}
    counts = {}
    for checkpoint in (None, float(CHECKPOINT_INTERVAL_PERIODS)):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=FAILOVER_UNITS,
            baseline=BaselineConfig(n_periods=n_periods, seed=3),
            checkpoint=checkpoint,
        )
        best = float("inf")
        for _ in range(3):
            world = build_world(config, estimator=estimator)
            t0 = time.perf_counter()
            world.system.engine.run_until(world.end_time)
            best = min(best, time.perf_counter() - t0)
        counts[checkpoint] = world.system.engine.executed_count
        timings[checkpoint] = best
        results[checkpoint] = finalize_world(world)
    interval = float(CHECKPOINT_INTERVAL_PERIODS)
    n_snapshots = int(n_periods // CHECKPOINT_INTERVAL_PERIODS)
    extra = timings[interval] - timings[None]
    return {
        "n_periods": n_periods,
        "n_snapshots": n_snapshots,
        "plain_s": timings[None],
        "checkpointed_s": timings[interval],
        "overhead": extra / timings[None] if timings[None] else None,
        "ms_per_snapshot": (
            extra / n_snapshots * 1e3 if n_snapshots else None
        ),
        "events": counts[None],
        "digest_equal": (
            results[None].decision_digest == results[interval].decision_digest
        ),
        "metrics_equal": (
            results[None].metrics == results[interval].metrics
        ),
        "note": "paper-scale runs simulate ~1 period per 0.5 ms of wall "
        "time, so whole-world pickling dominates throughput here; the "
        "gated overhead number is the calendar kernel's (Part A)",
    }


def measure_resume_cell(estimator, policy, engine, scenario) -> dict:
    """One matrix cell: uninterrupted vs snapshot-at-t-then-resume."""
    from repro.experiments.config import BaselineConfig, ExperimentConfig
    from repro.experiments.runner import build_world, run_experiment
    from repro.recovery import resume_experiment, take_snapshot

    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=MATRIX_UNITS,
        baseline=BaselineConfig(n_periods=MATRIX_PERIODS, seed=5),
        engine=engine,
        chaos_scenario=scenario,
        hardened=scenario is not None,
    )
    reference = run_experiment(config, estimator=estimator)
    world = build_world(config, estimator=estimator)
    world.system.engine.run_until(SNAP_AT)
    resumed = resume_experiment(take_snapshot(world))
    return {
        "policy": policy,
        "engine": engine,
        "scenario": scenario,
        "snapshot_at": SNAP_AT,
        "digest_equal": resumed.decision_digest == reference.decision_digest,
        "metrics_equal": (
            resumed.metrics.as_dict() == reference.metrics.as_dict()
            and resumed.final_placement == reference.final_placement
        ),
        "decision_digest": reference.decision_digest,
    }


def measure_failover(estimator) -> dict:
    """rm_crash_under_load with and without the standby controller."""
    from repro.chaos import run_chaos_experiment
    from repro.experiments.config import BaselineConfig

    baseline = BaselineConfig(n_periods=FAILOVER_PERIODS, seed=FAILOVER_SEED)
    cells = {}
    for failover in (False, True):
        result = run_chaos_experiment(
            scenario="rm_crash_under_load",
            max_workload_units=FAILOVER_UNITS,
            baseline=baseline,
            hardened=True,
            estimator=estimator,
            failover=failover,
        )
        cells[failover] = result.scorecard
    without, with_ = cells[False], cells[True]
    return {
        "scenario": "rm_crash_under_load",
        "n_periods": FAILOVER_PERIODS,
        "units": FAILOVER_UNITS,
        "no_failover": without.as_dict(),
        "failover": with_.as_dict(),
        "availability_gain": with_.availability - without.availability,
        "miss_window_reduction_s": without.miss_window_s - with_.miss_window_s,
        "takeover_latency_s": with_.takeover_latency_s,
    }


def measure_campaign_resume() -> dict:
    """Journal a campaign, tear the journal mid-run, resume, compare."""
    from repro.experiments.campaign import CampaignSpec, run_campaign
    from repro.experiments.config import BaselineConfig

    spec = CampaignSpec(
        policies=("predictive", "nonpredictive"),
        patterns=("triangular",),
        units=(10.0, 20.0),
        n_seeds=1,
        baseline=BaselineConfig(n_periods=8, seed=3),
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "estimators"
        reference = run_campaign(spec, cache_dir=cache_dir)
        journal = Path(tmp) / "campaign.jsonl"
        run_campaign(spec, cache_dir=cache_dir, journal=journal)
        # Simulate a crash after two cells: keep the header + two rows
        # and a torn partial third line.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + '\n{"kind": "row", "ind')
        resumed = run_campaign(
            spec, cache_dir=cache_dir, journal=journal, resume=True
        )
    return {
        "n_cells": len(reference.rows),
        "cells_survived_crash": 2,
        "rows_byte_identical": (
            resumed.deterministic_json() == reference.deterministic_json()
        ),
        "failed_cells": len(resumed.failed),
    }


def measure_recovery(
    sizes=SIZES,
    kernel_periods: int = KERNEL_PERIODS,
    repetitions: int = 3,
    matrix_scenarios=SCENARIOS,
) -> dict:
    """The full report: overhead sweep, resume matrix, failover, campaign."""
    estimator = _estimator()
    kernel_rows = [
        measure_kernel_overhead(p, kernel_periods, repetitions) for p in sizes
    ]
    matrix = [
        measure_resume_cell(estimator, policy, engine, scenario)
        for policy in POLICIES
        for engine in ENGINES
        for scenario in matrix_scenarios
    ]
    return {
        "bench": "recovery",
        "checkpoint_interval_periods": CHECKPOINT_INTERVAL_PERIODS,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "target": {
            "p": TARGET_P,
            "max_overhead": MAX_OVERHEAD,
        },
        "kernel": kernel_rows,
        "end_to_end": measure_end_to_end_overhead(
            estimator, n_periods=max(kernel_periods // 2, 40)
        ),
        "resume_matrix": matrix,
        "failover": measure_failover(estimator),
        "campaign_resume": measure_campaign_resume(),
    }


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    for row in report["kernel"]:
        if row["p"] >= TARGET_P and row["overhead"] > MAX_OVERHEAD:
            problems.append(
                f"P={row['p']}: checkpointing costs {row['overhead']:.1%} "
                f"events/s at a {CHECKPOINT_INTERVAL_PERIODS}-period "
                f"interval (max {MAX_OVERHEAD:.0%})"
            )
    e2e = report["end_to_end"]
    if not e2e["digest_equal"] or not e2e["metrics_equal"]:
        problems.append(
            "end-to-end: the checkpointed run diverged from the plain run"
        )
    for cell in report["resume_matrix"]:
        if not cell["digest_equal"] or not cell["metrics_equal"]:
            problems.append(
                f"resume diverged: policy={cell['policy']} "
                f"engine={cell['engine']} scenario={cell['scenario']}"
            )
    failover = report["failover"]
    if failover["availability_gain"] <= 0.0:
        problems.append(
            "failover did not strictly improve availability "
            f"({failover['failover']['availability']:.4f} vs "
            f"{failover['no_failover']['availability']:.4f})"
        )
    if failover["miss_window_reduction_s"] <= 0.0:
        problems.append("failover did not strictly shrink the miss window")
    latency = failover["takeover_latency_s"]
    if latency is None or latency <= 0.0:
        problems.append(f"takeover latency not observed (got {latency!r})")
    if (
        failover["failover"]["missed_rm_cycles"]
        >= failover["no_failover"]["missed_rm_cycles"]
    ):
        problems.append(
            "failover did not strictly reduce missed monitoring cycles"
        )
    campaign = report["campaign_resume"]
    if not campaign["rows_byte_identical"]:
        problems.append("resumed campaign rows differ from uninterrupted run")
    if campaign["failed_cells"]:
        problems.append(
            f"resumed campaign recorded {campaign['failed_cells']} "
            "failed cell(s)"
        )
    return problems


@pytest.mark.slow
def test_recovery():
    report = measure_recovery()
    path = write_report(report)
    print(f"\nrecovery report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: smaller kernel, fault-free resume matrix "
        "(every gate still enforced)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = measure_recovery(
            sizes=SMOKE_SIZES,
            kernel_periods=SMOKE_KERNEL_PERIODS,
            repetitions=2,
            matrix_scenarios=(None,),
        )
    else:
        report = measure_recovery()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
