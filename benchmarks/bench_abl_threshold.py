"""E-X3 — ablation: the non-predictive utilization threshold ``UT``.

Table 1 fixes ``UT = 20 %``.  This bench sweeps it: a higher threshold
admits more processors per replication event, amplifying the baseline's
over-replication (higher replica ratio), while a very low threshold
starves it of targets.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_utilization_threshold

from benchmarks.conftest import run_once

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.6)


def test_abl_utilization_threshold(benchmark, emit, baseline, estimator):
    data = run_once(
        benchmark,
        lambda: ablation_utilization_threshold(
            thresholds=THRESHOLDS,
            max_workload_units=20.0,
            baseline=baseline,
            estimator=estimator,
        ),
    )
    emit("abl_utilization_threshold", data.render())

    ratios = data.series["replica_ratio"]
    # A more permissive threshold never reduces replica usage much.
    assert ratios[-1] >= ratios[0] - 0.05
    assert all(0.0 <= m <= 1.0 for m in data.series["missed"])
