"""E-F12 — Figure 12(a-d): four metrics under the decreasing ramp.

The decreasing ramp *starts* at the maximum workload, so early periods
overload an unadapted system; the missed-deadline panel therefore sits
above the increasing ramp's at large workloads — as in the paper,
where the decreasing-ramp miss ratios (Fig. 12a) exceed the increasing
ramp's (Fig. 11a).
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SWEEP_UNITS
from repro.experiments.figures import fig12_decreasing_panels

from benchmarks.conftest import run_once


def test_fig12_decreasing_metrics(benchmark, emit, baseline, estimator):
    panels = run_once(
        benchmark,
        lambda: fig12_decreasing_panels(
            units=DEFAULT_SWEEP_UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit(
        "fig12_decreasing_metrics",
        "\n\n".join(panels[letter].render() for letter in "abcd"),
    )

    missed = panels["a"].series
    replicas = panels["d"].series
    # Non-trivial misses appear at large workloads (the cold-start
    # overload) for both policies.
    assert missed["predictive"][-1] > 0.0
    assert missed["nonpredictive"][-1] > 0.0
    # Replication was engaged.
    assert replicas["predictive"][-1] > 2.0
    assert replicas["nonpredictive"][-1] > 2.0
