"""E-F11 — Figure 11(a-d): four metrics under the increasing ramp."""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SWEEP_UNITS
from repro.experiments.figures import fig11_increasing_panels

from benchmarks.conftest import run_once


def test_fig11_increasing_metrics(benchmark, emit, baseline, estimator):
    panels = run_once(
        benchmark,
        lambda: fig11_increasing_panels(
            units=DEFAULT_SWEEP_UNITS, baseline=baseline, estimator=estimator
        ),
    )
    emit(
        "fig11_increasing_metrics",
        "\n\n".join(panels[letter].render() for letter in "abcd"),
    )

    replicas = panels["d"].series
    heavy = [i for i, u in enumerate(DEFAULT_SWEEP_UNITS) if u >= 10.0]
    # The baseline's over-replication shows on ramps too.
    assert sum(
        replicas["nonpredictive"][i] >= replicas["predictive"][i] for i in heavy
    ) >= len(heavy) * 0.6
    # Replica usage grows with the maximum workload for both policies.
    for policy in ("predictive", "nonpredictive"):
        assert replicas[policy][-1] > replicas[policy][0]
