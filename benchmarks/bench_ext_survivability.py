"""E-X9 — extension: survivability under processor failure.

The paper's opening motivation is survivability; its evaluation never
actually crashes a node.  This bench does: mid-run, the processor
hosting the Filter subtask's original replica fails (permanently, and
in a second scenario with recovery), and we measure the *recovery
time* — periods from the crash until deadlines are met again — for
both allocation policies.
"""

from __future__ import annotations

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.experiments.report import format_table
from repro.experiments.runner import _make_policy
from repro.experiments.config import ExperimentConfig
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from benchmarks.conftest import run_once

N_PERIODS = 40
CRASH_AT = 15.5
WORKLOAD = 5000.0


def run_with_crash(baseline, estimator, policy_name, recover_at=None):
    system = build_system(n_processors=baseline.n_nodes, seed=baseline.seed)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=lambda c: WORKLOAD
    )
    config = ExperimentConfig(
        policy=policy_name, pattern="constant", max_workload_units=10.0,
        baseline=baseline,
    )
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=_make_policy(config),
        config=RMConfig(initial_d_tracks=WORKLOAD / 4.0),
    )
    FailureInjector(system).plan(
        FailureEvent("p3", fail_at=CRASH_AT, recover_at=recover_at)
    ).arm()
    manager.start(N_PERIODS)
    executor.start(N_PERIODS)
    system.engine.run_until(N_PERIODS + 3.0)

    crash_period = int(CRASH_AT)
    post = sorted(
        (r for r in executor.records if r.period_index >= crash_period),
        key=lambda r: r.period_index,
    )
    # Recovery time: periods from the crash until the first streak of 3
    # consecutively-met deadlines (oscillation misses later in the run
    # are counted separately).
    recovery_periods = 0
    streak = 0
    for record in post:
        if record.missed:
            streak = 0
        else:
            streak += 1
            if streak == 3:
                recovery_periods = record.period_index - 2 - crash_period
                break
    else:
        recovery_periods = len(post)
    missed_after = [r.period_index for r in post if r.missed]
    total_missed = sum(1 for r in executor.records if r.missed)
    return recovery_periods, total_missed, len(missed_after)


def test_ext_survivability(benchmark, emit, baseline, estimator):
    results = {}

    def sweep():
        for policy in ("predictive", "nonpredictive"):
            results[(policy, "permanent")] = run_with_crash(
                baseline, estimator, policy
            )
            results[(policy, "transient")] = run_with_crash(
                baseline, estimator, policy, recover_at=CRASH_AT + 10.0
            )
        return results

    run_once(benchmark, sweep)
    rows = [
        [
            policy,
            scenario,
            results[(policy, scenario)][0],
            results[(policy, scenario)][2],
            results[(policy, scenario)][1],
        ]
        for policy in ("predictive", "nonpredictive")
        for scenario in ("permanent", "transient")
    ]
    emit(
        "ext_survivability",
        format_table(
            ["policy", "failure", "recovery (periods)", "missed after crash",
             "missed total"],
            rows,
            title="E-X9. Survivability: crash of the Filter home node "
            f"at t={CRASH_AT:g}s (constant {WORKLOAD:.0f} tracks)",
        ),
    )

    for key, (recovery, total, after) in results.items():
        # Both policies re-establish timeliness within a handful of
        # periods — the paper's survivability motivation, demonstrated.
        assert recovery <= 6, f"{key}: recovery took {recovery} periods"
        assert after <= 8, f"{key}: {after} misses after the crash"
    # The predictive policy recovers at least as fast as the heuristic.
    for scenario in ("permanent", "transient"):
        assert (
            results[("predictive", scenario)][0]
            <= results[("nonpredictive", scenario)][0]
        )
