"""E-ZOO — the allocator zoo scored against the CPU oracle.

Sweeps the policy × workload-pattern × chaos-scenario matrix over the
two paper policies (lifted through
:class:`~repro.core.allocation.CandidatePolicyAdapter`) and the three
cycle-scoped allocators (``market``, ``fairshare``, ``oracle``), turning
each cell group's combined metric C into per-policy *regret* against the
oracle via :func:`repro.experiments.metrics.regret_by_policy`.  The
report lands in ``benchmarks/out/BENCH_allocator_zoo.json``.

Two hard requirements (nonzero exit when violated):

* **replay determinism** — re-running a cell under the same master seed
  must reproduce its metrics and decision digest bit-identically;
* **oracle near-optimality** — on every fault-free cell the oracle's
  regret is zero by construction and no policy may beat it by more than
  ``ORACLE_SLACK``.  The slack exists because the oracle sees true CPU
  demand, not the full combined metric: a cheaper policy can shave C a
  little through lower replica counts, but a larger gap means the
  oracle's forecasts stopped being a meaningful upper baseline.

Run standalone (``python benchmarks/bench_allocator_zoo.py``), in CI
smoke form (``--smoke``: fewer periods), or via
``pytest benchmarks/bench_allocator_zoo.py -m "slow or not slow"``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_allocator_zoo.json"

#: Every registered allocator the experiment runner accepts end to end.
POLICIES = ("predictive", "nonpredictive", "market", "fairshare", "oracle")

#: Workload shapes from Figure 8 — one symmetric ramp, one monotonic
#: ramp, one bursty profile.
PATTERNS = ("triangular", "increasing", "bursty")

#: (chaos scenario, hardened) cells.  The fault cells run hardened so a
#: corrupted utilization reading is sanitized instead of crashing the
#: regression model inside every zoo allocator.
SCENARIOS = ((None, False), ("crashes", True), ("clock_drift", True))

#: No policy may beat the oracle's combined metric by more than this on
#: a fault-free cell (see the module docstring for why zero is too
#: strict: the oracle is a CPU-demand oracle, not a C oracle).
ORACLE_SLACK = 0.02

FULL_PERIODS = 40
SMOKE_PERIODS = 12

#: Peak offered workload — hot enough that every policy must replicate.
MAX_WORKLOAD_UNITS = 15.0

MASTER_SEED = 5


def _run_cell(policy, pattern, scenario, hardened, baseline, estimator):
    """One matrix cell; returns (metrics dict | None, digest | None, error)."""
    from repro.errors import ReproError
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    try:
        result = run_experiment(
            ExperimentConfig(
                policy=policy,
                pattern=pattern,
                max_workload_units=MAX_WORKLOAD_UNITS,
                baseline=baseline,
                chaos_scenario=scenario,
                hardened=hardened,
            ),
            estimator=estimator,
        )
    except ReproError as exc:
        return None, None, f"{type(exc).__name__}: {exc}"
    return result.metrics.as_dict(), result.decision_digest, None


def measure_allocator_zoo(n_periods: int = FULL_PERIODS) -> dict:
    """The policy × pattern × scenario matrix with per-cell regret."""
    from repro.experiments.config import BaselineConfig
    from repro.experiments.estimator_cache import get_estimator
    from repro.experiments.metrics import regret_by_policy

    baseline = BaselineConfig(n_periods=n_periods, seed=MASTER_SEED)
    estimator = get_estimator(baseline)

    rows = []
    for pattern in PATTERNS:
        for scenario, hardened in SCENARIOS:
            combined: dict[str, float] = {}
            group = []
            for policy in POLICIES:
                metrics, digest, error = _run_cell(
                    policy, pattern, scenario, hardened, baseline, estimator
                )
                if metrics is not None:
                    combined[policy] = metrics["combined"]
                group.append(
                    {
                        "policy": policy,
                        "pattern": pattern,
                        "scenario": scenario,
                        "hardened": hardened,
                        "crashed": error is not None,
                        "error": error,
                        "decision_digest": digest,
                        "metrics": metrics,
                    }
                )
            regrets = (
                regret_by_policy(combined) if "oracle" in combined else {}
            )
            for row in group:
                row["regret"] = regrets.get(row["policy"])
            rows.extend(group)

    # Replay determinism: the first cell, re-run from scratch.
    replay_metrics, replay_digest, replay_error = _run_cell(
        rows[0]["policy"],
        rows[0]["pattern"],
        rows[0]["scenario"],
        rows[0]["hardened"],
        baseline,
        estimator,
    )
    replay_identical = (
        replay_metrics == rows[0]["metrics"]
        and replay_digest == rows[0]["decision_digest"]
        and (replay_error is not None) == rows[0]["crashed"]
    )

    return {
        "bench": "allocator_zoo",
        "kernel": {
            "n_periods": n_periods,
            "max_workload_units": MAX_WORKLOAD_UNITS,
            "master_seed": MASTER_SEED,
            "policies": list(POLICIES),
            "patterns": list(PATTERNS),
            "scenarios": [list(cell) for cell in SCENARIOS],
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "requirements": {"oracle_slack": ORACLE_SLACK},
        "replay_identical": replay_identical,
        "rows": rows,
        "note": "regret = C_policy - C_oracle within each "
        "(pattern, scenario) cell group; lower C is better, so a "
        "negative regret means the policy beat the CPU oracle",
    }


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    if not report["replay_identical"]:
        problems.append("fixed-seed replay diverged (metrics or digest)")
    for row in report["rows"]:
        if row["crashed"]:
            problems.append(
                f"{row['policy']}/{row['pattern']}/{row['scenario']}: "
                f"cell crashed: {row['error']}"
            )
            continue
        if row["regret"] is None:
            problems.append(
                f"{row['policy']}/{row['pattern']}/{row['scenario']}: "
                "no regret (oracle reference missing from cell group)"
            )
            continue
        if row["scenario"] is None and row["regret"] < -ORACLE_SLACK:
            problems.append(
                f"{row['policy']}/{row['pattern']} beats the oracle by "
                f"{-row['regret']:.4f} on a fault-free cell "
                f"(slack {ORACLE_SLACK})"
            )
    oracle_rows = [r for r in report["rows"] if r["policy"] == "oracle"]
    if any(r["regret"] not in (0.0, None) for r in oracle_rows):
        problems.append("the oracle's regret against itself is not zero")
    return problems


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


@pytest.mark.slow
def test_allocator_zoo():
    report = measure_allocator_zoo(n_periods=SMOKE_PERIODS)
    path = write_report(report)
    print(f"\nallocator zoo report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: fewer periods per run",
    )
    args = parser.parse_args(argv)
    periods = SMOKE_PERIODS if args.smoke else FULL_PERIODS
    report = measure_allocator_zoo(n_periods=periods)
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
