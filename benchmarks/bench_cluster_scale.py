"""E-SCALE — RM decision-loop throughput at large processor counts.

The RM hot path asks three kinds of question per step: the Figure 5
least-utilized sweep (repeated with a growing exclusion set as replicas
are placed), the Figure 7 threshold sweep, and the mean-utilization
feed.  The straightforward implementation re-reads every utilization
meter per query — O(P) each — which is invisible at the paper's P=6 but
dominates the loop at the ROADMAP's hundreds-of-processors scale.

This bench drives identical background load on two systems per cluster
size — one with the incremental utilization index, one forced onto the
reference scans — replays the same decision-loop kernel on both, checks
the answers are **bit-identical**, and records decisions/sec in
``benchmarks/out/BENCH_cluster_scale.json``.

Run standalone (``python benchmarks/bench_cluster_scale.py``), in CI
smoke form (``--smoke``: P in {6, 32}, fewer steps), or via
``pytest benchmarks/bench_cluster_scale.py -m "slow or not slow"``.
The P=6 guard — the index must stay within ``GUARD_RATIO`` of the scan
even on the paper-sized cluster, where it has nothing to win — is
applied whenever P=6 is part of the sweep.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_cluster_scale.json"

#: Cluster sizes of the full sweep (6 = the paper's testbed).
CLUSTER_SIZES = (6, 32, 128, 512)
SMOKE_SIZES = (6, 32)

#: Decision-loop shape per step (mirrors an *acting* manager step): the
#: mean-utilization feed, a Figure 5 sweep of this many argmin queries
#: (growing exclusion set), the Figure 7 threshold sweep at these
#: thresholds, and the deadline-reassignment mean re-read.
ARGMIN_SWEEP = 6
BELOW_THRESHOLDS = (0.2, 0.5)

#: At P=6 the index cannot win (there is nothing to skip); it must not
#: lose more than this factor either.
GUARD_RATIO = 1.05

#: Required index speedup at the ISSUE's headline size.
TARGET_P = 128
TARGET_SPEEDUP = 5.0


def _build_loaded_system(n_processors: int, seed: int, use_index: bool):
    """A cluster with seeded bursty background load scheduled on it."""
    from repro.cluster.topology import build_system

    system = build_system(
        n_processors=n_processors,
        seed=seed,
        clock_sync_enabled=False,
        use_utilization_index=use_index,
    )
    rng = random.Random(seed)
    for _ in range(4 * n_processors):
        proc = system.processors[rng.randrange(n_processors)]
        start = rng.uniform(0.0, 30.0)
        demand = rng.uniform(0.05, 1.0)
        system.engine.schedule_at(
            start,
            lambda p=proc, d=demand: p.run_for(d, kind="bg"),
            label="bench.bg",
        )
    return system


def _decision_loop(system, n_steps: int, dt: float) -> tuple[float, int, list]:
    """Replay the RM query kernel; time only the queries.

    Returns ``(query_seconds, n_queries, answers)`` where ``answers``
    is the full decision sequence for the bit-identity check.
    """
    answers: list = []
    elapsed = 0.0
    queries = 0
    t = system.engine.now
    for _ in range(n_steps):
        t += dt
        system.engine.run_until(t)  # engine work is untimed
        t0 = time.perf_counter()
        mean = system.mean_utilization()
        queries += 1
        exclude: set[str] = set()
        sweep: list[str] = []
        for _ in range(ARGMIN_SWEEP):
            found = system.least_utilized(exclude=exclude)
            queries += 1
            if found is None:
                break
            sweep.append(found.name)
            exclude.add(found.name)
        below = [
            tuple(p.name for p in system.processors_below(threshold))
            for threshold in BELOW_THRESHOLDS
        ]
        queries += len(BELOW_THRESHOLDS)
        # Acting steps re-read the mean for the deadline reassignment
        # (manager._reassign_deadlines), same timestamp as the first.
        mean_again = system.mean_utilization()
        queries += 1
        elapsed += time.perf_counter() - t0
        answers.append((mean, mean_again, tuple(sweep), tuple(below)))
    return elapsed, queries, answers


def _measure_mode(
    n_processors: int, use_index: bool, n_steps: int, repetitions: int
) -> tuple[float, list]:
    """Best decisions/sec over ``repetitions`` fresh runs, plus answers."""
    best_dps = 0.0
    answers: list = []
    for rep in range(repetitions):
        system = _build_loaded_system(n_processors, seed=7, use_index=use_index)
        elapsed, queries, run_answers = _decision_loop(
            system, n_steps=n_steps, dt=0.25
        )
        if rep == 0:
            answers = run_answers
        elif run_answers != answers:
            raise AssertionError(
                f"P={n_processors} repetition {rep} diverged from itself"
            )
        dps = queries / elapsed if elapsed > 0.0 else float("inf")
        best_dps = max(best_dps, dps)
    return best_dps, answers


def measure_cluster_scale(
    sizes=CLUSTER_SIZES, n_steps: int = 40, repetitions: int = 3
) -> dict:
    """Index-vs-scan decision throughput across cluster sizes."""
    rows = []
    for n_processors in sizes:
        index_dps, index_answers = _measure_mode(
            n_processors, use_index=True, n_steps=n_steps, repetitions=repetitions
        )
        scan_dps, scan_answers = _measure_mode(
            n_processors, use_index=False, n_steps=n_steps, repetitions=repetitions
        )
        stats_system = _build_loaded_system(n_processors, seed=7, use_index=True)
        _decision_loop(stats_system, n_steps=min(n_steps, 10), dt=0.25)
        index = stats_system.utilization_index
        rows.append(
            {
                "n_processors": n_processors,
                "index_decisions_per_s": index_dps,
                "scan_decisions_per_s": scan_dps,
                "speedup": index_dps / scan_dps if scan_dps else None,
                "bit_identical": index_answers == scan_answers,
                "index_stats_sample": index.stats.as_dict() if index else None,
            }
        )
    return {
        "bench": "cluster_scale",
        "kernel": {
            "n_steps": n_steps,
            "repetitions": repetitions,
            "argmin_sweep": ARGMIN_SWEEP,
            "below_thresholds": list(BELOW_THRESHOLDS),
            "timed": "queries only; engine advancement untimed",
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "guard": {
            "p": 6,
            "max_slowdown": GUARD_RATIO,
        },
        "target": {
            "p": TARGET_P,
            "min_speedup": TARGET_SPEEDUP,
        },
        "rows": rows,
        "note": "decisions/sec = RM query kernel throughput (mean feed + "
        "Figure 5 argmin sweep + Figure 7 threshold sweep per step)",
    }


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    for row in report["rows"]:
        if not row["bit_identical"]:
            problems.append(
                f"P={row['n_processors']}: index and scan decision "
                "sequences diverged"
            )
        if row["n_processors"] == 6 and row["speedup"] is not None:
            if row["speedup"] < 1.0 / GUARD_RATIO:
                problems.append(
                    f"P=6 guard: index at {row['speedup']:.3f}x of scan, "
                    f"below the 1/{GUARD_RATIO} floor"
                )
        if row["n_processors"] == TARGET_P and row["speedup"] is not None:
            if row["speedup"] < TARGET_SPEEDUP:
                problems.append(
                    f"P={TARGET_P}: speedup {row['speedup']:.2f}x below "
                    f"the {TARGET_SPEEDUP}x target"
                )
    return problems


@pytest.mark.slow
def test_cluster_scale():
    report = measure_cluster_scale()
    path = write_report(report)
    print(f"\ncluster scale report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: P in {6, 32} with a shorter kernel",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = measure_cluster_scale(
            sizes=SMOKE_SIZES, n_steps=25, repetitions=2
        )
    else:
        report = measure_cluster_scale()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
