"""E-PAR — parallel scaling of a Figure-9-style campaign.

Runs the same predictive-vs-non-predictive triangular sweep (heavier
than the paper's: more periods, replicated seeds) serially and under
2/4/8 process-pool workers, then records wall-clock, speedup and a
**bit-identical determinism check** (every parallel row must equal the
serial row) in ``benchmarks/out/BENCH_parallel_scaling.json``.

The estimator-cache effect is measured separately: a cold profile+fit
versus a warm disk load — the cache is what keeps workers from
re-profiling (the fit costs ~50x one experiment run).

Interpretation: the speedup ceiling is ``min(n_jobs, cpu_count)``; on a
single-CPU container the parallel widths measure pool overhead only,
while the determinism check and the cache speedup are CPU-independent.
Such runs are stamped ``"degraded": true`` and their per-width
``speedup_vs_serial`` is nulled out, so the JSON can never be mistaken
for a speedup measurement — re-record on multi-core hardware for real
scaling numbers.

Run standalone (``python benchmarks/bench_parallel_scaling.py``) or via
``pytest benchmarks/bench_parallel_scaling.py -m "slow or not slow"``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_parallel_scaling.json"


def _usable_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

#: Heavier-than-paper Fig. 9 sweep: every workload point, both policies,
#: two seeds, 4x the periods.
N_PERIODS = 240
N_SEEDS = 2
WORKER_COUNTS = (2, 4, 8)


def _campaign_spec():
    from repro.experiments.campaign import CampaignSpec
    from repro.experiments.config import DEFAULT_SWEEP_UNITS, BaselineConfig

    return CampaignSpec(
        policies=("predictive", "nonpredictive"),
        patterns=("triangular",),
        units=DEFAULT_SWEEP_UNITS,
        n_seeds=N_SEEDS,
        baseline=BaselineConfig(n_periods=N_PERIODS),
    )


def measure_scaling(cache_dir: Path) -> dict:
    """Time the campaign at each worker count; verify bit-identical rows."""
    from repro.experiments import estimator_cache
    from repro.experiments.campaign import run_campaign

    spec = _campaign_spec()

    # Estimator cache: cold profile+fit vs warm disk load.
    estimator_cache.clear_memory_cache()
    t0 = time.perf_counter()
    estimator_cache.get_estimator(spec.baseline, cache_dir=cache_dir)
    cold_fit_s = time.perf_counter() - t0
    estimator_cache.clear_memory_cache()
    t0 = time.perf_counter()
    estimator_cache.get_estimator(spec.baseline, cache_dir=cache_dir)
    disk_load_s = time.perf_counter() - t0

    def run(n_jobs: int):
        t0 = time.perf_counter()
        result = run_campaign(spec, n_jobs=n_jobs, cache_dir=cache_dir)
        return result, time.perf_counter() - t0

    serial, serial_s = run(1)
    serial_rows = [row.metrics.as_dict() for row in serial.rows]

    # With one usable CPU the parallel widths can only measure pool
    # overhead; suppress the speedup numbers so the JSON cannot be read
    # as a scaling measurement (the determinism check still stands).
    degraded = _usable_cpus() < 2

    widths = []
    for n_jobs in WORKER_COUNTS:
        parallel, wall_s = run(n_jobs)
        parallel_rows = [row.metrics.as_dict() for row in parallel.rows]
        widths.append(
            {
                "n_jobs": n_jobs,
                "wall_clock_s": wall_s,
                "speedup_vs_serial": (
                    None if degraded or not wall_s else serial_s / wall_s
                ),
                "bit_identical_to_serial": parallel_rows == serial_rows,
                "max_rss_kb": max(row.max_rss_kb for row in parallel.rows),
                "distinct_worker_pids": len({row.pid for row in parallel.rows}),
            }
        )

    return {
        "degraded": degraded,
        "bench": "parallel_scaling",
        "sweep": {
            "policies": list(spec.policies),
            "patterns": list(spec.patterns),
            "units": list(spec.units),
            "n_seeds": spec.n_seeds,
            "n_periods": N_PERIODS,
            "n_runs": spec.n_runs,
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "sched_affinity": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else None,
            "python": sys.version.split()[0],
        },
        "estimator_cache": {
            "cold_fit_s": cold_fit_s,
            "disk_load_s": disk_load_s,
            "speedup": cold_fit_s / disk_load_s if disk_load_s else None,
        },
        "serial_wall_clock_s": serial_s,
        "workers": widths,
        "note": (
            "DEGRADED: one usable CPU — the parallel widths measure "
            "pool overhead only and speedup_vs_serial is suppressed; "
            "re-record on multi-core hardware for scaling numbers"
            if degraded
            else "speedup ceiling is min(n_jobs, cpu_count)"
        ),
    }


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


@pytest.mark.slow
def test_parallel_scaling(tmp_path):
    report = measure_scaling(tmp_path / "cache")
    path = write_report(report)
    print(f"\nparallel scaling report written to {path}")
    # Determinism is a hard requirement at every width; speedup is
    # hardware-dependent (ceiling = min(n_jobs, cpu_count)).
    for width in report["workers"]:
        assert width["bit_identical_to_serial"], width
    assert report["estimator_cache"]["speedup"] > 10.0


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = measure_scaling(Path(tmp))
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
