"""Ablation: processor-sharing vs exact quantum round-robin.

DESIGN.md §2 substitutes the testbed's 1 ms-quantum round-robin
scheduler with its processor-sharing limit.  This bench quantifies both
sides of that substitution on a full experiment: metric agreement and
the simulation-speed advantage of PS.
"""

from __future__ import annotations

import time

from repro.cluster.processor import Discipline
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once


def _run(baseline, estimator, discipline):
    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=15.0,
        baseline=baseline.with_overrides(discipline=discipline, n_periods=30),
    )
    start = time.perf_counter()
    result = run_experiment(config, estimator=estimator)
    elapsed = time.perf_counter() - start
    return result.metrics, elapsed


def test_abl_processor_model(benchmark, emit, baseline, estimator):
    ps_metrics, ps_elapsed = run_once(
        benchmark,
        lambda: _run(baseline, estimator, Discipline.PROCESSOR_SHARING),
    )
    rr_metrics, rr_elapsed = _run(baseline, estimator, Discipline.ROUND_ROBIN)

    rows = [
        ["missed", ps_metrics.missed_deadline_ratio, rr_metrics.missed_deadline_ratio],
        ["cpu", ps_metrics.avg_cpu_utilization, rr_metrics.avg_cpu_utilization],
        ["net", ps_metrics.avg_network_utilization, rr_metrics.avg_network_utilization],
        ["replicas", ps_metrics.avg_replicas, rr_metrics.avg_replicas],
        ["combined", ps_metrics.combined, rr_metrics.combined],
        ["wall time (s)", ps_elapsed, rr_elapsed],
    ]
    emit(
        "abl_processor_model",
        format_table(
            ["metric", "processor sharing", "round robin (1 ms)"],
            rows,
            title="Processor-model ablation (predictive, triangular, 15 units)",
        ),
    )

    # The substitution is sound: metrics agree closely.
    assert abs(
        ps_metrics.missed_deadline_ratio - rr_metrics.missed_deadline_ratio
    ) <= 0.15
    assert abs(
        ps_metrics.avg_cpu_utilization - rr_metrics.avg_cpu_utilization
    ) <= 0.05
    assert abs(ps_metrics.combined - rr_metrics.combined) <= 0.35
