"""E-T2 — Table 2: execution-latency regression coefficients.

Runs the §4.2.1.1 profiling campaign for the two replicable subtasks
(chain indices 3 and 5, as in the paper), fits eq. 3 by the two-stage
procedure, and prints the fitted coefficients next to the published
ones.  Absolute values differ (synthetic benchmark vs the authors'
AAW testbed); the asserted reproduction target is the *structure*: a
well-fitting surface (R^2) whose d^2 curvature is positive and whose
latency grows with utilization.
"""

from __future__ import annotations

from repro.experiments.config import BaselineConfig
from repro.experiments.tables import render_table2, reproduce_table2

from benchmarks.conftest import run_once


def test_table2_latency_regression(benchmark, emit):
    baseline = BaselineConfig()
    rows = run_once(
        benchmark, lambda: reproduce_table2(baseline=baseline, repetitions=2)
    )
    emit("table2_latency_regression", render_table2(rows))

    assert [row.subtask_index for row in rows] == [3, 5]
    for row in rows:
        fitted = row.fitted
        assert fitted.r_squared > 0.9
        # Positive d^2 curvature at every profiled utilization level.
        for u in (0.0, 0.4, 0.8):
            assert fitted.d2_coefficient(u) > 0.0
        # Latency grows with utilization (the 'Y-' surface of Fig. 4).
        assert fitted.predict_ms(20.0, 0.8) > fitted.predict_ms(20.0, 0.0)
