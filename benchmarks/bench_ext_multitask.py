"""E-X7 — extension: multi-task deployments.

The paper's model (§3) defines a task *set* but evaluates one task;
this bench scales the benchmark to 1-3 concurrent tasks on the same
6-node machine (phase-shifted triangular workloads) and shows that the
decentralized managers keep every task timely while contention drives
utilizations up — and that eq. 5's total-workload coupling is live
(the ledger feeds every manager the sum over tasks).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.multitask import run_multi_task_experiment
from repro.experiments.report import format_table

from benchmarks.conftest import run_once

TASK_COUNTS = (1, 2, 3)
MAX_UNITS = 10.0


def test_ext_multitask_scaling(benchmark, emit, baseline, estimator):
    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=MAX_UNITS,
        baseline=baseline,
    )

    def sweep():
        return {
            n: run_multi_task_experiment(config, n_tasks=n, estimator=estimator)
            for n in TASK_COUNTS
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            n,
            results[n].aggregate.missed_deadline_ratio,
            results[n].aggregate.avg_cpu_utilization,
            results[n].aggregate.avg_network_utilization,
            results[n].aggregate.avg_replicas,
            results[n].aggregate.rm_actions,
        ]
        for n in TASK_COUNTS
    ]
    emit(
        "ext_multitask_scaling",
        format_table(
            ["tasks", "MD", "cpu", "net", "total replicas", "rm actions"],
            rows,
            title=f"E-X7. Multi-task scaling (predictive, triangular, "
            f"{MAX_UNITS:g} units each)",
        ),
    )

    # Contention grows with task count.
    cpu = [results[n].aggregate.avg_cpu_utilization for n in TASK_COUNTS]
    net = [results[n].aggregate.avg_network_utilization for n in TASK_COUNTS]
    assert cpu[0] < cpu[1] < cpu[2]
    assert net[0] < net[1] < net[2]
    # The managers keep the fleet functional even with 3 tasks.
    assert results[3].aggregate.missed_deadline_ratio < 0.3
    # Every task adapted.
    for n in TASK_COUNTS:
        for metrics in results[n].per_task_metrics.values():
            assert metrics.rm_actions > 0
