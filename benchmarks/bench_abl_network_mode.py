"""Ablation: shared Ethernet segment vs full-duplex switch.

The paper's eq. 5 buffer-delay model exists *because* the medium is a
shared segment (Table 1).  On a switched fabric concurrent replica
messages do not contend, so buffer delay vanishes and the eq. 5 slope
degenerates toward zero — quantified here on both the profiling
campaign and a full experiment.
"""

from __future__ import annotations

from repro.bench.app import aaw_task
from repro.bench.profiler import profile_buffer_delay
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from benchmarks.conftest import run_once


def test_abl_network_mode(benchmark, emit, baseline, estimator):
    task = aaw_task(noise_sigma=0.0)

    def profile_both():
        shared = profile_buffer_delay(task, periods=3)
        # Switched medium: replay the same pattern without contention by
        # running a zero-fanout... the campaign models the shared queue,
        # so emulate the switch by fanout=1 with stages far apart.
        switched = profile_buffer_delay(
            task, periods=3, fanout=1, stage_offset=0.24
        )
        return shared, switched

    shared_profile, switched_profile = run_once(benchmark, profile_both)

    shared_exp = run_experiment(
        ExperimentConfig(
            policy="nonpredictive", pattern="triangular",
            max_workload_units=20.0, baseline=baseline,
        ),
        estimator=estimator,
    ).metrics
    switched_exp = run_experiment(
        ExperimentConfig(
            policy="nonpredictive", pattern="triangular",
            max_workload_units=20.0,
            baseline=baseline.with_overrides(network_mode="switched"),
        ),
        estimator=estimator,
    ).metrics

    rows = [
        [
            "eq.5 slope k (ms/500 tracks)",
            shared_profile.model.k_ms_per_track * 500,
            switched_profile.model.k_ms_per_track * 500,
        ],
        ["experiment MD", shared_exp.missed_deadline_ratio,
         switched_exp.missed_deadline_ratio],
        ["experiment net util", shared_exp.avg_network_utilization,
         switched_exp.avg_network_utilization],
        ["experiment combined", shared_exp.combined, switched_exp.combined],
    ]
    emit(
        "abl_network_mode",
        format_table(
            ["quantity", "shared segment", "switched"],
            rows,
            title="Network-mode ablation (non-predictive, triangular, 20 units)",
        ),
    )

    # Contention-free message pattern shows (near-)zero buffer growth.
    assert (
        switched_profile.model.k_ms_per_track
        < 0.3 * shared_profile.model.k_ms_per_track
    )
    # On the switch the same workload misses no more deadlines.
    assert switched_exp.missed_deadline_ratio <= (
        shared_exp.missed_deadline_ratio + 0.02
    )
