"""E-ENGINE — vectorized vs scalar engine core throughput.

Part A drives a pure calendar kernel — one ``schedule_many`` batch of P
events plus two irregular ``schedule_at`` events per period, then
``run_until`` the period boundary — on the classic heap engine and the
array-backed :class:`~repro.sim.vector.VectorizedEngine`, records
events/sec for P ∈ {6, 32, 128, 512}, and **asserts execution-order
equivalence** on an instrumented workload first.  The per-period event
batches are precomputed outside the timed region so the kernel measures
the engine, not the workload generator.

Part B times the same full experiment end to end on both engines per
cluster size and checks the **decision digests** are identical — the
full-stack form of the bit-identity contract.  End-to-end runs are not
calendar-dominated, so their speedup is recorded but not gated.

Part C runs one small campaign serially, sharded (``shards=2``) and on
the vectorized engine, and checks all three produce byte-identical
deterministic row JSON.

Gates (``check_report``): order/digest/sharded equivalence always;
vectorized ≥ 3x scalar kernel events/sec at every measured P ≥ 128.

Run standalone (``python benchmarks/bench_engine_speed.py``), in CI
smoke form (``--smoke``: P in {6, 32}, shorter kernel — equivalence
gates still enforced), or via ``pytest benchmarks/bench_engine_speed.py
-m "slow or not slow"``.  Results land in
``benchmarks/out/BENCH_engine_speed.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_engine_speed.json"

#: Cluster/batch sizes of the full sweep (6 = the paper's testbed).
SIZES = (6, 32, 128, 512)
SMOKE_SIZES = (6, 32)

#: Kernel shape: per period, one batch of P events + 2 irregular ones.
KERNEL_PERIODS = 200
SMOKE_KERNEL_PERIODS = 60
ORDER_CHECK_PERIODS = 50

#: End-to-end experiment length per cluster size.
E2E_PERIODS = 40
SMOKE_E2E_PERIODS = 12

#: Required kernel speedup at and above the ISSUE's headline size.
TARGET_P = 128
TARGET_SPEEDUP = 3.0


def _engine_classes():
    from repro.sim.engine import Engine
    from repro.sim.vector import VectorizedEngine

    return Engine, VectorizedEngine


def _make_batches(p: int, n_periods: int, seed: int) -> list[list[float]]:
    """Precomputed per-period event times (kept outside the timed region)."""
    rng = np.random.default_rng(seed)
    return [
        [float(c) + d for d in rng.uniform(0.0, 0.9, size=p)]
        for c in range(n_periods)
    ]


def _kernel(engine_cls, batches: list[list[float]]) -> tuple[int, float]:
    """Run the calendar kernel; returns (events executed, seconds)."""
    engine = engine_cls()

    def cb() -> None:
        pass

    t0 = time.perf_counter()
    for c, times in enumerate(batches):
        base = float(c)
        engine.schedule_many(times, cb)
        engine.schedule_at(base + 0.95, cb, priority=-10)
        engine.schedule_at(base + 0.99, cb)
        engine.run_until(base + 1.0)
    elapsed = time.perf_counter() - t0
    return engine.executed_count, elapsed


def _execution_order(engine_cls, p: int, n_periods: int, seed: int) -> list:
    """Instrumented kernel: the full (tag, period, index, now) order log."""
    rng = np.random.default_rng(seed)
    engine = engine_cls()
    log: list = []
    for c in range(n_periods):
        base = float(c)
        times = [base + d for d in rng.uniform(0.0, 0.9, size=p)]
        callbacks = [
            (lambda i=c, j=j: log.append(("m", i, j, engine.now)))
            for j in range(p)
        ]
        engine.schedule_many(times, callbacks)
        engine.schedule_at(
            base + 0.5, (lambda i=c: log.append(("x", i, engine.now)))
        )
        engine.run_until(base + 1.0)
    return log


def measure_kernel(p: int, n_periods: int, repetitions: int) -> dict:
    """Best-of-N events/sec on both engines, plus the order check."""
    scalar_cls, vector_cls = _engine_classes()
    order_equivalent = _execution_order(
        scalar_cls, p, ORDER_CHECK_PERIODS, seed=7
    ) == _execution_order(vector_cls, p, ORDER_CHECK_PERIODS, seed=7)
    batches = _make_batches(p, n_periods, seed=1)
    best_scalar = best_vector = float("inf")
    events = 0
    for _ in range(repetitions):
        n_scalar, t_scalar = _kernel(scalar_cls, batches)
        n_vector, t_vector = _kernel(vector_cls, batches)
        if n_scalar != n_vector:
            raise AssertionError(
                f"P={p}: engines executed {n_scalar} vs {n_vector} events"
            )
        events = n_scalar
        best_scalar = min(best_scalar, t_scalar)
        best_vector = min(best_vector, t_vector)
    scalar_eps = events / best_scalar if best_scalar else float("inf")
    vector_eps = events / best_vector if best_vector else float("inf")
    return {
        "p": p,
        "events": events,
        "scalar_events_per_s": scalar_eps,
        "vectorized_events_per_s": vector_eps,
        "speedup": vector_eps / scalar_eps if scalar_eps else None,
        "order_equivalent": order_equivalent,
    }


def measure_end_to_end(n_nodes: int, n_periods: int) -> dict:
    """One full experiment per engine: wall time + decision digests."""
    from repro.experiments.config import BaselineConfig, ExperimentConfig
    from repro.experiments.estimator_cache import get_estimator
    from repro.experiments.runner import run_experiment

    baseline = BaselineConfig(n_nodes=n_nodes, n_periods=n_periods)
    estimator = get_estimator(baseline)
    results = {}
    timings = {}
    for engine in ("scalar", "vectorized"):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=200.0,
            baseline=baseline,
            engine=engine,
        )
        t0 = time.perf_counter()
        results[engine] = run_experiment(config, estimator=estimator)
        timings[engine] = time.perf_counter() - t0
    digests_equal = (
        results["scalar"].decision_digest
        == results["vectorized"].decision_digest
    )
    metrics_equal = (
        results["scalar"].metrics == results["vectorized"].metrics
        and results["scalar"].final_placement
        == results["vectorized"].final_placement
    )
    return {
        "n_nodes": n_nodes,
        "n_periods": n_periods,
        "scalar_s": timings["scalar"],
        "vectorized_s": timings["vectorized"],
        "speedup": (
            timings["scalar"] / timings["vectorized"]
            if timings["vectorized"]
            else None
        ),
        "digests_equal": digests_equal,
        "metrics_equal": metrics_equal,
        "decision_digest": results["scalar"].decision_digest,
    }


def measure_sharded(n_periods: int) -> dict:
    """Serial vs sharded vs vectorized campaign: byte-identical rows."""
    from repro.experiments.campaign import CampaignSpec, run_campaign
    from repro.experiments.config import BaselineConfig

    def spec(engine: str) -> CampaignSpec:
        return CampaignSpec(
            policies=("predictive", "nonpredictive"),
            patterns=("triangular",),
            units=(120.0, 200.0),
            n_seeds=1,
            baseline=BaselineConfig(n_periods=n_periods),
            engine=engine,
        )

    serial = run_campaign(spec("scalar"), n_jobs=1).deterministic_json()
    sharded = run_campaign(spec("scalar"), shards=2).deterministic_json()
    vectorized = run_campaign(spec("vectorized"), n_jobs=1).deterministic_json()
    return {
        "n_runs": spec("scalar").n_runs,
        "n_periods": n_periods,
        "n_shards": 2,
        "serial_equals_sharded": serial == sharded,
        "serial_equals_vectorized": serial == vectorized,
        "row_bytes": len(serial),
    }


def measure_engine_speed(
    sizes=SIZES,
    kernel_periods: int = KERNEL_PERIODS,
    e2e_periods: int = E2E_PERIODS,
    repetitions: int = 3,
) -> dict:
    """The full report: kernel sweep, end-to-end sweep, sharded check."""
    kernel_rows = [
        measure_kernel(p, kernel_periods, repetitions) for p in sizes
    ]
    e2e_rows = [measure_end_to_end(p, e2e_periods) for p in sizes]
    sharded = measure_sharded(max(e2e_periods // 2, 6))
    return {
        "bench": "engine_speed",
        "kernel": {
            "n_periods": kernel_periods,
            "repetitions": repetitions,
            "order_check_periods": ORDER_CHECK_PERIODS,
            "shape": "per period: schedule_many(P) + 2 schedule_at + "
            "run_until; batches precomputed outside the timed region",
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "target": {
            "p": TARGET_P,
            "min_kernel_speedup": TARGET_SPEEDUP,
        },
        "rows": kernel_rows,
        "end_to_end": e2e_rows,
        "sharded": sharded,
        "note": "events/sec = calendar kernel throughput; end-to-end "
        "runs are not calendar-dominated, so their speedup is recorded "
        "but ungated — the digest equality is the gate there",
    }


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    for row in report["rows"]:
        if not row["order_equivalent"]:
            problems.append(
                f"P={row['p']}: scalar and vectorized execution orders "
                "diverged"
            )
        if row["p"] >= TARGET_P and row["speedup"] is not None:
            if row["speedup"] < TARGET_SPEEDUP:
                problems.append(
                    f"P={row['p']}: kernel speedup {row['speedup']:.2f}x "
                    f"below the {TARGET_SPEEDUP}x target"
                )
    for row in report["end_to_end"]:
        if not row["digests_equal"]:
            problems.append(
                f"P={row['n_nodes']}: end-to-end decision digests diverged"
            )
        if not row["metrics_equal"]:
            problems.append(
                f"P={row['n_nodes']}: end-to-end metrics/placement diverged"
            )
    sharded = report["sharded"]
    if not sharded["serial_equals_sharded"]:
        problems.append("sharded campaign rows differ from serial")
    if not sharded["serial_equals_vectorized"]:
        problems.append("vectorized campaign rows differ from scalar")
    return problems


@pytest.mark.slow
def test_engine_speed():
    report = measure_engine_speed()
    path = write_report(report)
    print(f"\nengine speed report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: P in {6, 32}, shorter kernel/runs "
        "(equivalence gates still enforced)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = measure_engine_speed(
            sizes=SMOKE_SIZES,
            kernel_periods=SMOKE_KERNEL_PERIODS,
            e2e_periods=SMOKE_E2E_PERIODS,
            repetitions=2,
        )
    else:
        report = measure_engine_speed()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
