"""E-X6 — extension: forecast-aware replica shutdown.

The paper's Figure 6 shuts down purely on observed slack; under a
fluctuating workload that can oscillate (shut down at the trough, miss
and re-replicate at the peak).  This bench compares Figure 6 (LIFO)
against the forecast-aware strategy that simulates the removal through
the regression models first — an application of the paper's own
predictive idea to the de-allocation path (its "future work" direction
of using predictions throughout the management loop).
"""

from __future__ import annotations

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import ForecastAwareShutdown, LifoShutdown
from repro.experiments.metrics import compute_metrics
from repro.experiments.report import format_table
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import TriangularPattern

from benchmarks.conftest import run_once

N_PERIODS = 60


def run_with_strategy(baseline, estimator, strategy):
    system = build_system(n_processors=baseline.n_nodes, seed=baseline.seed)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    pattern = TriangularPattern(
        min_tracks=250.0, max_tracks=10_000.0, n_periods=N_PERIODS,
        cycle_periods=20,
    )
    executor = PeriodicTaskExecutor(system, task, assignment, workload=pattern)
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=PredictivePolicy(),
        config=RMConfig(initial_d_tracks=250.0),
        shutdown_strategy=strategy,
    )
    manager.start(N_PERIODS)
    executor.start(N_PERIODS)
    system.engine.run_until(N_PERIODS + 3.0)
    metrics = compute_metrics(system, executor, manager, 0.0, float(N_PERIODS))
    shutdown_count = sum(len(event.shutdowns) for event in manager.history)
    return metrics, shutdown_count


def test_ext_forecast_shutdown(benchmark, emit, baseline, estimator):
    lifo_metrics, lifo_shutdowns = run_once(
        benchmark, lambda: run_with_strategy(baseline, estimator, LifoShutdown())
    )
    fc_metrics, fc_shutdowns = run_with_strategy(
        baseline, estimator, ForecastAwareShutdown()
    )

    rows = [
        ["missed", lifo_metrics.missed_deadline_ratio, fc_metrics.missed_deadline_ratio],
        ["replicas", lifo_metrics.avg_replicas, fc_metrics.avg_replicas],
        ["rm actions", lifo_metrics.rm_actions, fc_metrics.rm_actions],
        ["shutdowns", lifo_shutdowns, fc_shutdowns],
        ["combined", lifo_metrics.combined, fc_metrics.combined],
    ]
    emit(
        "ext_forecast_shutdown",
        format_table(
            ["metric", "Figure 6 (LIFO)", "forecast-aware"],
            rows,
            title="E-X6. Shutdown-strategy comparison "
            "(predictive, triangular, 20 units)",
        ),
    )

    # Forecast-aware shutdown declines removals the model calls unsafe,
    # so it never shuts down more often than Figure 6...
    assert fc_shutdowns <= lifo_shutdowns
    # ...and never misses more deadlines.
    assert fc_metrics.missed_deadline_ratio <= (
        lifo_metrics.missed_deadline_ratio + 0.05
    )
