"""E-LINT — incremental lint cache: cold vs warm wall time.

Runs the full static-analysis suite (every per-file pass plus the
project-wide CONC-*/API-* passes) over ``src/repro`` three ways:

* **cold** — fresh cache file, everything parsed and analyzed;
* **warm** — unchanged tree, the run must come entirely from the cache
  (hash files, load records, no parsing);
* **incremental** — one file touched (content actually changed), only
  that file re-analyzed plus one project-pass rerun.

Gates (``check_report``): results byte-identical across all three runs,
and warm ≥ 3x faster than cold (best-of-N on both sides; in practice
the ratio is two orders of magnitude, so the gate has slack for noisy
CI machines).

Run standalone (``python benchmarks/bench_lint_speed.py``), in CI smoke
form (``--smoke``: fewer repetitions, same gates), or via ``pytest
benchmarks/bench_lint_speed.py -m "slow or not slow"``.  Results land
in ``benchmarks/out/BENCH_lint_speed.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import pytest

OUT_PATH = Path(__file__).parent / "out" / "BENCH_lint_speed.json"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

REPETITIONS = 3
SMOKE_REPETITIONS = 2

#: Required cold/warm ratio (the ISSUE's acceptance floor).
TARGET_SPEEDUP = 3.0


def _timed_run(tree: Path, cache: Path) -> tuple[float, list[dict]]:
    from repro.analysis import lint_paths

    t0 = time.perf_counter()
    violations, _ = lint_paths([tree], cache_path=cache)
    elapsed = time.perf_counter() - t0
    return elapsed, [v.as_dict() for v in violations]


def measure_lint_speed(repetitions: int = REPETITIONS) -> dict:
    """Cold/warm/incremental wall times over a copy of ``src/repro``."""
    best_cold = best_warm = best_incr = float("inf")
    results: dict[str, list[dict]] = {}
    n_files = sum(1 for _ in SRC_ROOT.rglob("*.py"))
    with tempfile.TemporaryDirectory() as tmp:
        # Lint a copy so the incremental edit never touches the repo.
        tree = Path(tmp) / "repro"
        shutil.copytree(SRC_ROOT, tree)
        cache = Path(tmp) / "lint-cache.json"
        victim = tree / "sim" / "engine.py"
        original = victim.read_text(encoding="utf-8")
        for _ in range(repetitions):
            cache.unlink(missing_ok=True)
            t_cold, cold = _timed_run(tree, cache)
            t_warm, warm = _timed_run(tree, cache)
            victim.write_text(original + "\n# touched\n", encoding="utf-8")
            t_incr, incr = _timed_run(tree, cache)
            victim.write_text(original, encoding="utf-8")
            results = {"cold": cold, "warm": warm, "incremental": incr}
            best_cold = min(best_cold, t_cold)
            best_warm = min(best_warm, t_warm)
            best_incr = min(best_incr, t_incr)
    return {
        "bench": "lint_speed",
        "tree": "src/repro (copied to a temp dir)",
        "n_files": n_files,
        "repetitions": repetitions,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "target": {"min_cold_warm_speedup": TARGET_SPEEDUP},
        "cold_s": best_cold,
        "warm_s": best_warm,
        "incremental_s": best_incr,
        "speedup_warm": best_cold / best_warm if best_warm else None,
        "speedup_incremental": (
            best_cold / best_incr if best_incr else None
        ),
        "violations": len(results["cold"]),
        "results_identical": (
            results["cold"] == results["warm"] == results["incremental"]
        ),
        "note": "warm = unchanged tree (hash-only); incremental = one "
        "file edited (one re-parse + one project-pass rerun)",
    }


def write_report(report: dict) -> Path:
    from repro.experiments.export import atomic_write_json

    return atomic_write_json(OUT_PATH, report)


def check_report(report: dict) -> list[str]:
    """Hard requirements; returns human-readable violations."""
    problems = []
    if not report["results_identical"]:
        problems.append("cold/warm/incremental runs disagree on findings")
    if report["violations"] != 0:
        problems.append(
            f"src/repro is not lint-clean ({report['violations']} findings)"
        )
    speedup = report["speedup_warm"]
    if speedup is None or speedup < TARGET_SPEEDUP:
        problems.append(
            f"warm/cold speedup {speedup if speedup is None else round(speedup, 2)}x "
            f"below the {TARGET_SPEEDUP}x target"
        )
    return problems


@pytest.mark.slow
def test_lint_speed():
    report = measure_lint_speed()
    path = write_report(report)
    print(f"\nlint speed report written to {path}")
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke form: fewer repetitions (gates still enforced)",
    )
    args = parser.parse_args(argv)
    repetitions = SMOKE_REPETITIONS if args.smoke else REPETITIONS
    report = measure_lint_speed(repetitions=repetitions)
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {path}")
    problems = check_report(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
