"""Discrete-event simulation substrate.

A small, dependency-free DES core: a binary-heap event calendar
(:class:`~repro.sim.engine.Engine`), cancellable events
(:class:`~repro.sim.events.Event`), reproducible per-subsystem random
streams (:class:`~repro.sim.rng.RngRegistry`) and structured tracing
(:class:`~repro.sim.trace.Tracer`).

Every higher layer (processors, network, task executor, resource manager)
is written against this engine, so a whole experiment is a single
deterministic event-driven program.
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventState
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.sim.vector import VectorizedEngine

__all__ = [
    "Engine",
    "Event",
    "EventState",
    "RngRegistry",
    "Tracer",
    "NullTracer",
    "TraceRecord",
    "VectorizedEngine",
]
