"""Array-backed event calendar: the vectorized engine core.

:class:`VectorizedEngine` is a drop-in :class:`~repro.sim.engine.Engine`
replacement that splits the calendar into two structures:

* **sorted runs** — each large :meth:`~VectorizedEngine.schedule_many`
  call becomes one *run*: a batch sorted once with NumPy at insert time
  (struct-of-arrays: the times live in a float64 array next to the event
  list).  Only the run *heads* compete on a heap, and consecutive events
  of the winning run are executed as a **chunk** — one
  ``np.searchsorted`` bounds the slice that is safe to run without
  consulting the heap again, so the per-event cost drops to the state
  check plus the callback itself.
* **an irregular heap** — everything scheduled one at a time (and tiny
  batches) goes on a binary heap of plain ``(time, priority, seq,
  event)`` tuples, whose comparisons run at C speed (the scalar engine's
  heap compares :class:`~repro.sim.events.Event` objects via Python
  ``__lt__``).

Chunk safety: a callback may schedule new events that land *inside* the
chunk's time range.  Every scheduling call bumps a generation counter;
the chunk loop re-validates after any callback that scheduled, falling
back to the heap race.  Cancellations need no special handling — the
chunk loop checks each event's state anyway.

Determinism contract
--------------------
Execution order is the same total order the scalar engine uses —
``(time, priority, seq)`` with globally unique ``seq`` — and
``schedule_many`` consumes sequence numbers consecutively in input
order, exactly like the equivalent loop over ``schedule_at``.  A
simulation that schedules the same logical events therefore executes
the same callbacks in the same order at the same clock values on either
engine: decision sequences, RNG consumption, and every recorded float
are bit-identical.  ``tests/sim/test_vector_engine.py`` pins the order
equivalence on random event soups and
``tests/integration/test_engine_equivalence.py`` pins full-experiment
decision digests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.events import Event, EventState
from repro.sim.trace import NullTracer

_PENDING = EventState.PENDING
_EXECUTED = EventState.EXECUTED

#: Batches at or below this size go to the tuple heap: a run's fixed
#: bookkeeping only pays for itself once chunks amortize it.
_SMALL_BATCH = 4

#: A run-head heap entry: ``(time, priority, seq, run_id)``.  ``seq`` is
#: globally unique, so comparisons never reach the fourth element.
_Head = tuple[float, int, int, int]

#: An irregular-heap entry: ``(time, priority, seq, event)``.
_HeapEntry = tuple[float, int, int, Event]


class _Run:
    """One sorted batch: the event list plus its times as a plain list.

    The times live in a parallel (pre-sorted) list of floats so chunk
    boundaries come from :func:`bisect.bisect_right` — far cheaper than
    a scalar ``np.searchsorted`` call per chunk.
    """

    __slots__ = ("events", "times", "pos")

    def __init__(self, events: list[Event], times: list[float]) -> None:
        self.events = events
        self.times = times
        self.pos = 0


class VectorizedEngine(Engine):
    """The array-backed calendar (see module docstring).

    Construction parameters are identical to
    :class:`~repro.sim.engine.Engine`.
    """

    supports_batch: bool = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # The base class heap stays empty; this engine keeps its own
        # tuple-keyed heap plus the sorted runs.
        self._irregular: list[_HeapEntry] = []
        self._runs: dict[int, _Run] = {}
        self._run_heads: list[_Head] = []
        self._next_run_id = 0
        # Bumped by every scheduling call; chunked execution re-checks
        # the calendar whenever a callback moved it.
        self._gen = 0

    # -- scheduling ---------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule one event on the irregular (tuple-keyed) heap."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        self._seq += 1
        self._gen += 1
        event = Event(time, self._seq, callback, args, priority=priority, label=label)
        heappush(self._irregular, (event.time, event.priority, event.seq, event))
        return event

    def schedule_many(
        self,
        times: Sequence[float],
        callbacks: Callable[..., Any] | Sequence[Callable[..., Any]],
        args_list: Sequence[tuple[Any, ...]] | None = None,
        *,
        priority: int = 0,
        labels: str | Sequence[str] = "",
    ) -> list[Event]:
        """One vectorized insert: sort the batch once, keep it as a run.

        Sequence numbers are consumed consecutively in input order (the
        scalar-loop contract), and the run is sorted by the engine's
        total order ``(time, priority, seq)`` — ``priority`` is shared
        by the whole batch, so a stable sort on time alone realizes it.
        """
        n = len(times)
        if n == 0:
            return []
        cbs = callbacks if isinstance(callbacks, (list, tuple)) else [callbacks] * n
        labs = labels if isinstance(labels, (list, tuple)) else [labels] * n
        argss = args_list if args_list is not None else [()] * n
        if len(cbs) != n or len(labs) != n or len(argss) != n:
            raise SchedulingError(
                f"schedule_many: {n} times but {len(cbs)} callbacks, "
                f"{len(argss)} args, {len(labs)} labels"
            )
        self._gen += 1
        now = self._now
        if n <= _SMALL_BATCH:
            # Tiny batches: a run would cost more bookkeeping than it
            # saves.  Same seq assignment and total order, so this is
            # purely an implementation choice.
            push = heappush
            irregular = self._irregular
            out: list[Event] = []
            seq = self._seq
            for t, cb, a, lb in zip(times, cbs, argss, labs):
                if t < now:
                    raise SchedulingError(
                        f"cannot schedule into the past: t={t} < now={now}"
                    )
                seq += 1
                event = Event(t, seq, cb, a, priority=priority, label=lb)
                push(irregular, (event.time, event.priority, event.seq, event))
                out.append(event)
            self._seq = seq
            return out
        arr = np.asarray(times, dtype=np.float64)
        if float(arr.min()) < now:
            raise SchedulingError(
                f"cannot schedule into the past: t={float(arr.min())} < now={now}"
            )
        # Bulk-construct the handles without __init__'s per-field
        # coercion (times are float64 already, seq is trusted).
        new = Event.__new__
        seq = self._seq
        prio = int(priority)
        pending = _PENDING
        tlist: list[float] = arr.tolist()
        events: list[Event] = []
        append = events.append
        if (
            args_list is None
            and not isinstance(callbacks, (list, tuple))
            and not isinstance(labels, (list, tuple))
        ):
            # Homogeneous batch (one callback/label, no args): skip the
            # 4-way zip in the construction loop.
            shared_args = ()
            for t in tlist:
                seq += 1
                event = new(Event)
                event.time = t
                event.seq = seq
                event.callback = callbacks
                event.args = shared_args
                event.priority = prio
                event.label = labels
                event._state = pending
                append(event)
        else:
            for t, cb, a, lb in zip(tlist, cbs, argss, labs):
                seq += 1
                event = new(Event)
                event.time = t
                event.seq = seq
                event.callback = cb
                event.args = a
                event.priority = prio
                event.label = lb
                event._state = pending
                append(event)
        self._seq = seq
        if np.any(np.diff(arr) < 0.0):
            # Stable sort on time == sort by (time, priority, seq): the
            # batch shares one priority and seqs increase with index.
            order = np.argsort(arr, kind="stable").tolist()
            ordered = [events[i] for i in order]
            sorted_times = [tlist[i] for i in order]
        else:
            ordered = list(events)
            sorted_times = tlist
        run_id = self._next_run_id
        self._next_run_id += 1
        self._runs[run_id] = _Run(ordered, sorted_times)
        head = ordered[0]
        heappush(self._run_heads, (head.time, head.priority, head.seq, run_id))
        return events

    # -- calendar views -----------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Events on the calendar (cancelled-but-unpopped included)."""
        return len(self._irregular) + sum(
            len(run.events) - run.pos for run in self._runs.values()
        )

    def _normalize_heads(self) -> None:
        """Drop cancelled events from both structures' heads."""
        irregular = self._irregular
        while irregular and irregular[0][3]._state is not _PENDING:
            heappop(irregular)
        heads = self._run_heads
        runs = self._runs
        while heads:
            run = runs[heads[0][3]]
            if run.events[run.pos]._state is _PENDING:
                break
            run_id = heappop(heads)[3]
            run.pos += 1
            if run.pos < len(run.events):
                nxt = run.events[run.pos]
                heappush(heads, (nxt.time, nxt.priority, nxt.seq, run_id))
            else:
                del runs[run_id]

    def peek_time(self) -> float | None:
        """Time of the next pending event, or ``None`` when empty."""
        self._normalize_heads()
        irregular = self._irregular
        heads = self._run_heads
        if irregular and (not heads or irregular[0] < heads[0]):
            return irregular[0][0]
        if heads:
            return heads[0][0]
        return None

    def _pop_next(self) -> Event | None:
        """Pop the earliest pending event across both structures."""
        self._normalize_heads()
        irregular = self._irregular
        heads = self._run_heads
        if irregular and (not heads or irregular[0] < heads[0]):
            return heappop(irregular)[3]
        if not heads:
            return None
        run_id = heappop(heads)[3]
        run = self._runs[run_id]
        event = run.events[run.pos]
        run.pos += 1
        if run.pos < len(run.events):
            nxt = run.events[run.pos]
            heappush(heads, (nxt.time, nxt.priority, nxt.seq, run_id))
        else:
            del self._runs[run_id]
        return event

    # -- execution ----------------------------------------------------------

    def run_until(self, until: float) -> None:
        """Run events with ``time <= until``; land the clock on ``until``."""
        if until < self._now:
            raise SchedulingError(f"run_until({until}) is before now={self._now}")
        self._running = True
        # Hot loop: same inlining discipline as the scalar engine.  When
        # the winner is a run head, everything up to the next competitor
        # (or `until`) is one chunk executed without heap traffic.
        irregular = self._irregular
        heads = self._run_heads
        runs = self._runs
        pop = heappop
        push = heappush
        record = None if type(self.tracer) is NullTracer else self.tracer.record
        executed_before = self._executed
        # Profiler attribution is per run_until batch, never per event.
        profiler = self.telemetry.profiler if self.telemetry.enabled else None
        handle = profiler.begin("engine.vector") if profiler is not None else 0
        try:
            while True:
                while irregular and irregular[0][3]._state is not _PENDING:
                    pop(irregular)
                while heads:
                    run = runs[heads[0][3]]
                    if run.events[run.pos]._state is _PENDING:
                        break
                    run_id = pop(heads)[3]
                    run.pos += 1
                    if run.pos < len(run.events):
                        nxt = run.events[run.pos]
                        push(heads, (nxt.time, nxt.priority, nxt.seq, run_id))
                    else:
                        del runs[run_id]
                if irregular and (not heads or irregular[0] < heads[0]):
                    now = irregular[0][0]
                    if now > until:
                        break
                    event = pop(irregular)[3]
                    self._now = now
                    self._executed += 1
                    if record is not None:
                        record(now, "event", event.label, {"seq": event.seq})
                    event._execute()
                    continue
                if not heads:
                    break
                if heads[0][0] > until:
                    break
                # A run head won: execute the slice that cannot be
                # preempted by `until` or by any other calendar entry.
                run_id = pop(heads)[3]
                run = runs[run_id]
                events = run.events
                times = run.times
                pos = run.pos
                end = bisect_right(times, until)
                if irregular:
                    comp = irregular[0][0]
                    if heads and heads[0][0] < comp:
                        comp = heads[0][0]
                elif heads:
                    comp = heads[0][0]
                else:
                    comp = None
                if comp is not None:
                    # Strictly-earlier events precede any competitor;
                    # equal-time ties go back to the heap race.
                    end_c = bisect_left(times, comp)
                    if end_c < end:
                        end = end_c
                if end <= pos:
                    # Tie with the competitor at the head itself — the
                    # head already won the (time, priority, seq) race.
                    end = pos + 1
                gen = self._gen
                i = pos
                n_run = 0
                if record is None:
                    for event in events[pos:end]:
                        i += 1
                        if event._state is not _PENDING:
                            continue
                        self._now = event.time
                        n_run += 1
                        event._state = _EXECUTED
                        event.callback(*event.args)
                        if self._gen != gen:
                            # The callback scheduled something; the
                            # chunk boundary is stale.  Re-race.
                            break
                else:
                    for event in events[pos:end]:
                        i += 1
                        if event._state is not _PENDING:
                            continue
                        now = event.time
                        self._now = now
                        n_run += 1
                        record(now, "event", event.label, {"seq": event.seq})
                        event._state = _EXECUTED
                        event.callback(*event.args)
                        if self._gen != gen:
                            break
                self._executed += n_run
                run.pos = i
                if i < len(events):
                    nxt = events[i]
                    push(heads, (nxt.time, nxt.priority, nxt.seq, run_id))
                else:
                    del runs[run_id]
        finally:
            self._running = False
        self._now = until
        telemetry = self.telemetry
        if telemetry.enabled:
            if profiler is not None:
                profiler.end(handle, events=self._executed - executed_before)
            telemetry.on_engine_run(until, self._executed - executed_before)

    def run(self, max_events: int | None = None) -> int:
        """Run until empty (or ``max_events``); returns events executed."""
        executed = 0
        self._running = True
        record = None if type(self.tracer) is NullTracer else self.tracer.record
        profiler = self.telemetry.profiler if self.telemetry.enabled else None
        handle = profiler.begin("engine.vector") if profiler is not None else 0
        try:
            while max_events is None or executed < max_events:
                event = self._pop_next()
                if event is None:
                    break
                self._now = event.time
                self._executed += 1
                if record is not None:
                    record(event.time, "event", event.label, {"seq": event.seq})
                event._execute()
                executed += 1
        finally:
            self._running = False
        telemetry = self.telemetry
        if telemetry.enabled:
            if profiler is not None:
                profiler.end(handle, events=executed)
            telemetry.on_engine_run(self._now, executed)
        return executed

    def drain(self) -> Iterator[Event]:
        """Cancel and yield all pending events in calendar order."""
        pending = [entry[3] for entry in self._irregular]
        for run in self._runs.values():
            pending.extend(run.events[run.pos :])
        self._irregular.clear()
        self._runs.clear()
        self._run_heads.clear()
        for event in sorted(
            (e for e in pending if e.pending), key=Event.sort_key
        ):
            event.cancel()
            yield event
