"""Picklable monotonic ID counters.

:class:`IdCounter` replaces the ``itertools.count`` module globals that
used to hand out job and message IDs.  Those IDs are decision-relevant
(the PS discipline tie-breaks equal remaining demands on ``job_id``), so
run snapshots (:mod:`repro.recovery`) must capture and restore a
counter's position — ``itertools.count`` can neither be inspected nor
rewound.  ``IdCounter`` supports both without consuming a value.
"""

from __future__ import annotations


class IdCounter:
    """A ``next()``-able integer counter whose position can be saved.

    Drop-in for ``itertools.count(start)`` at the call sites
    (``next(counter)``), plus :attr:`value` to read the *next* ID that
    will be handed out and :meth:`reset` to rewind/advance it.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 1) -> None:
        #: The next ID that will be returned.
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> "IdCounter":
        return self

    def reset(self, value: int) -> None:
        """Set the next ID to ``value`` (snapshot restore)."""
        self.value = value

    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, state: int) -> None:
        self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdCounter(next={self.value})"
