"""Reproducible random-number streams.

Simulations draw randomness from several logically independent sources
(execution-time noise, background load, clock jitter, workload
perturbation).  Giving each source its **own** :class:`numpy.random.
Generator`, derived deterministically from a single experiment seed and a
stream name, means that changing how one subsystem consumes randomness
does not perturb the others — the standard "common random numbers"
discipline for comparing policies.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory of named, independent random streams from one master seed.

    Stream seeds are derived with :class:`numpy.random.SeedSequence` using
    a stable hash of the stream name, so ``RngRegistry(7).stream("noise")``
    yields the same sequence in every process and Python version.
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed}")
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @staticmethod
    def _name_key(name: str) -> int:
        """Stable 32-bit key for a stream name (CRC32; not security-relevant)."""
        return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if not name:
            raise ValueError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=(self._name_key(name),)
            )
            generator = np.random.default_rng(seed_seq)
            self._streams[name] = generator
        return generator

    def fork(self, sub_seed: int) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment repetition)."""
        return RngRegistry(self.master_seed * 1_000_003 + int(sub_seed) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
