"""Structured tracing for simulations.

A :class:`Tracer` receives one :class:`TraceRecord` per interesting
occurrence (event execution, job completion, allocation decision, ...).
The default :class:`NullTracer` drops everything with near-zero overhead;
:class:`Tracer` buffers records for later inspection and can filter by
category, which is how integration tests assert on simulation internals
without reaching into private state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time of the occurrence (seconds).
    category:
        Coarse grouping, e.g. ``"job"``, ``"message"``, ``"rm"``.
    label:
        Free-form short description.
    data:
        Structured payload (kept small; values should be plain scalars).
    """

    time: float
    category: str
    label: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Buffering tracer with optional category allow-list.

    Parameters
    ----------
    categories:
        If given, only records whose category is in this set are kept.
    max_records:
        Hard cap on buffered records; the oldest are dropped beyond it.
        Prevents multi-hour sweeps from accumulating unbounded memory.
    """

    def __init__(
        self,
        categories: Iterable[str] | None = None,
        max_records: int = 1_000_000,
    ) -> None:
        self._allow = frozenset(categories) if categories is not None else None
        self._max = int(max_records)
        self.records: list[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        """Whether this tracer keeps records (used to skip payload building)."""
        return True

    def record(
        self, time: float, category: str, label: str, data: dict[str, Any] | None = None
    ) -> None:
        """Append a record if its category passes the filter."""
        if self._allow is not None and category not in self._allow:
            return
        self.records.append(TraceRecord(time, category, label, data or {}))
        if len(self.records) > self._max:
            del self.records[: len(self.records) - self._max]

    def by_category(self, category: str) -> list[TraceRecord]:
        """All buffered records in ``category``, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all buffered records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything (the default)."""

    def __init__(self) -> None:
        super().__init__(categories=())

    @property
    def enabled(self) -> bool:
        return False

    def record(
        self, time: float, category: str, label: str, data: dict[str, Any] | None = None
    ) -> None:
        """Discard the record."""
        return
