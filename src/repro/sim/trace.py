"""Structured tracing for simulations.

A :class:`Tracer` receives one :class:`TraceRecord` per interesting
occurrence (event execution, job completion, allocation decision, ...).
The default :class:`NullTracer` drops everything with near-zero overhead;
:class:`Tracer` buffers records for later inspection and can filter by
category, which is how integration tests assert on simulation internals
without reaching into private state.  :class:`StreamingTracer` forwards
every kept record to a :class:`~repro.telemetry.sinks.TraceSink` as it
arrives, so long runs persist their trace incrementally instead of
buffering it (and a crashed run keeps everything written so far).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry.sinks import TraceSink


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time of the occurrence (seconds).
    category:
        Coarse grouping, e.g. ``"job"``, ``"message"``, ``"rm"``.
    label:
        Free-form short description.
    data:
        Structured payload (kept small; values should be plain scalars).
    """

    time: float
    category: str
    label: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Buffering tracer with optional category allow-list.

    Parameters
    ----------
    categories:
        If given, only records whose category is in this set are kept.
    max_records:
        Hard cap on buffered records; the oldest are dropped beyond it.
        Prevents multi-hour sweeps from accumulating unbounded memory.
        The buffer is a ``deque(maxlen=...)``, so eviction is O(1) per
        record rather than an O(n) slice-delete once the cap is hit.
    """

    def __init__(
        self,
        categories: Iterable[str] | None = None,
        max_records: int = 1_000_000,
    ) -> None:
        self._allow = frozenset(categories) if categories is not None else None
        self._max = int(max_records)
        self.records: deque[TraceRecord] = deque(maxlen=self._max)

    @property
    def enabled(self) -> bool:
        """Whether this tracer keeps records (used to skip payload building)."""
        return True

    def record(
        self, time: float, category: str, label: str, data: dict[str, Any] | None = None
    ) -> None:
        """Append a record if its category passes the filter."""
        if self._allow is not None and category not in self._allow:
            return
        self.records.append(TraceRecord(time, category, label, data or {}))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All buffered records in ``category``, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all buffered records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything (the default)."""

    def __init__(self) -> None:
        super().__init__(categories=())

    @property
    def enabled(self) -> bool:
        return False

    def record(
        self, time: float, category: str, label: str, data: dict[str, Any] | None = None
    ) -> None:
        """Discard the record."""
        return


class StreamingTracer(Tracer):
    """A tracer that also streams every kept record to a sink.

    Each record passing the category filter is written to ``sink`` as a
    JSONL-ready dict (``{"t", "kind": "trace", "cat", "label", "data"}``
    — see :mod:`repro.telemetry.sinks` for the record convention) at the
    moment it is recorded.  The in-memory buffer behaves exactly like
    :class:`Tracer` (bounded, filterable), so tests and summaries keep
    working, while the sink holds the complete history.

    Parameters
    ----------
    sink:
        Streaming destination (e.g.
        :class:`~repro.telemetry.sinks.JsonlTraceSink`).
    categories, max_records:
        As for :class:`Tracer`; the filter applies to the sink too.
    """

    def __init__(
        self,
        sink: TraceSink,
        categories: Iterable[str] | None = None,
        max_records: int = 100_000,
    ) -> None:
        super().__init__(categories=categories, max_records=max_records)
        self.sink = sink

    def record(
        self, time: float, category: str, label: str, data: dict[str, Any] | None = None
    ) -> None:
        """Buffer the record and stream it to the sink."""
        if self._allow is not None and category not in self._allow:
            return
        payload = data or {}
        self.records.append(TraceRecord(time, category, label, payload))
        self.sink.write(
            {
                "t": time,
                "kind": "trace",
                "cat": category,
                "label": label,
                "data": payload,
            }
        )
