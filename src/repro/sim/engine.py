"""The discrete-event simulation engine.

:class:`Engine` owns the simulation clock and the event calendar (a binary
heap).  Components schedule callbacks with :meth:`Engine.schedule` /
:meth:`Engine.schedule_at` and the experiment driver advances time with
:meth:`Engine.run_until` or :meth:`Engine.run`.

Design notes
------------
* The clock only moves forward; scheduling into the past raises
  :class:`~repro.errors.SchedulingError`.  Scheduling *at the current
  time* is allowed (zero-delay events) and runs after the current event,
  in FIFO order.
* Cancellation is lazy (cancelled events are skipped when popped), which
  keeps ``cancel`` O(1) — important for the processor model, which
  reschedules its next-completion event on every arrival.
* Determinism: at equal timestamps events run ordered by ``priority`` and
  then insertion sequence, so a simulation is a pure function of its
  inputs and RNG seeds.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Sequence

from repro.errors import SchedulingError
from repro.sim.events import Event, EventState
from repro.sim.trace import NullTracer, Tracer
from repro.telemetry.hub import NULL_TELEMETRY, TelemetryHub

_PENDING = EventState.PENDING


class _Recurrence:
    """The self-rescheduling callback behind :meth:`Engine.every`.

    A module-level class (not a closure) so a recurring event on the
    calendar — and the stop handle held by its owner — survive snapshot
    pickling (:mod:`repro.recovery`) with identity intact.
    """

    __slots__ = ("engine", "interval_s", "callback", "args", "priority", "label",
                 "stopped", "event")

    def __init__(
        self,
        engine: "Engine",
        interval_s: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        priority: int,
        label: str,
    ) -> None:
        self.engine = engine
        self.interval_s = interval_s
        self.callback = callback
        self.args = args
        self.priority = priority
        self.label = label
        self.stopped = False
        self.event: Event | None = None

    def fire(self) -> None:
        if self.stopped:
            return
        self.callback(*self.args)
        if not self.stopped:
            self.event = self.engine.schedule(
                self.interval_s, self.fire, priority=self.priority, label=self.label
            )

    def stop(self) -> None:
        self.stopped = True
        if self.event is not None:
            self.event.cancel()

    def __getstate__(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class Engine:
    """A deterministic discrete-event simulation engine.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` receiving a record for
        every executed event.  Defaults to a no-op tracer.
    start_time:
        Initial simulation clock value in seconds (default ``0.0``).
    telemetry:
        Optional :class:`~repro.telemetry.hub.TelemetryHub` receiving
        batch accounting after each run loop.  Defaults to the disabled
        :data:`~repro.telemetry.hub.NULL_TELEMETRY` singleton; the hot
        loops never touch it, only the post-loop accounting does.
    """

    #: Whether :meth:`schedule_many` lands on an array-backed calendar
    #: (:class:`repro.sim.vector.VectorizedEngine`).  Components use this
    #: to pick batched submission paths; on the scalar engine the method
    #: is just a loop over :meth:`schedule_at`.
    supports_batch: bool = False

    def __init__(
        self,
        tracer: Tracer | None = None,
        start_time: float = 0.0,
        telemetry: TelemetryHub | None = None,
    ) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.telemetry: TelemetryHub = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events on the calendar (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed_count(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay_s: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_s`` seconds from now.

        Returns the :class:`~repro.sim.events.Event` handle, which may be
        cancelled while pending.
        """
        if delay_s < 0.0:
            raise SchedulingError(f"negative delay {delay_s!r} at t={self._now}")
        return self.schedule_at(
            self._now + delay_s, callback, *args, priority=priority, label=label
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at the absolute time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args, priority=priority, label=label)
        heappush(self._heap, event)
        return event

    def schedule_many(
        self,
        times: Sequence[float],
        callbacks: Callable[..., Any] | Sequence[Callable[..., Any]],
        args_list: Sequence[tuple[Any, ...]] | None = None,
        *,
        priority: int = 0,
        labels: str | Sequence[str] = "",
    ) -> list[Event]:
        """Schedule one event per absolute time in ``times``.

        ``callbacks`` and ``labels`` are either one value shared by
        every entry or one value per entry; ``args_list`` supplies the
        positional arguments per entry (default: none).  Sequence
        numbers are consumed consecutively in input order, so the call
        is observationally identical to a loop over
        :meth:`schedule_at` — subclasses with an array-backed calendar
        override this with a vectorized insert that preserves exactly
        that contract.
        """
        n = len(times)
        cbs = callbacks if isinstance(callbacks, (list, tuple)) else [callbacks] * n
        labs = labels if isinstance(labels, (list, tuple)) else [labels] * n
        argss = args_list if args_list is not None else [()] * n
        if len(cbs) != n or len(labs) != n or len(argss) != n:
            raise SchedulingError(
                f"schedule_many: {n} times but {len(cbs)} callbacks, "
                f"{len(argss)} args, {len(labs)} labels"
            )
        return [
            self.schedule_at(t, cb, *a, priority=priority, label=lb)
            for t, cb, a, lb in zip(times, cbs, argss, labs)
        ]

    # -- execution ----------------------------------------------------------

    def _pop_next(self) -> Event | None:
        """Pop the earliest pending event, discarding cancelled ones."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.pending:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next pending event, or ``None`` if the calendar is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the
        calendar was empty.
        """
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._executed += 1
        self.tracer.record(self._now, "event", event.label, {"seq": event.seq})
        event._execute()
        return True

    def run_until(self, until: float) -> None:
        """Run events with ``time <= until``, then set the clock to ``until``.

        The clock always lands exactly on ``until`` so that periodic
        drivers observing :attr:`now` after the call see the boundary time.
        """
        if until < self._now:
            raise SchedulingError(f"run_until({until}) is before now={self._now}")
        self._running = True
        # Hot loop: the heap, heappop and the tracer hook are hoisted to
        # locals, and :meth:`step`'s body is inlined (one method call per
        # event would dominate the figure sweeps' run time).  The tracer
        # call is skipped entirely for the default no-op tracer.
        heap = self._heap
        pop = heappop
        record = None if type(self.tracer) is NullTracer else self.tracer.record
        executed_before = self._executed
        # Profiler attribution is per run_until batch, never per event.
        profiler = self.telemetry.profiler if self.telemetry.enabled else None
        handle = profiler.begin("engine.run") if profiler is not None else 0
        try:
            while heap:
                event = heap[0]
                if event._state is not _PENDING:
                    pop(heap)
                    continue
                now = event.time
                if now > until:
                    break
                pop(heap)
                self._now = now
                self._executed += 1
                if record is not None:
                    record(now, "event", event.label, {"seq": event.seq})
                event._execute()
        finally:
            self._running = False
        self._now = until
        # Batch accounting keeps the per-event cost zero when disabled.
        telemetry = self.telemetry
        if telemetry.enabled:
            if profiler is not None:
                profiler.end(handle, events=self._executed - executed_before)
            telemetry.on_engine_run(until, self._executed - executed_before)

    def run(self, max_events: int | None = None) -> int:
        """Run until the calendar is exhausted (or ``max_events`` executed).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        # Same inlined hot loop as :meth:`run_until`, without a time bound.
        heap = self._heap
        pop = heappop
        record = None if type(self.tracer) is NullTracer else self.tracer.record
        profiler = self.telemetry.profiler if self.telemetry.enabled else None
        handle = profiler.begin("engine.run") if profiler is not None else 0
        try:
            while heap and (max_events is None or executed < max_events):
                event = pop(heap)
                if event._state is not _PENDING:
                    continue
                self._now = event.time
                self._executed += 1
                if record is not None:
                    record(event.time, "event", event.label, {"seq": event.seq})
                event._execute()
                executed += 1
        finally:
            self._running = False
        telemetry = self.telemetry
        if telemetry.enabled:
            if profiler is not None:
                profiler.end(handle, events=executed)
            telemetry.on_engine_run(self._now, executed)
        return executed

    # -- periodic helpers -----------------------------------------------------

    def every(
        self,
        interval_s: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> Callable[[], None]:
        """Run ``callback`` every ``interval_s`` seconds until cancelled.

        Returns a zero-argument function that stops the recurrence.  The
        first firing happens after ``start_delay`` (default: ``interval_s``).
        """
        if interval_s <= 0.0:
            raise SchedulingError(f"interval must be positive, got {interval_s}")
        recurrence = _Recurrence(self, interval_s, callback, args, priority, label)
        first = interval_s if start_delay is None else start_delay
        recurrence.event = self.schedule(
            first, recurrence.fire, priority=priority, label=label
        )
        return recurrence.stop

    def drain(self) -> Iterator[Event]:
        """Cancel and yield all pending events (mainly for tests/teardown)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.pending:
                event.cancel()
                yield event
