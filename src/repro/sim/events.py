"""Event objects for the discrete-event engine.

An :class:`Event` is a cancellable handle for a callback scheduled at a
simulated time.  Events are totally ordered by ``(time, priority, seq)``:
ties at the same timestamp break first on an explicit integer priority
(lower runs earlier) and then on insertion order, which makes simulations
deterministic regardless of heap internals.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventState(enum.Enum):
    """Lifecycle of an event on the calendar."""

    PENDING = "pending"
    EXECUTED = "executed"
    CANCELLED = "cancelled"


class Event:
    """A scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the callback fires.
    seq:
        Monotonically increasing sequence number assigned by the engine;
        used as the final tie-break so FIFO order holds at equal times.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    priority:
        Secondary ordering key; events at the same time run in increasing
        priority order.  Defaults to 0.
    label:
        Optional human-readable tag used by tracing and ``repr``.
    """

    __slots__ = ("time", "seq", "callback", "args", "priority", "label", "_state")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
        priority: int = 0,
        label: str = "",
    ) -> None:
        self.time = float(time)
        self.seq = int(seq)
        self.callback = callback
        self.args = args
        self.priority = int(priority)
        self.label = label
        self._state = EventState.PENDING

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> EventState:
        """Current lifecycle state."""
        return self._state

    @property
    def pending(self) -> bool:
        """``True`` while the event is still on the calendar."""
        return self._state is EventState.PENDING

    @property
    def cancelled(self) -> bool:
        """``True`` once :meth:`cancel` has been called."""
        return self._state is EventState.CANCELLED

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns ``True`` if this call performed the cancellation, ``False``
        if the event had already executed or been cancelled.  Cancellation
        is lazy: the engine discards cancelled events when they surface at
        the top of the heap.
        """
        if self._state is EventState.PENDING:
            self._state = EventState.CANCELLED
            return True
        return False

    def _execute(self) -> None:
        """Run the callback (engine internal)."""
        self._state = EventState.EXECUTED
        self.callback(*self.args)

    # -- ordering ----------------------------------------------------------

    def sort_key(self) -> tuple[float, int, int]:
        """Total-order key: time, then priority, then insertion order."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Heap sifts call this O(log n) times per push/pop.  Timestamps
        # almost always differ, so compare them without allocating the
        # full ordering tuple; ties fall back to (priority, seq).
        if self.time != other.time:
            return self.time < other.time
        return (self.priority, self.seq) < (other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"<Event{tag} t={self.time:.6f} prio={self.priority} "
            f"seq={self.seq} {self._state.value}>"
        )
