"""Exception hierarchy for :mod:`repro`.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors are grouped by subsystem; each carries a
human-readable message and, where useful, structured context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled into the past or after shutdown."""


class ClusterError(ReproError):
    """Raised for invalid operations on the hardware model."""


class PlacementError(ClusterError):
    """Raised when a replica cannot be placed (e.g. unknown processor)."""


class TaskModelError(ReproError):
    """Raised when a task definition violates the chain-structure invariants."""


class RegressionError(ReproError):
    """Raised when a regression fit is ill-posed or a model is misused."""


class InsufficientDataError(RegressionError):
    """Raised when a fit is attempted with fewer samples than parameters."""


class ProfilingError(ReproError):
    """Raised when a profiling campaign is misconfigured."""


class AllocationError(ReproError):
    """Raised for invalid resource-allocation requests."""


class ConfigurationError(ReproError):
    """Raised when an experiment configuration is inconsistent."""


class ParallelExecutionError(ReproError):
    """Raised when a worker job of the process-pool runner fails."""


class TelemetryError(ReproError):
    """Raised for invalid telemetry operations.

    Covers metric-registry misuse (re-registering a name as a different
    metric type, malformed histogram buckets) and trace-export problems
    (an unreadable or non-JSONL trace file).
    """


class AnalysisError(ReproError):
    """Raised when the static-analysis suite itself is misconfigured.

    Rule *violations* are data (:class:`repro.analysis.model.Violation`),
    not exceptions; this error covers broken inputs — an unparsable
    target file, an invalid layering contract, an unknown rule id.
    """


class ChaosError(ReproError):
    """Raised for invalid fault-injection scenarios or specs.

    Covers malformed fault-process parameters (non-positive rates,
    out-of-range probabilities), unknown scenario names, and misuse of
    the injector life-cycle (arming twice, wrapping before arming).
    """
