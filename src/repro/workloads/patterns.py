"""Workload patterns (paper Figure 8 and extensions).

A pattern maps a period index to the number of data items (tracks)
released that period.  The paper's three evaluation patterns are
parameterized by a workload interval ``[min_tracks, max_tracks]``:

* **increasing ramp** — starts at the minimum, rises linearly to the
  maximum over the run;
* **decreasing ramp** — the mirror image;
* **triangular** — alternates linear rises and falls between the bounds
  (the "fluctuating" workload where the predictive algorithm wins).

Extra patterns (constant, step, sinusoid, bursty) support the extension
studies and examples.  All patterns are deterministic except
:class:`BurstyPattern`, which takes a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadPattern:
    """Base class: a deterministic map ``period index -> tracks``.

    Attributes
    ----------
    min_tracks / max_tracks:
        The workload interval (Figure 8's "Maximum Workload" sweeps
        ``max_tracks``; the paper's minimum is small but non-zero).
    n_periods:
        Nominal experiment length; patterns remain defined beyond it.
    """

    min_tracks: float
    max_tracks: float
    n_periods: int

    def __post_init__(self) -> None:
        if self.min_tracks < 0.0:
            raise ConfigurationError(
                f"min_tracks must be non-negative, got {self.min_tracks}"
            )
        if self.max_tracks < self.min_tracks:
            raise ConfigurationError(
                f"max_tracks {self.max_tracks} below min_tracks {self.min_tracks}"
            )
        if self.n_periods < 1:
            raise ConfigurationError(
                f"n_periods must be >= 1, got {self.n_periods}"
            )

    # -- interface -------------------------------------------------------------

    def tracks_at(self, period_index: int) -> float:
        """Tracks released in period ``period_index`` (>= 0)."""
        raise NotImplementedError

    def __call__(self, period_index: int) -> float:
        if period_index < 0:
            raise ConfigurationError(f"negative period index {period_index}")
        value = self.tracks_at(period_index)
        return float(max(0.0, value))

    def series(self, n: int | None = None) -> np.ndarray:
        """The first ``n`` (default ``n_periods``) values as an array."""
        count = self.n_periods if n is None else n
        return np.array([self(i) for i in range(count)])

    def _progress(self, period_index: int) -> float:
        """Position in the run mapped to [0, 1] (clamped beyond the end)."""
        if self.n_periods == 1:
            return 1.0
        return min(1.0, period_index / (self.n_periods - 1))


@dataclass(frozen=True)
class IncreasingRamp(WorkloadPattern):
    """Linear rise from ``min_tracks`` to ``max_tracks``."""

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        span = self.max_tracks - self.min_tracks
        return self.min_tracks + span * self._progress(period_index)


@dataclass(frozen=True)
class DecreasingRamp(WorkloadPattern):
    """Linear fall from ``max_tracks`` to ``min_tracks``."""

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        span = self.max_tracks - self.min_tracks
        return self.max_tracks - span * self._progress(period_index)


@dataclass(frozen=True)
class TriangularPattern(WorkloadPattern):
    """Alternating rises and falls between the bounds (Figure 8).

    Attributes
    ----------
    cycle_periods:
        Length of one full up-down cycle.  The default of
        ``n_periods // 2`` (set lazily when 0) gives two cycles per run.
    """

    cycle_periods: int = 0

    def _cycle(self) -> int:
        if self.cycle_periods > 0:
            return self.cycle_periods
        return max(2, self.n_periods // 2)

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        cycle = self._cycle()
        phase = (period_index % cycle) / cycle  # [0, 1)
        # Triangle wave: up for the first half-cycle, down for the second.
        position = 2.0 * phase if phase < 0.5 else 2.0 * (1.0 - phase)
        return self.min_tracks + (self.max_tracks - self.min_tracks) * position


@dataclass(frozen=True)
class ConstantPattern(WorkloadPattern):
    """Flat workload at ``max_tracks`` (``min_tracks`` is ignored)."""

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        return self.max_tracks


@dataclass(frozen=True)
class StepPattern(WorkloadPattern):
    """Minimum workload, then a step to the maximum at ``step_period``."""

    step_period: int = 0

    def _step_at(self) -> int:
        return self.step_period if self.step_period > 0 else self.n_periods // 2

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        return (
            self.max_tracks
            if period_index >= self._step_at()
            else self.min_tracks
        )


@dataclass(frozen=True)
class SinusoidPattern(WorkloadPattern):
    """Smooth oscillation between the bounds."""

    cycle_periods: int = 0

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        cycle = self.cycle_periods if self.cycle_periods > 0 else max(
            2, self.n_periods // 2
        )
        mid = 0.5 * (self.min_tracks + self.max_tracks)
        amplitude = 0.5 * (self.max_tracks - self.min_tracks)
        return mid - amplitude * math.cos(2.0 * math.pi * period_index / cycle)


@dataclass(frozen=True)
class BurstyPattern(WorkloadPattern):
    """Random bursts: baseline ``min_tracks`` with seeded spikes.

    Each period independently bursts to a uniform draw in
    ``[min_tracks, max_tracks]`` with probability ``burst_probability``.
    """

    burst_probability: float = 0.25
    seed: int = 0
    _values: tuple[float, ...] = field(init=False, compare=False, repr=False, default=())

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ConfigurationError(
                f"burst_probability must be in [0, 1], got {self.burst_probability}"
            )
        # Config-seeded private stream: the values depend only on the
        # frozen (seed, bounds, n_periods) config, so parent and worker
        # materialize identical tuples.
        rng = np.random.default_rng(self.seed)  # repro: noqa CONC-RNG-FACTORY
        values = []
        for _ in range(self.n_periods):
            if rng.random() < self.burst_probability:
                values.append(float(rng.uniform(self.min_tracks, self.max_tracks)))
            else:
                values.append(self.min_tracks)
        object.__setattr__(self, "_values", tuple(values))

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        if period_index < len(self._values):
            return self._values[period_index]
        return self.min_tracks


@dataclass(frozen=True)
class CompositePattern(WorkloadPattern):
    """A sequence of patterns played back to back (mission profiles).

    ``segments`` is a tuple of patterns; each runs for its own
    ``n_periods``, then the next takes over (its local period index
    restarts at 0).  Beyond the last segment, the last segment's final
    behaviour continues.  ``min_tracks``/``max_tracks`` of the composite
    are informational bounds; each segment enforces its own.
    """

    segments: tuple[WorkloadPattern, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.segments:
            raise ConfigurationError("composite needs at least one segment")

    def tracks_at(self, period_index: int) -> float:
        """See :meth:`WorkloadPattern.tracks_at`."""
        offset = period_index
        for segment in self.segments[:-1]:
            if offset < segment.n_periods:
                return segment(offset)
            offset -= segment.n_periods
        return self.segments[-1](offset)

    @classmethod
    def of(cls, *segments: WorkloadPattern) -> "CompositePattern":
        """Build a composite, deriving bounds and length from segments."""
        if not segments:
            raise ConfigurationError("composite needs at least one segment")
        return cls(
            min_tracks=min(s.min_tracks for s in segments),
            max_tracks=max(s.max_tracks for s in segments),
            n_periods=sum(s.n_periods for s in segments),
            segments=tuple(segments),
        )


def mission_profile(
    name: str, max_tracks: float = 10_000.0, quiet_tracks: float = 500.0
) -> CompositePattern:
    """Named mission scenarios composed from the basic patterns.

    * ``"raid"`` — quiet patrol, sudden raid plateau, gradual clear.
    * ``"escort"`` — slow build-up, sustained high tempo, drawdown.
    * ``"skirmishes"`` — quiet baseline with repeated short engagements.
    """
    if name == "raid":
        return CompositePattern.of(
            ConstantPattern(quiet_tracks, quiet_tracks, 10),
            ConstantPattern(quiet_tracks, max_tracks, 15),
            DecreasingRamp(quiet_tracks, max_tracks, 15),
        )
    if name == "escort":
        return CompositePattern.of(
            IncreasingRamp(quiet_tracks, max_tracks, 20),
            ConstantPattern(quiet_tracks, max_tracks, 20),
            DecreasingRamp(quiet_tracks, max_tracks, 10),
        )
    if name == "skirmishes":
        engagement = TriangularPattern(
            quiet_tracks, max_tracks, 12, cycle_periods=12
        )
        quiet = ConstantPattern(quiet_tracks, quiet_tracks, 6)
        return CompositePattern.of(
            quiet, engagement, quiet, engagement, quiet,
        )
    raise ConfigurationError(
        f"unknown mission profile {name!r}; choose raid/escort/skirmishes"
    )


#: Names accepted by :func:`make_pattern` (the experiment configuration
#: references patterns by these strings).
PATTERN_NAMES = (
    "increasing",
    "decreasing",
    "triangular",
    "constant",
    "step",
    "sinusoid",
    "bursty",
)


def make_pattern(
    name: str,
    min_tracks: float,
    max_tracks: float,
    n_periods: int,
    **kwargs: float,
) -> WorkloadPattern:
    """Factory for patterns by name (see :data:`PATTERN_NAMES`)."""
    classes: dict[str, type[WorkloadPattern]] = {
        "increasing": IncreasingRamp,
        "decreasing": DecreasingRamp,
        "triangular": TriangularPattern,
        "constant": ConstantPattern,
        "step": StepPattern,
        "sinusoid": SinusoidPattern,
        "bursty": BurstyPattern,
    }
    try:
        cls = classes[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; choose from {PATTERN_NAMES}"
        ) from None
    return cls(
        min_tracks=min_tracks,
        max_tracks=max_tracks,
        n_periods=n_periods,
        **kwargs,  # type: ignore[arg-type]
    )
