"""Workload generation.

:mod:`repro.workloads.patterns` implements the paper's Figure 8 shapes
(increasing ramp, decreasing ramp, triangular) plus extra patterns used
by the extension studies; :mod:`repro.workloads.sensors` generates the
track streams themselves for examples that want per-item data.
"""

from repro.workloads.patterns import (
    BurstyPattern,
    CompositePattern,
    ConstantPattern,
    DecreasingRamp,
    IncreasingRamp,
    SinusoidPattern,
    StepPattern,
    TriangularPattern,
    WorkloadPattern,
    make_pattern,
    mission_profile,
)
from repro.workloads.sensors import Track, TrackStreamGenerator

__all__ = [
    "BurstyPattern",
    "CompositePattern",
    "ConstantPattern",
    "DecreasingRamp",
    "IncreasingRamp",
    "SinusoidPattern",
    "StepPattern",
    "Track",
    "TrackStreamGenerator",
    "TriangularPattern",
    "WorkloadPattern",
    "make_pattern",
    "mission_profile",
]
