"""Track-stream generation.

The paper's workload is a stream of radar *tracks* (sensor reports of
80 bytes, Table 1).  The simulator only needs per-period counts (the
patterns), but the examples that demonstrate the public API on
realistic scenarios also want the items themselves — positions,
velocities, identities — so this module synthesizes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import TRACK_BYTES
from repro.workloads.patterns import WorkloadPattern


@dataclass(frozen=True)
class Track:
    """One synthetic sensor report.

    Attributes
    ----------
    track_id:
        Stable identity across periods.
    x, y:
        Position in kilometres from the sensor origin.
    vx, vy:
        Velocity in km/s.
    threat:
        Threat score in [0, 1] (what EvalDecide would rank on).
    """

    track_id: int
    x: float
    y: float
    vx: float
    vy: float
    threat: float

    @property
    def size_bytes(self) -> int:
        """Wire size of a report (Table 1: 80 bytes)."""
        return TRACK_BYTES


class TrackStreamGenerator:
    """Generates per-period batches of tracks following a pattern.

    Track identities persist between periods: when the workload grows,
    new tracks appear; when it shrinks, the newest ones drop out —
    mirroring a surveillance picture gaining/losing contacts.
    """

    def __init__(self, pattern: WorkloadPattern, seed: int = 0) -> None:
        self.pattern = pattern
        # Config-seeded private stream, deterministic per (pattern,
        # seed) — identical in parent and worker processes.
        self._rng = np.random.default_rng(seed)  # repro: noqa CONC-RNG-FACTORY
        self._states: dict[int, Track] = {}
        self._next_id = 1

    def _spawn(self) -> Track:
        rng = self._rng
        track = Track(
            track_id=self._next_id,
            x=float(rng.uniform(-200.0, 200.0)),
            y=float(rng.uniform(-200.0, 200.0)),
            vx=float(rng.uniform(-0.3, 0.3)),
            vy=float(rng.uniform(-0.3, 0.3)),
            threat=float(rng.uniform(0.0, 1.0)),
        )
        self._next_id += 1
        return track

    def _advance(self, track: Track, dt: float) -> Track:
        return Track(
            track_id=track.track_id,
            x=track.x + track.vx * dt,
            y=track.y + track.vy * dt,
            vx=track.vx,
            vy=track.vy,
            threat=min(1.0, max(0.0, track.threat + float(self._rng.normal(0, 0.02)))),
        )

    def batch(self, period_index: int, dt: float = 1.0) -> list[Track]:
        """The tracks observed in ``period_index``.

        The batch size follows the pattern (rounded); existing tracks are
        advanced by ``dt`` seconds and new ones spawned/retired to match.
        """
        if period_index < 0:
            raise ConfigurationError(f"negative period index {period_index}")
        count = int(round(self.pattern(period_index)))
        # Advance survivors.
        for track_id in list(self._states):
            self._states[track_id] = self._advance(self._states[track_id], dt)
        # Grow or shrink the picture.
        while len(self._states) < count:
            track = self._spawn()
            self._states[track.track_id] = track
        while len(self._states) > count:
            newest = max(self._states)
            del self._states[newest]
        return [self._states[k] for k in sorted(self._states)]

    def total_bytes(self, period_index: int) -> int:
        """Wire bytes of the period's batch."""
        return int(round(self.pattern(period_index))) * TRACK_BYTES
