"""Execution of periodic tasks on the simulated cluster.

:class:`~repro.runtime.executor.PeriodicTaskExecutor` releases the task
every period, fans each replicated stage out across its assigned
processors, routes inter-stage messages over the shared medium, and
records per-stage and end-to-end timing into
:class:`~repro.runtime.records.PeriodRecord` objects — the observations
the run-time monitor (paper Figure 1, box 1) consumes.
"""

from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.runtime.records import PeriodRecord, StageRecord

__all__ = [
    "ExecutorConfig",
    "PeriodRecord",
    "PeriodicTaskExecutor",
    "StageRecord",
]
