"""Periodic task execution on the simulated cluster.

Each period the executor:

1. releases ``ds(T, c)`` tracks into stage 1;
2. for every stage, snapshots the stage's replica set ``PS(st)`` and
   submits one CPU job per replica, each processing ``1/|PS|`` of the
   stream (§3 property 6 — replicas share the data stream evenly);
3. when the last replica finishes (stage barrier), sends the
   inter-stage message burst: one message per *downstream* replica,
   each carrying that replica's share — exactly the message pattern the
   predictive algorithm prices in Figure 5 (``k+1`` messages of
   ``d/(k+1)`` payload);
4. records per-stage and end-to-end timing into
   :class:`~repro.runtime.records.PeriodRecord`.

Overload shedding
-----------------
Under severe overload a period's quadratic-demand stages can outlast
many periods, and without intervention backlogged jobs snowball (each
new release contends with the old ones, slowing everything further —
the real phenomenon, but one that also stops the monitor from ever
seeing a completed stage).  Real-time mission systems shed such work;
the executor aborts any period still in flight ``drop_factor`` periods
after its release, cancelling its outstanding jobs and counting it as a
missed deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.network import Message
from repro.cluster.processor import Discipline, Job, Processor
from repro.cluster.topology import System
from repro.errors import ConfigurationError
from repro.runtime.records import PeriodRecord, StageRecord
from repro.tasks.model import PeriodicTask
from repro.tasks.state import ReplicaAssignment

#: Event priority of task releases (after RM steps, which use -10).
RELEASE_PRIORITY = 0


@dataclass(frozen=True)
class ExecutorConfig:
    """Tunables of the execution model.

    Attributes
    ----------
    drop_factor:
        Periods still in flight this many periods after release are
        aborted (overload shedding).  Must be >= 1.
    noise_stream:
        Name of the RNG stream used for execution-time noise.
    use_node_clocks:
        When ``True``, stage timestamps are taken from the *local clock
        of the node involved* (the last-finishing replica's processor)
        instead of true simulation time — so the monitoring data lives
        on the imperfect "global time scale" the paper's clock-sync
        assumption (§3 property 12, [Mills95]) provides.  Off by
        default: with sync running the difference is sub-millisecond,
        but the robustness tests enable it with *desynchronized* clocks
        to measure how much timestamp error the RM loop tolerates.
    """

    drop_factor: float = 2.0
    noise_stream: str = "exec-noise"
    use_node_clocks: bool = False

    def __post_init__(self) -> None:
        if self.drop_factor < 1.0:
            raise ConfigurationError(
                f"drop_factor must be >= 1, got {self.drop_factor}"
            )


class _InFlight:
    """Bookkeeping for one released period."""

    __slots__ = ("record", "jobs", "done")

    def __init__(self, record: PeriodRecord) -> None:
        self.record = record
        self.jobs: list[tuple[str, Job]] = []  # (processor name, job)
        self.done = False

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class _StageBarrier:
    """Stage-completion barrier: fires when the last replica job finishes.

    Module-level (not a closure over ``_start_stage`` locals) so in-flight
    periods pickle for run snapshots.  Semantics are identical to the old
    nested ``job_done``: decrement, and on the last completion stamp the
    finishing node's clock and advance the pipeline.
    """

    __slots__ = ("executor", "flight", "subtask_index", "stage", "remaining")

    def __init__(
        self,
        executor: "PeriodicTaskExecutor",
        flight: _InFlight,
        subtask_index: int,
        stage: StageRecord,
        remaining: int,
    ) -> None:
        self.executor = executor
        self.flight = flight
        self.subtask_index = subtask_index
        self.stage = stage
        self.remaining = remaining

    def job_done(self, job: Job, t: float, name: str) -> None:
        self.remaining -= 1
        if self.remaining == 0 and not self.flight.done:
            self.stage.exec_finish_time = self.executor._stamp(name)
            self.executor._stage_finished(self.flight, self.subtask_index)

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class _ReplicaDone:
    """Per-replica ``on_complete`` adapter binding the replica's name."""

    __slots__ = ("barrier", "name")

    def __init__(self, barrier: _StageBarrier, name: str) -> None:
        self.barrier = barrier
        self.name = name

    def __call__(self, job: Job, t: float) -> None:
        self.barrier.job_done(job, t, self.name)

    def __getstate__(self) -> dict[str, object]:
        return {"barrier": self.barrier, "name": self.name}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.barrier = state["barrier"]
        self.name = state["name"]


class _DeliveryBarrier:
    """Message-burst barrier: starts the next stage after the last delivery."""

    __slots__ = ("executor", "flight", "next_index", "sent_at", "remaining")

    def __init__(
        self,
        executor: "PeriodicTaskExecutor",
        flight: _InFlight,
        next_index: int,
        sent_at: float,
        remaining: int,
    ) -> None:
        self.executor = executor
        self.flight = flight
        self.next_index = next_index
        self.sent_at = sent_at
        self.remaining = remaining

    def delivered(self, message: Message, t: float, receiver: str) -> None:
        self.remaining -= 1
        if self.remaining == 0 and not self.flight.done:
            # Monitoring sees the cross-node delay: receiver stamp minus
            # sender stamp (clock error included when node clocks are
            # enabled; never below zero).
            delay = max(0.0, self.executor._stamp(receiver) - self.sent_at)
            self.executor._start_stage(
                self.flight, self.next_index, message_in_delay=delay
            )

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class _MessageDone:
    """Per-receiver ``on_delivered`` adapter binding the receiver's name."""

    __slots__ = ("barrier", "receiver")

    def __init__(self, barrier: _DeliveryBarrier, receiver: str) -> None:
        self.barrier = barrier
        self.receiver = receiver

    def __call__(self, message: Message, t: float) -> None:
        self.barrier.delivered(message, t, self.receiver)

    def __getstate__(self) -> dict[str, object]:
        return {"barrier": self.barrier, "receiver": self.receiver}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.barrier = state["barrier"]
        self.receiver = state["receiver"]


class PeriodicTaskExecutor:
    """Drives one periodic task against the system.

    Parameters
    ----------
    system:
        The cluster to run on.
    task:
        The task definition.
    assignment:
        The live ``PS(st)`` map; the resource manager mutates it and the
        executor snapshots it at every stage start.
    workload:
        ``ds(T, c)``: maps period index to the number of tracks released.
    config:
        Execution-model tunables.
    on_period_complete:
        Optional callback ``(PeriodRecord) -> None`` fired at completion
        or abort.
    """

    def __init__(
        self,
        system: System,
        task: PeriodicTask,
        assignment: ReplicaAssignment,
        workload: Callable[[int], float],
        config: ExecutorConfig | None = None,
        on_period_complete: Callable[[PeriodRecord], None] | None = None,
    ) -> None:
        self.system = system
        self.task = task
        self.assignment = assignment
        self.workload = workload
        self.config = config if config is not None else ExecutorConfig()
        self.on_period_complete = on_period_complete
        self.rng: np.random.Generator = system.rng.stream(self.config.noise_stream)
        self.records: list[PeriodRecord] = []
        self.current_period_index = -1
        self.current_d_tracks = 0.0
        self._in_flight: dict[int, _InFlight] = {}

    # -- driving -----------------------------------------------------------------

    def start(self, n_periods: int, first_release: float = 0.0) -> None:
        """Schedule ``n_periods`` releases starting at ``first_release``."""
        if n_periods < 1:
            raise ConfigurationError(f"need at least one period, got {n_periods}")
        engine = self.system.engine
        period = self.task.period
        engine.schedule_many(
            [first_release + c * period for c in range(n_periods)],
            self._release,
            [(c,) for c in range(n_periods)],
            priority=RELEASE_PRIORITY,
            labels=f"{self.task.name}.release",
        )

    # -- release / stages -----------------------------------------------------------

    def _release(self, period_index: int) -> None:
        now = self.system.engine.now
        d_tracks = float(self.workload(period_index))
        if d_tracks < 0.0:
            raise ConfigurationError(
                f"workload for period {period_index} is negative: {d_tracks}"
            )
        self.current_period_index = period_index
        self.current_d_tracks = d_tracks
        record = PeriodRecord(
            period_index=period_index,
            release_time=now,
            d_tracks=d_tracks,
            deadline=self.task.deadline,
        )
        self.records.append(record)
        if d_tracks == 0.0:
            # Nothing to process: the period trivially completes.
            record.completion_time = now
            self._notify(record)
            return
        flight = _InFlight(record)
        self._in_flight[period_index] = flight
        self.system.engine.schedule(
            self.config.drop_factor * self.task.period,
            self._watchdog,
            period_index,
            label=f"{self.task.name}.watchdog",
        )
        self._start_stage(flight, 1, message_in_delay=0.0)

    def _stamp(self, processor_name: str) -> float:
        """A timestamp on the monitoring time scale.

        True simulation time by default; the hosting node's local clock
        when ``use_node_clocks`` is enabled (stage records then carry
        the bounded clock error the paper's sync assumption permits).
        """
        now = self.system.engine.now
        if not self.config.use_node_clocks:
            return now
        return self.system.clock_of(processor_name).local_time(now)

    def _start_stage(
        self, flight: _InFlight, subtask_index: int, message_in_delay: float
    ) -> None:
        if flight.done:
            return
        subtask = self.task.subtask(subtask_index)
        replicas = self.assignment.processors_of(subtask_index)
        stage = StageRecord(
            subtask_index=subtask_index,
            replica_count=len(replicas),
            start_time=self._stamp(replicas[0]),
            message_in_delay=message_in_delay,
        )
        flight.record.stages.append(stage)
        share = flight.record.d_tracks / len(replicas)
        barrier = _StageBarrier(self, flight, subtask_index, stage, len(replicas))

        if self._submit_stage_batch(flight, subtask_index, replicas, share, barrier):
            return
        for name in replicas:
            processor = self.system.processor(name)
            demand = subtask.service.demand(share, self.rng)
            job = processor.run_for(
                demand,
                kind="app",
                label=f"{self.task.name}.st{subtask_index}",
                on_complete=_ReplicaDone(barrier, name),
            )
            flight.jobs.append((name, job))

    def _submit_stage_batch(
        self,
        flight: _InFlight,
        subtask_index: int,
        replicas: tuple[str, ...] | list[str],
        share: float,
        barrier: _StageBarrier,
    ) -> bool:
        """Submit the stage's replica jobs as one batched calendar insert.

        Only taken when the engine has an array-backed calendar, the
        service model exposes batched draws, and every replica processor
        is a distinct idle live PS processor — the common steady-state
        shape, where this path is *provably* bit-identical to the scalar
        loop:

        * ``demand_many`` consumes the noise stream exactly like the same
          number of scalar draws, and job ids are allocated in the same
          replica order;
        * with no resident jobs, ``_ps_arrive`` reduces to ageing the
          clock, marking the meter busy, registering the job, and
          scheduling its solo completion at
          ``now + max(0.0, remaining * 1 / speed)`` — the identical float
          expression evaluated below (``len(_active)`` is exactly 1);
        * :meth:`~repro.sim.engine.Engine.schedule_many` assigns sequence
          numbers consecutively in input order, matching the per-replica
          ``schedule`` calls of the scalar loop.

        Any other shape (failed node, resident background job, RR
        discipline, duplicate placement) returns ``False`` and the
        caller runs the unchanged scalar loop.
        """
        engine = self.system.engine
        if not engine.supports_batch:
            return False
        subtask = self.task.subtask(subtask_index)
        demand_many = getattr(subtask.service, "demand_many", None)
        if demand_many is None:
            return False
        procs: list[Processor] = []
        seen: set[str] = set()
        for name in replicas:
            p = self.system.processor(name)
            if (
                p.failed
                or p.discipline is not Discipline.PROCESSOR_SHARING
                or p._active
                or p._completion_event is not None
                or name in seen
            ):
                return False
            seen.add(name)
            procs.append(p)
        now = engine.now
        demands = demand_many(share, len(procs), self.rng)
        label = f"{self.task.name}.st{subtask_index}"
        times: list[float] = []
        args_list: list[tuple[int]] = []
        callbacks: list[Callable[[int], None]] = []
        labels: list[str] = []
        for name, p, demand in zip(replicas, procs, demands):
            job = Job(
                demand,
                kind="app",
                label=label,
                on_complete=_ReplicaDone(barrier, name),
            )
            job.arrival_time = now
            p._ps_age()
            p.meter.set_busy(now, True)
            p._active[job.job_id] = job
            # Bit-identical to _ps_reschedule's delay with one active job.
            times.append(now + max(0.0, job.remaining * 1 / p.speed))
            callbacks.append(p._ps_complete)
            args_list.append((job.job_id,))
            labels.append(f"{p.name}.ps-done")
            flight.jobs.append((name, job))
        events = engine.schedule_many(times, callbacks, args_list, labels=labels)
        for p, event in zip(procs, events):
            p._completion_event = event
        return True

    def _stage_finished(self, flight: _InFlight, subtask_index: int) -> None:
        if subtask_index == self.task.n_subtasks:
            self._complete(flight)
            return
        self._send_messages(flight, subtask_index)

    def _send_messages(self, flight: _InFlight, subtask_index: int) -> None:
        """Send the burst feeding stage ``subtask_index + 1``."""
        next_index = subtask_index + 1
        message_spec = self.task.message(subtask_index)
        receivers = self.assignment.processors_of(next_index)
        senders = self.assignment.processors_of(subtask_index)
        share = flight.record.d_tracks / len(receivers)
        sent_at = self._stamp(senders[0])
        barrier = _DeliveryBarrier(self, flight, next_index, sent_at, len(receivers))

        for position, receiver in enumerate(receivers):
            sender = senders[position % len(senders)]
            self.system.network.send_bytes(
                message_spec.wire_payload_bytes(share, flight.record.d_tracks),
                source=sender,
                destination=receiver,
                label=f"{self.task.name}.m{subtask_index}",
                on_delivered=_MessageDone(barrier, receiver),
            )

    # -- completion / shedding ----------------------------------------------------------

    def _complete(self, flight: _InFlight) -> None:
        flight.done = True
        flight.record.completion_time = self.system.engine.now
        self._in_flight.pop(flight.record.period_index, None)
        self.system.engine.tracer.record(
            self.system.engine.now,
            "period",
            f"{self.task.name}.complete",
            {
                "period": flight.record.period_index,
                "latency": flight.record.latency,
                "missed": flight.record.missed,
            },
        )
        telemetry = self.system.engine.telemetry
        if telemetry.enabled:
            telemetry.on_period_complete(self.system.engine.now, flight.record)
        self._notify(flight.record)

    def _watchdog(self, period_index: int) -> None:
        flight = self._in_flight.get(period_index)
        if flight is None or flight.done:
            return
        self._abort(flight)

    def _abort(self, flight: _InFlight) -> None:
        flight.done = True
        flight.record.aborted = True
        self._in_flight.pop(flight.record.period_index, None)
        for name, job in flight.jobs:
            if job.completion_time is None:
                self.system.processor(name).cancel_job(job)
        self.system.engine.tracer.record(
            self.system.engine.now,
            "period",
            f"{self.task.name}.abort",
            {"period": flight.record.period_index},
        )
        telemetry = self.system.engine.telemetry
        if telemetry.enabled:
            telemetry.on_period_abort(self.system.engine.now, flight.record)
        self._notify(flight.record)

    def _notify(self, record: PeriodRecord) -> None:
        if self.on_period_complete is not None:
            self.on_period_complete(record)

    # -- views for the monitor -------------------------------------------------------

    def completed_records(self) -> list[PeriodRecord]:
        """All records that have finished (completed or aborted)."""
        return [r for r in self.records if r.completed or r.aborted]

    def overdue_subtasks(self) -> set[int]:
        """Subtask indices whose stage is in flight past the period deadline.

        This is how the monitor detects "missed its individual deadline"
        for work that has not completed (e.g. the very first periods of a
        decreasing-ramp experiment, where an unreplicated stage may run
        for multiple periods).
        """
        now = self.system.engine.now
        overdue: set[int] = set()
        for flight in self._in_flight.values():
            if flight.record.overdue_at(now) and flight.record.stages:
                overdue.add(flight.record.stages[-1].subtask_index)
        return overdue

    @property
    def in_flight_count(self) -> int:
        """Number of periods currently executing."""
        return len(self._in_flight)
