"""Timing records produced by the task executor.

One :class:`PeriodRecord` per task release, containing one
:class:`StageRecord` per subtask stage.  These records are the *only*
view the resource-management layer has of application timeliness — the
monitor reads them on a global time scale (Figure 1), never the
simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageRecord:
    """Timing of one subtask stage within one period.

    Attributes
    ----------
    subtask_index:
        Chain position (1-based).
    replica_count:
        Replicas the stage ran with (``|PS(st)|`` at stage start).
    start_time:
        When the stage's replica jobs were submitted (= when the incoming
        message burst completed, or the release time for stage 1).
    exec_finish_time:
        When the *last* replica job completed (stage barrier).
    message_in_delay:
        Communication delay of the incoming message burst (0 for
        stage 1): last delivery minus predecessor's execution finish.
    """

    subtask_index: int
    replica_count: int
    start_time: float
    exec_finish_time: float | None = None
    message_in_delay: float = 0.0

    @property
    def exec_latency(self) -> float | None:
        """Execution time of the stage barrier (max over replicas)."""
        if self.exec_finish_time is None:
            return None
        return self.exec_finish_time - self.start_time

    @property
    def stage_latency(self) -> float | None:
        """Incoming-message delay plus execution latency.

        This is the quantity compared against the stage budget
        ``dl(m_{j-1}) + dl(st_j)`` by the monitor, mirroring the paper's
        footnote 3 (replica in-message delay folded into the successor's
        deadline).
        """
        latency = self.exec_latency
        if latency is None:
            return None
        return self.message_in_delay + latency


@dataclass
class PeriodRecord:
    """Timing of one task release (one period)."""

    period_index: int
    release_time: float
    d_tracks: float
    deadline: float
    stages: list[StageRecord] = field(default_factory=list)
    completion_time: float | None = None
    aborted: bool = False

    @property
    def completed(self) -> bool:
        """Whether every stage finished (aborted periods never complete)."""
        return self.completion_time is not None

    @property
    def latency(self) -> float | None:
        """End-to-end latency, or ``None`` while in flight / if aborted."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    @property
    def missed(self) -> bool:
        """Whether the period missed its end-to-end deadline.

        Aborted periods (shed by the overload watchdog) count as missed;
        in-flight periods are not yet judged (``False`` here — callers
        needing "overdue" semantics use :meth:`overdue_at`).
        """
        if self.aborted:
            return True
        latency = self.latency
        return latency is not None and latency > self.deadline

    def overdue_at(self, now: float) -> bool:
        """Whether the period is in flight and already past its deadline."""
        return (
            not self.aborted
            and self.completion_time is None
            and now > self.release_time + self.deadline
        )

    def stage(self, subtask_index: int) -> StageRecord | None:
        """The stage record for ``subtask_index``, if that stage started."""
        for record in self.stages:
            if record.subtask_index == subtask_index:
                return record
        return None
