"""The synthetic AAW benchmark task (Table 1 structure).

A 5-subtask sensing pipeline with the paper's replicability pattern —
Table 2 gives regression coefficients for subtasks **3** and **5**, so
those are the two replicable subtasks of Table 1:

.. code-block:: text

    st1 SensorIn ──m1──> st2 Preprocess ──m2──> st3 Filter*
        ──m3──> st4 Correlate ──m4──> st5 EvalDecide*        (* replicable)

Demand constants are calibrated (see DESIGN.md §2 and
EXPERIMENTS.md) so that, against the Table 1 deadline of 990 ms on a
6-node system:

* below ~4 workload units (1 unit = 500 tracks) the unreplicated chain
  meets its deadline — the paper's "no replication needed" region;
* replication becomes necessary from ~8 units;
* even maximal replication saturates near ~30 units — the paper's
  observed threshold (~28) beyond which both policies fluctuate.

Message payloads shrink along the chain (filtering discards data,
decisions are compact), which is what keeps network utilization in the
tens of percent as in Fig. 9(c).
"""

from __future__ import annotations

from repro.bench.ground_truth import LinearServiceModel, QuadraticServiceModel
from repro.errors import ConfigurationError
from repro.tasks.builder import TaskBuilder
from repro.tasks.model import PeriodicTask
from repro.units import MS

#: Names of the five subtasks, index 1..5.
SUBTASK_NAMES = ("SensorIn", "Preprocess", "Filter", "Correlate", "EvalDecide")

#: Indices of the replicable subtasks (Table 1: 2 per task; Table 2 rows).
REPLICABLE_INDICES = (3, 5)

#: Per-item wire payload of each message stage, bytes (m1..m4).  Raw
#: tracks are 80 bytes (Table 1); filtering and evaluation compact them.
MESSAGE_BYTES_PER_ITEM = (80.0, 80.0, 48.0, 16.0)

#: Per-item global-context bytes shipped to every replica in addition to
#: its share (a compact all-tracks summary needed for gating/correlation;
#: see :class:`repro.tasks.model.MessageSpec`).  This is what makes
#: replica fan-out cost network capacity.
MESSAGE_CONTEXT_BYTES_PER_ITEM = (16.0, 16.0, 16.0, 16.0)

#: Ground-truth demand constants (ms, per (d/100) resp. (d/100)^2).
DEMAND_CONSTANTS = {
    1: {"q2": 0.0, "q1": 0.20},   # SensorIn: light ingest
    2: {"q2": 0.0, "q1": 0.40},   # Preprocess: light per-track work
    3: {"q2": 0.30, "q1": 2.00},  # Filter: quadratic (pairwise gating)
    4: {"q2": 0.0, "q1": 0.30},   # Correlate: light per-track work
    5: {"q2": 0.18, "q1": 3.00},  # EvalDecide: quadratic (engagement eval)
}


def aaw_task(
    period: float = 1.0,
    deadline: float = 990.0 * MS,
    noise_sigma: float = 0.08,
) -> PeriodicTask:
    """Build the benchmark task with Table 1 timing parameters.

    Parameters
    ----------
    period:
        Data arrival period ``cy(T)`` in seconds (Table 1: 1 s).
    deadline:
        Relative end-to-end deadline in seconds (Table 1: 990 ms).
    noise_sigma:
        Log-normal execution-noise sigma applied to every subtask
        (0 gives a deterministic application, useful in tests).
    """
    if deadline > period:
        raise ConfigurationError(
            f"deadline {deadline} exceeds period {period}; the benchmark "
            "task is constrained-deadline"
        )
    builder = TaskBuilder("aaw", period_s=period, deadline_s=deadline)
    for index, name in enumerate(SUBTASK_NAMES, start=1):
        constants = DEMAND_CONSTANTS[index]
        if constants["q2"] > 0.0:
            service = QuadraticServiceModel(
                q2_ms=constants["q2"],
                q1_ms=constants["q1"],
                noise_sigma=noise_sigma,
            )
        else:
            service = LinearServiceModel(
                q1_ms=constants["q1"], noise_sigma=noise_sigma
            )
        builder.subtask(name, service=service, replicable=index in REPLICABLE_INDICES)
        if index < len(SUBTASK_NAMES):
            builder.message(
                bytes_per_item=MESSAGE_BYTES_PER_ITEM[index - 1],
                context_bytes_per_item=MESSAGE_CONTEXT_BYTES_PER_ITEM[index - 1],
            )
    return builder.build()


def default_initial_placement(
    task: PeriodicTask, processor_names: list[str]
) -> dict[int, str]:
    """Round-robin initial placement of original replicas over processors.

    With the Table 1 baseline (5 subtasks, 6 nodes) this puts one subtask
    per node and leaves one node initially idle — the headroom the RM
    algorithms allocate from.
    """
    if not processor_names:
        raise ConfigurationError("need at least one processor name")
    return {
        subtask.index: processor_names[(subtask.index - 1) % len(processor_names)]
        for subtask in task.subtasks
    }
