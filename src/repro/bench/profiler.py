"""Profiling campaigns (paper §4.2.1.1 and §4.2.1.2).

The paper derives its regression equations from *measurements* of the
benchmark under controlled conditions:

* **execution latency** — each subtask is timed while its host processor
  is held at a sequence of CPU utilizations and fed a sequence of data
  sizes (the measurement grids behind Figs. 2-4);
* **buffer delay** — the benchmark's message pattern is replayed at a
  sequence of total periodic workloads and the queueing delay of each
  message is recorded (the data behind eq. 5 / Table 3).

This module reproduces both campaigns against the simulated hardware and
fits the corresponding models.  :func:`build_estimator` is the one-call
entry point used by examples, experiments and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.background import BackgroundLoad
from repro.cluster.network import Network
from repro.cluster.processor import Discipline, Processor
from repro.errors import ProfilingError
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel
from repro.sim.engine import Engine
from repro.tasks.model import PeriodicTask, Subtask
from repro.units import ETHERNET_100_MBPS, s_to_ms, tracks_to_regression_units

#: Default utilization grid (fractions) — the paper profiles up to 80 %.
DEFAULT_U_GRID: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)

#: Default data-size grid in tracks (paper Figs. 2-3 span ~0-25 hundred
#: items; we extend a bit for extrapolation headroom).
DEFAULT_D_GRID: tuple[float, ...] = (
    100.0,
    250.0,
    500.0,
    750.0,
    1000.0,
    1500.0,
    2000.0,
    3000.0,
    4500.0,
    6000.0,
)


@dataclass(frozen=True)
class ProfileSample:
    """One latency measurement at a grid point."""

    subtask_name: str
    u_target: float
    u_measured: float
    d_tracks: float
    latency_s: float


@dataclass
class LatencyProfileResult:
    """All samples of one subtask's campaign plus the fitted surface."""

    subtask_name: str
    samples: list[ProfileSample]
    model: ExecutionLatencyModel

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(d_hundreds, u_target, latency_ms)`` sample arrays."""
        d = np.array(
            [tracks_to_regression_units(s.d_tracks) for s in self.samples]
        )
        u = np.array([s.u_target for s in self.samples])
        y = np.array([s_to_ms(s.latency_s) for s in self.samples])
        return d, u, y


@dataclass
class BufferProfileResult:
    """Buffer-delay campaign data plus the fitted eq. 5 line."""

    total_tracks: np.ndarray
    mean_buffer_delay_ms: np.ndarray
    model: BufferDelayModel
    per_message_delays: dict[float, list[float]] = field(default_factory=dict)


def _measure_once(
    subtask: Subtask,
    d_tracks: float,
    u_target: float,
    rng: np.random.Generator,
    warmup: float,
    bg_interval: float,
) -> tuple[float, float]:
    """One isolated measurement: latency and measured utilization."""
    engine = Engine()
    processor = Processor(
        engine, "probe", discipline=Discipline.PROCESSOR_SHARING,
        utilization_window=max(warmup, 1.0),
    )
    background = BackgroundLoad(
        processor, u_target, interval_s=bg_interval, jitter=0.3, rng=rng
    )
    background.start()
    engine.run_until(warmup)
    u_measured = processor.utilization(window=warmup * 0.8)

    done: dict[str, float] = {}
    demand = subtask.service.demand(d_tracks, rng)
    job = processor.run_for(
        demand,
        kind="profile",
        label=f"profile:{subtask.name}",
        on_complete=lambda j, t: done.setdefault("t", t),
    )
    # Run the sim until the probe job completes; the background generator
    # never stops, so step until the completion callback fires.
    max_steps = 2_000_000
    steps = 0
    while "t" not in done:
        if not engine.step():
            raise ProfilingError("engine drained before the probe completed")
        steps += 1
        if steps > max_steps:
            raise ProfilingError(
                f"probe job did not complete within {max_steps} events "
                f"(u={u_target}, d={d_tracks})"
            )
    return job.latency, u_measured


def profile_subtask(
    subtask: Subtask,
    u_grid: tuple[float, ...] = DEFAULT_U_GRID,
    d_grid_tracks: tuple[float, ...] = DEFAULT_D_GRID,
    repetitions: int = 3,
    seed: int = 0,
    warmup: float = 0.5,
    bg_interval: float = 0.010,
    fit: str = "two_stage",
) -> LatencyProfileResult:
    """Run the §4.2.1.1 campaign for one subtask and fit eq. 3.

    Parameters
    ----------
    subtask:
        The subtask to measure (its ground-truth service model is
        invoked, noise included).
    u_grid / d_grid_tracks:
        The measurement grid.  Two-stage fitting needs >= 3 utilization
        levels and >= 2 data sizes.
    repetitions:
        Measurements per grid point.
    fit:
        ``"two_stage"`` (the paper's procedure) or ``"direct"``.
    """
    if repetitions < 1:
        raise ProfilingError(f"repetitions must be >= 1, got {repetitions}")
    if fit not in ("two_stage", "direct"):
        raise ProfilingError(f"unknown fit procedure {fit!r}")
    # Config-seeded private stream: profiling draws depend only on the
    # explicit seed argument, never on ambient experiment streams.
    rng = np.random.default_rng(seed)  # repro: noqa CONC-RNG-FACTORY
    samples: list[ProfileSample] = []
    for u_target in u_grid:
        for d_tracks in d_grid_tracks:
            for _ in range(repetitions):
                latency, u_measured = _measure_once(
                    subtask, d_tracks, u_target, rng, warmup, bg_interval
                )
                samples.append(
                    ProfileSample(
                        subtask_name=subtask.name,
                        u_target=u_target,
                        u_measured=u_measured,
                        d_tracks=d_tracks,
                        latency_s=latency,
                    )
                )
    d = np.array([tracks_to_regression_units(s.d_tracks) for s in samples])
    u = np.array([s.u_target for s in samples])
    y = np.array([s_to_ms(s.latency_s) for s in samples])
    if fit == "two_stage":
        model = ExecutionLatencyModel.fit_two_stage(subtask.name, d, u, y)
    else:
        model = ExecutionLatencyModel.fit_direct(subtask.name, d, u, y)
    return LatencyProfileResult(subtask_name=subtask.name, samples=samples, model=model)


def profile_buffer_delay(
    task: PeriodicTask,
    total_tracks_grid: tuple[float, ...] = (500.0, 2000.0, 4000.0, 8000.0, 12000.0, 17500.0),
    periods: int = 5,
    fanout: int = 3,
    bandwidth_bps: float = ETHERNET_100_MBPS,
    overhead_bytes: float = 1500.0,
    stage_offset: float = 0.15,
) -> BufferProfileResult:
    """Run the §4.2.1.2 campaign: buffer delay vs total periodic workload.

    The task's message pattern is replayed on an otherwise idle medium:
    each period, every message stage sends a ``fanout``-way burst (as a
    replicated predecessor would), stages staggered by ``stage_offset``
    of the period.  The queueing ("buffer") delay of every message is
    recorded and eq. 5's through-origin line fitted to the per-load
    means.
    """
    if fanout < 1:
        raise ProfilingError(f"fanout must be >= 1, got {fanout}")
    if periods < 1:
        raise ProfilingError(f"periods must be >= 1, got {periods}")
    mean_delays: list[float] = []
    per_message: dict[float, list[float]] = {}
    for total in total_tracks_grid:
        engine = Engine()
        network = Network(
            engine,
            bandwidth_bps=bandwidth_bps,
            default_overhead_bytes=overhead_bytes,
        )
        sent = []
        for period_index in range(periods):
            base = period_index * task.period
            for message in task.messages:
                at = base + (message.index - 1) * stage_offset * task.period
                payload = message.wire_payload_bytes(total / fanout, total)

                def _send(payload_bytes: float = payload, index: int = message.index) -> None:
                    for _ in range(fanout):
                        sent.append(
                            network.send_bytes(payload_bytes, label=f"m{index}")
                        )

                engine.schedule_at(at, _send)
        engine.run_until(periods * task.period + 5.0)
        delays_ms = [s_to_ms(m.buffer_delay) for m in sent if m.start_time is not None]
        if not delays_ms:
            raise ProfilingError(f"no messages transmitted at load {total}")
        per_message[float(total)] = delays_ms
        mean_delays.append(float(np.mean(delays_ms)))
    loads = np.asarray(total_tracks_grid, dtype=float)
    means = np.asarray(mean_delays)
    model = BufferDelayModel.fit(loads, means)
    return BufferProfileResult(
        total_tracks=loads,
        mean_buffer_delay_ms=means,
        model=model,
        per_message_delays=per_message,
    )


def build_estimator(
    task: PeriodicTask,
    u_grid: tuple[float, ...] = DEFAULT_U_GRID,
    d_grid_tracks: tuple[float, ...] = DEFAULT_D_GRID,
    repetitions: int = 2,
    seed: int = 0,
    bandwidth_bps: float = ETHERNET_100_MBPS,
    overhead_bytes: float = 1500.0,
    fit: str = "two_stage",
) -> TimingEstimator:
    """Profile every subtask and the medium, fit all models, return the
    :class:`~repro.regression.estimator.TimingEstimator` the resource
    manager consumes.
    """
    latency_models: dict[int, ExecutionLatencyModel] = {}
    for subtask in task.subtasks:
        result = profile_subtask(
            subtask,
            u_grid=u_grid,
            d_grid_tracks=d_grid_tracks,
            repetitions=repetitions,
            seed=seed + subtask.index,
            fit=fit,
        )
        latency_models[subtask.index] = result.model
    buffer_result = profile_buffer_delay(
        task, bandwidth_bps=bandwidth_bps, overhead_bytes=overhead_bytes
    )
    comm_model = CommunicationDelayModel(
        buffer=buffer_result.model,
        transmission=TransmissionModel(
            bandwidth_bps=bandwidth_bps, overhead_bytes=overhead_bytes
        ),
    )
    return TimingEstimator(
        task=task, latency_models=latency_models, comm_model=comm_model
    )
