"""DynBench-like benchmark application substrate.

The paper profiles a real-time benchmark derived from the U.S. Navy's
Anti-Air Warfare (AAW) system ([SWR99] DynBench): a sensing/assessment
pipeline whose dominant cost drivers are the number of radar *tracks*
processed per period.  We cannot run the original benchmark, so this
package provides a synthetic equivalent (documented in DESIGN.md §2):

* :mod:`repro.bench.ground_truth` — per-subtask CPU *service demand*
  models, quadratic in data size with multiplicative noise.  These are
  the "real application" the profiler measures; the resource manager
  never reads them directly.
* :mod:`repro.bench.app` — the Table 1 task: a 5-subtask chain
  (SensorIn, Preprocess, **Filter**, Correlate, **EvalDecide**) with the
  two bold subtasks replicable, matching the paper (Table 2 reports
  regression coefficients for subtasks 3 and 5).
* :mod:`repro.bench.datasets` — the published Table 2 / Table 3
  coefficients, shipped verbatim for comparison and exact-paper runs.
* :mod:`repro.bench.profiler` — the measurement campaigns of §4.2.1
  (latency vs (d, u) grid; buffer delay vs periodic load) and the
  ``build_estimator`` convenience entry point.
"""

from repro.bench.app import aaw_task, default_initial_placement
from repro.bench.datasets import (
    PAPER_BUFFER_K,
    PAPER_TABLE2_COEFFICIENTS,
    paper_comm_model,
    paper_latency_model,
)
from repro.bench.ground_truth import LinearServiceModel, QuadraticServiceModel
from repro.bench.profiler import (
    BufferProfileResult,
    LatencyProfileResult,
    ProfileSample,
    profile_buffer_delay,
    profile_subtask,
)

__all__ = [
    "BufferProfileResult",
    "LatencyProfileResult",
    "LinearServiceModel",
    "PAPER_BUFFER_K",
    "PAPER_TABLE2_COEFFICIENTS",
    "ProfileSample",
    "QuadraticServiceModel",
    "aaw_task",
    "default_initial_placement",
    "paper_comm_model",
    "paper_latency_model",
    "profile_buffer_delay",
    "profile_subtask",
]


def __getattr__(name: str):
    # Pre-facade estimator entry point (PEP 562 shim); the supported
    # spellings are repro.api.fit_estimator(task=...) for a one-off
    # profiling campaign and repro.bench.profiler.build_estimator for
    # the underlying implementation.
    if name == "build_estimator":
        import warnings

        from repro.bench import profiler

        warnings.warn(
            "repro.bench.build_estimator is deprecated; use "
            "repro.api.fit_estimator(task=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return profiler.build_estimator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
