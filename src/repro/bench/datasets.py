"""Published regression coefficients (paper Tables 2 and 3).

The paper measured its benchmark and reports, for the two replicable
subtasks (chain indices 3 and 5), the eq. 3 surface coefficients
(Table 2) and the eq. 5 buffer-delay slope (Table 3).  We ship them
verbatim so that

* experiments can run with the *authors'* timing models instead of (or
  compared against) models we fit from the synthetic benchmark, and
* the Table 2 reproduction bench can print fitted-vs-published
  coefficients side by side.

Unit note: the paper states ``u`` is "CPU utilization in percentage",
but with ``u`` in percent the published ``a1 u^2`` term alone would make
the ``d^2`` coefficient negative beyond ``u ≈ 9 %`` for subtask 3
(a1 = -0.00155), i.e. negative latencies over most of the measured
range.  With ``u`` as a fraction in [0, 1] the surfaces are positive and
monotone over the profiled region, so — as our DESIGN.md records — we
interpret ``u`` as a fraction.
"""

from __future__ import annotations

from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel
from repro.units import ETHERNET_100_MBPS

#: Table 2 — coefficients of the execution-latency regression equation.
#: Keys are chain indices; values are the paper's (a1, a2, a3, b1, b2, b3).
PAPER_TABLE2_COEFFICIENTS: dict[int, dict[str, float]] = {
    3: {
        "a1": -0.00155,
        "a2": 1.535e-05,
        "a3": 0.11816174,
        "b1": 0.0298276,
        "b2": -0.000285,
        "b3": 0.983699,
    },
    5: {
        "a1": 0.002123,
        "a2": -1.596e-05,
        "a3": 0.022324,
        "b1": -0.023927,
        "b2": 0.000108,
        "b3": 1.443762,
    },
}

#: Table 3 — slope of the buffer-delay regression line (both subtasks).
PAPER_BUFFER_K: float = 0.7

#: The paper's Table 3 slope is "per unit of periodic workload"; scaled to
#: per-track via the experiment's 500-track workload unit this is
#: ``0.7 ms / 500 tracks``.
PAPER_BUFFER_K_MS_PER_TRACK: float = PAPER_BUFFER_K / 500.0


def paper_latency_model(subtask_index: int) -> ExecutionLatencyModel:
    """The published eq. 3 surface for chain index 3 or 5."""
    try:
        coeffs = PAPER_TABLE2_COEFFICIENTS[subtask_index]
    except KeyError:
        raise KeyError(
            f"the paper publishes coefficients only for subtasks "
            f"{sorted(PAPER_TABLE2_COEFFICIENTS)}, not {subtask_index}"
        ) from None
    return ExecutionLatencyModel(
        subtask_name=f"paper-st{subtask_index}",
        a=(coeffs["a1"], coeffs["a2"], coeffs["a3"]),
        b=(coeffs["b1"], coeffs["b2"], coeffs["b3"]),
        r_squared=1.0,
        n_samples=0,
    )


def paper_comm_model(
    bandwidth_bps: float = ETHERNET_100_MBPS, overhead_bytes: float = 1500.0
) -> CommunicationDelayModel:
    """Eq. 4 model using the published Table 3 buffer slope."""
    return CommunicationDelayModel(
        buffer=BufferDelayModel(k_ms_per_track=PAPER_BUFFER_K_MS_PER_TRACK),
        transmission=TransmissionModel(
            bandwidth_bps=bandwidth_bps, overhead_bytes=overhead_bytes
        ),
    )
