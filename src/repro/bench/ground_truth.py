"""Ground-truth CPU service demands of the synthetic benchmark.

These models answer "how many CPU seconds does subtask ``st`` need to
process ``d`` tracks" — the quantity the paper's real benchmark embodies
in code.  They are *only* consumed by the simulator (executor, profiler);
the resource-management algorithms see nothing but measurements.

The functional form is a through-origin quadratic in data size (matching
the curvature visible in the paper's Figs. 2-4) expressed in the paper's
regression units:

``demand_ms(d) = q2 * (d/100)^2 + q1 * (d/100)``

with a small fixed dispatch floor and multiplicative log-normal noise
modelling run-to-run variation.  Note the *demand* does not depend on
CPU utilization — the latency stretch at high utilization emerges from
the processor-sharing contention in :mod:`repro.cluster.processor`,
exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskModelError
from repro.units import ms_to_s, tracks_to_regression_units


@dataclass(frozen=True)
class QuadraticServiceModel:
    """CPU demand quadratic in data size.

    Attributes
    ----------
    q2_ms:
        Coefficient of ``(d/100)^2`` in milliseconds.
    q1_ms:
        Coefficient of ``(d/100)`` in milliseconds.
    floor_ms:
        Minimum demand (fixed dispatch/setup cost), default 0.2 ms.
    noise_sigma:
        Log-normal sigma of the multiplicative noise; 0 disables noise.
    """

    q2_ms: float
    q1_ms: float
    floor_ms: float = 0.2
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.q2_ms < 0.0 or self.q1_ms < 0.0:
            raise TaskModelError(
                f"demand coefficients must be non-negative, got "
                f"q2={self.q2_ms}, q1={self.q1_ms}"
            )
        if self.floor_ms <= 0.0:
            raise TaskModelError(f"floor must be positive, got {self.floor_ms}")
        if self.noise_sigma < 0.0:
            raise TaskModelError(f"noise sigma must be >= 0, got {self.noise_sigma}")

    def mean_demand_seconds(self, d_tracks: float) -> float:
        """Noise-free demand in seconds."""
        if d_tracks < 0.0:
            raise TaskModelError(f"negative data size {d_tracks}")
        d_h = tracks_to_regression_units(d_tracks)
        return ms_to_s(max(self.floor_ms, self.q2_ms * d_h * d_h + self.q1_ms * d_h))

    def demand(self, d_tracks: float, rng: np.random.Generator | None = None) -> float:
        """Sampled demand in seconds (implements
        :class:`repro.tasks.model.ServiceModel`)."""
        base = self.mean_demand_seconds(d_tracks)
        if rng is None or self.noise_sigma == 0.0:
            return base
        return base * float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def demand_many(
        self, d_tracks: float, n: int, rng: np.random.Generator | None = None
    ) -> list[float]:
        """``n`` sampled demands for the same data size, in draw order.

        Bit-identical to ``n`` sequential :meth:`demand` calls — NumPy's
        sized ``lognormal`` consumes the generator stream exactly as the
        same number of scalar draws would — so batched submission paths
        can use it without perturbing any downstream randomness.
        """
        base = self.mean_demand_seconds(d_tracks)
        if rng is None or self.noise_sigma == 0.0:
            return [base] * n
        noise = rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=n)
        return [base * float(x) for x in noise]


def LinearServiceModel(
    q1_ms: float, floor_ms: float = 0.2, noise_sigma: float = 0.0
) -> QuadraticServiceModel:
    """A demand linear in data size (quadratic model with ``q2 = 0``)."""
    return QuadraticServiceModel(
        q2_ms=0.0, q1_ms=q1_ms, floor_ms=floor_ms, noise_sigma=noise_sigma
    )
