"""Unit conventions and conversion helpers used throughout :mod:`repro`.

The simulator keeps **all internal quantities in SI base units**:

* time in **seconds** (``float``),
* data volume in **bytes**,
* bandwidth in **bits per second**,
* CPU utilization as a **fraction** in ``[0, 1]``.

The paper mixes units freely (milliseconds for latencies, "hundreds of
data items" for regression data sizes, percent for utilization, Mbit/s for
bandwidth).  Every conversion between the paper's presentation units and
internal units goes through this module so there is exactly one place where
a factor of 1000 can hide.

The regression equations of the paper (eq. 3) are expressed in *paper
units*: latency in milliseconds, ``d`` in hundreds of data items, ``u`` as a
fraction.  :mod:`repro.regression` documents, per function, which unit
system its arguments use.
"""

from __future__ import annotations

#: Number of seconds in one millisecond.
MS = 1e-3

#: Number of seconds in one microsecond.
US = 1e-6

#: Bytes per track (sensor report) in the paper's baseline (Table 1).
TRACK_BYTES = 80

#: The paper's experiment sweep expresses workload in units of 500 tracks
#: ("1 scale unit = 500 Track" in Figures 9-13).
WORKLOAD_SCALE_TRACKS = 500

#: The regression equations express data size in hundreds of data items.
REGRESSION_DATA_UNIT = 100

#: Ethernet bandwidth in the baseline configuration (Table 1): 100 Mbit/s.
ETHERNET_100_MBPS = 100e6


def ms_to_s(value_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return value_ms * MS


def s_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return value_s / MS


def mbps_to_bps(value_mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return value_mbps * 1e6


def tracks_to_bytes(n_tracks: float, track_bytes: int = TRACK_BYTES) -> float:
    """Size in bytes of a batch of ``n_tracks`` sensor reports."""
    return float(n_tracks) * float(track_bytes)


def tracks_to_regression_units(n_tracks: float) -> float:
    """Convert a raw track count to the regression ``d`` unit (hundreds)."""
    return float(n_tracks) / REGRESSION_DATA_UNIT


def regression_units_to_tracks(d_hundreds: float) -> float:
    """Convert the regression ``d`` unit (hundreds of items) to tracks."""
    return float(d_hundreds) * REGRESSION_DATA_UNIT


def workload_units_to_tracks(units: float) -> float:
    """Convert Figure 9-13 workload scale units (500 tracks) to tracks."""
    return float(units) * WORKLOAD_SCALE_TRACKS


def transmission_time(payload_bytes: float, bandwidth_bps: float) -> float:
    """Time in seconds to clock ``payload_bytes`` onto a link (paper eq. 6).

    ``Dtrans(d) = d / ls`` with ``d`` in bits and ``ls`` the link speed.
    """
    if bandwidth_bps <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if payload_bytes < 0.0:
        raise ValueError(f"payload must be non-negative, got {payload_bytes}")
    return (payload_bytes * 8.0) / bandwidth_bps


def fraction_to_percent(u: float) -> float:
    """Convert a utilization fraction to percent."""
    return u * 100.0


def percent_to_fraction(u_pct: float) -> float:
    """Convert a utilization percentage to a fraction."""
    return u_pct / 100.0
