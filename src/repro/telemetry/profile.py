"""Deterministic, enabled-guarded run profiler for instrumented regions.

The simulator's hot paths are instrumented with named *regions* —
``engine.run`` (scalar dispatch), ``engine.vector`` (vectorized
calendar), ``rm.step`` / ``rm.monitor`` / ``rm.placement`` (the RM
decision cycle), ``rm.forecast`` (the Figure 5/6 kernels at their core
call sites), and the network/monitor feeds.  When a
:class:`RunProfiler` is attached to the telemetry hub, each region
accumulates three things:

* ``calls`` — how many times the region was entered,
* ``events`` — a deterministic work counter (engine events executed,
  subtasks placed, forecasts computed, …), and
* wall-time (total and *self*, i.e. minus enclosed child regions).

Calls and events are pure functions of the seed, so
:meth:`RunProfiler.summary` with ``deterministic=True`` is
byte-reproducible and safe to embed in digest-tested reports; wall
times come from the host clock and are only included when explicitly
requested.  :meth:`RunProfiler.to_chrome_trace` exports the recorded
slices as a Perfetto-compatible flame track that loads next to the
simulation trace in ``ui.perfetto.dev``.

The profiler follows the hub's cost model: components check a cheap
``profiler is not None`` / truthiness guard before calling in, and a
disabled run executes exactly the same instruction stream as before —
the engine-equivalence suites pin that.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Process/thread ids for the exported flame track (kept clear of the
#: simulation trace's pids 1-4 in :mod:`repro.telemetry.chrome`).
PROFILE_PID = 9
#: Slices kept for the flame export; counters are never dropped.
MAX_SLICES = 65_536
#: Seconds → microseconds (trace-event timestamps are in µs).
_US = 1e6


@dataclass
class RegionStat:
    """Accumulated totals for one instrumented region."""

    name: str
    calls: int = 0
    events: int = 0
    wall_s: float = 0.0
    self_wall_s: float = 0.0

    def as_dict(self, deterministic: bool = False) -> dict[str, Any]:
        """JSON-friendly totals; wall times omitted when deterministic."""
        out: dict[str, Any] = {
            "name": self.name,
            "calls": self.calls,
            "events": self.events,
        }
        if not deterministic:
            out["wall_s"] = self.wall_s
            out["self_wall_s"] = self.self_wall_s
        return out


class RunProfiler:
    """Attributes wall-time and event counts to named regions.

    Usage from an instrumented component::

        profiler = telemetry.profiler
        if profiler is not None:
            handle = profiler.begin("engine.run")
        ...  # hot work
        if profiler is not None:
            profiler.end(handle, events=executed)

    ``begin``/``end`` pairs may nest; self-time attributes each
    region's wall-clock minus its enclosed children, so the summary's
    ``self_wall_s`` column sums to (roughly) the run's instrumented
    wall time without double counting.
    """

    __slots__ = ("_stats", "_stack", "_slices", "_origin", "enabled")

    def __init__(self) -> None:
        self.enabled = True
        self._stats: dict[str, RegionStat] = {}
        # (name, start_wall, child_wall_accumulator)
        self._stack: list[list[Any]] = []
        # (name, start_us, dur_us, depth) for the flame export
        self._slices: list[tuple[str, float, float, int]] = []
        self._origin = time.perf_counter()

    # -- region API ---------------------------------------------------------

    def begin(self, name: str) -> int:
        """Enter a region; returns a handle for :meth:`end`."""
        self._stack.append([name, time.perf_counter(), 0.0])
        return len(self._stack) - 1

    def end(self, handle: int, events: int = 0) -> float:
        """Leave the region opened by ``handle``, adding ``events`` work.

        Returns the region's wall-clock seconds (0.0 for a stale
        handle).  Unbalanced inner frames (e.g. abandoned by an
        exception between ``begin`` and ``end``) are discarded so one
        crashing region cannot corrupt attribution for the rest of the
        run.
        """
        if handle >= len(self._stack):
            return 0.0
        del self._stack[handle + 1 :]
        name, start, child_wall = self._stack.pop()
        now = time.perf_counter()
        wall = now - start
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = RegionStat(name)
        stat.calls += 1
        stat.events += events
        stat.wall_s += wall
        stat.self_wall_s += wall - child_wall
        if self._stack:
            self._stack[-1][2] += wall
        if len(self._slices) < MAX_SLICES:
            self._slices.append(
                (name, (start - self._origin) * _US, wall * _US, len(self._stack))
            )
        return wall

    def count(self, name: str, events: int = 1) -> None:
        """Add work to a region without timing it (pure counter feed)."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = RegionStat(name)
        stat.events += events

    def counter(self, name: str) -> RegionStat:
        """A pre-resolved :meth:`count` handle for per-event hot paths.

        Callers bump ``.events`` on the returned stat directly, skipping
        the name lookup each time.
        """
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = RegionStat(name)
        return stat

    # -- export -------------------------------------------------------------

    def stats(self) -> tuple[RegionStat, ...]:
        """Per-region totals, sorted by name for stable output."""
        return tuple(self._stats[name] for name in sorted(self._stats))

    def summary(self, deterministic: bool = False) -> dict[str, Any]:
        """JSON summary; with ``deterministic=True`` only calls/events
        (byte-reproducible for a fixed seed) are included."""
        return {
            "regions": [s.as_dict(deterministic) for s in self.stats()],
            "deterministic": deterministic,
        }

    def render(self) -> str:
        """An aligned text table of the per-region breakdown."""
        from repro.formatting import format_table
        from repro.units import s_to_ms

        total_self = sum(s.self_wall_s for s in self._stats.values()) or 1.0
        rows = [
            [
                s.name,
                s.calls,
                s.events,
                f"{s_to_ms(s.wall_s):.3f}",
                f"{s_to_ms(s.self_wall_s):.3f}",
                f"{100.0 * s.self_wall_s / total_self:.1f}%",
            ]
            for s in self.stats()
        ]
        return format_table(
            ["region", "calls", "events", "wall ms", "self ms", "self %"],
            rows,
            title="profile: wall-time attribution by region",
        )

    def to_chrome_trace(self) -> dict[str, Any]:
        """Perfetto-compatible flame track of the recorded slices."""
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": PROFILE_PID,
                "tid": 0,
                "args": {"name": "repro profiler"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROFILE_PID,
                "tid": 1,
                "args": {"name": "regions"},
            },
        ]
        for name, start_us, dur_us, _depth in self._slices:
            events.append(
                {
                    "name": name,
                    "cat": "profile",
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": PROFILE_PID,
                    "tid": 1,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the flame track JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_chrome_trace(), separators=(",", ":")),
            encoding="utf-8",
        )
        return path
