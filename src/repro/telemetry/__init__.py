"""Observability for the simulator: metrics, decision spans, trace export.

The package has four pieces:

* :mod:`repro.telemetry.metrics` — a registry of counters, gauges,
  time-weighted gauges, and fixed-bucket histograms, snapshot-able at
  any simulation time and exportable as JSON or Prometheus text.
* :mod:`repro.telemetry.spans` — structured spans for the resource
  manager's decision cycles, with predicted-vs-realized forecast pairing.
* :mod:`repro.telemetry.sinks` — streaming sinks (JSONL) that persist
  records incrementally instead of buffering them in memory.
* :mod:`repro.telemetry.chrome` — Chrome trace-event (Perfetto) export
  and the ``repro trace`` summary tables.

On top of those, the consumption layer:

* :mod:`repro.telemetry.slo` — declarative SLO rules evaluated in
  sim-time with multi-window burn-rate alerting.
* :mod:`repro.telemetry.profile` — a deterministic run profiler
  attributing wall-time and event counts to instrumented regions.
* :mod:`repro.telemetry.rollup` — order-independent campaign rollups
  that merge byte-identically across shards.
* :mod:`repro.telemetry.report` — the self-contained HTML health
  report behind ``repro report --health``.

:class:`TelemetryHub` (in :mod:`repro.telemetry.hub`) ties them together
behind the cheap ``enabled`` guard instrumented components check; the
:data:`NULL_TELEMETRY` singleton is the disabled default.

Layering: this package sits next to the foundation modules — it imports
only :mod:`repro.errors`, :mod:`repro.units`, and
:mod:`repro.formatting`, and is importable from every simulation layer.
"""

from repro.telemetry.chrome import (
    forecast_stats,
    processor_utilization,
    replica_counts,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.hub import NULL_TELEMETRY, NullTelemetry, TelemetryHub
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
)
from repro.telemetry.profile import RegionStat, RunProfiler
from repro.telemetry.report import render_report, sparkline, write_report
from repro.telemetry.rollup import CampaignRollup, merge_rollups
from repro.telemetry.sinks import (
    JsonlTraceSink,
    MemorySink,
    TraceSink,
    read_jsonl,
)
from repro.telemetry.slo import (
    DEFAULT_SLO_RULES,
    SloAlert,
    SloEngine,
    SloReport,
    SloRule,
    SloVerdict,
    load_slo_rules,
)
from repro.telemetry.spans import DecisionSpan, ForecastEval, SpanRecorder

__all__ = [
    "CampaignRollup",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLO_RULES",
    "Counter",
    "DecisionSpan",
    "ForecastEval",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RegionStat",
    "RunProfiler",
    "SloAlert",
    "SloEngine",
    "SloReport",
    "SloRule",
    "SloVerdict",
    "SpanRecorder",
    "TelemetryHub",
    "TimeWeightedGauge",
    "TraceSink",
    "forecast_stats",
    "load_slo_rules",
    "merge_rollups",
    "processor_utilization",
    "read_jsonl",
    "render_report",
    "replica_counts",
    "sparkline",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_report",
]
