"""The metrics registry: counters, gauges, time-weighted gauges, histograms.

Metrics are the *aggregate* half of the observability layer (the trace
sinks in :mod:`repro.telemetry.sinks` are the per-occurrence half).  All
instruments are keyed by ``(name, labels)`` so one registry can hold,
say, ``proc.jobs_completed`` once per processor.  A registry can be
snapshot at any simulation time and exported as flat JSON or as the
Prometheus text exposition format, so run artefacts plug into standard
dashboards without an adapter.

Design notes
------------
* Instruments are get-or-create: ``registry.counter("x")`` returns the
  same object every call, which keeps instrumentation sites one-line.
* Time semantics are explicit.  Nothing here reads a clock; callers pass
  simulation time into :class:`TimeWeightedGauge` updates and into
  :meth:`MetricsRegistry.snapshot`, keeping the registry deterministic
  and usable from host-side tooling alike.
* Histograms use fixed bucket bounds chosen at registration.  Fixed
  buckets make ``observe`` O(log B) with zero allocation — cheap enough
  for per-job instrumentation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import TelemetryError

#: Default histogram bucket upper bounds (seconds) — spans sub-ms
#: message delays through multi-second period latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, ...)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0.0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def sample(self, at: float) -> dict[str, Any]:
        """Snapshot payload for :meth:`MetricsRegistry.snapshot`."""
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (queue length, replica count)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount

    def sample(self, at: float) -> dict[str, Any]:
        """Snapshot payload (the current value)."""
        return {"value": self.value}


class TimeWeightedGauge:
    """A gauge whose average weights each value by how long it held.

    ``set(time, value)`` closes the interval since the previous update;
    :meth:`time_average` integrates up to the query time.  This is the
    right shape for "average total replicas" style metrics, where the
    plain mean over update events would over-weight busy phases.
    """

    kind = "time_gauge"
    __slots__ = ("name", "labels", "value", "_start", "_last", "_integral")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._start: float | None = None
        self._last: float | None = None
        self._integral = 0.0

    def set(self, time: float, value: float) -> None:
        """Record that the gauge holds ``value`` from ``time`` onward."""
        if self._last is not None:
            if time < self._last:
                raise TelemetryError(
                    f"time gauge {self.name!r} updated backwards: "
                    f"{time} < {self._last}"
                )
            self._integral += self.value * (time - self._last)
        else:
            self._start = time
        self._last = time
        self.value = float(value)

    def time_average(self, at: float) -> float:
        """The time-weighted mean over ``[first update, at]``."""
        if self._last is None or self._start is None:
            return 0.0
        span = at - self._start
        if span <= 0.0:
            return self.value
        integral = self._integral + self.value * max(0.0, at - self._last)
        return integral / span

    def sample(self, at: float) -> dict[str, Any]:
        """Snapshot payload (current value + time-weighted average)."""
        return {"value": self.value, "time_average": self.time_average(at)}


class Histogram:
    """Fixed-bucket distribution of observed values.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds.  An implicit ``+Inf`` bucket
        catches the overflow, as in Prometheus.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile by linear position within buckets.

        Uses the bucket upper bound (or the last finite bound for the
        overflow bucket) — coarse, but good enough for summary tables.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def sample(self, at: float) -> dict[str, Any]:
        """Snapshot payload (bucket bounds, counts, sum, count, mean)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
        }


Metric = Counter | Gauge | TimeWeightedGauge | Histogram


class MetricsRegistry:
    """Holds every instrument of one run, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}

    # -- get-or-create -----------------------------------------------------

    def _get(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, str] | None,
        **kwargs: Any,
    ) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"cannot re-register as {cls.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get(Gauge, name, labels)

    def time_gauge(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> TimeWeightedGauge:
        """Get or create a :class:`TimeWeightedGauge`."""
        return self._get(TimeWeightedGauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given buckets."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- introspection / export --------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> Iterable[Metric]:
        """All instruments in deterministic (name, labels) order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self, at: float) -> dict[str, Any]:
        """The whole registry as one JSON-ready dict at time ``at``.

        Shape: ``{"at": t, "metrics": [{name, kind, labels, ...}, ...]}``
        with per-kind payload fields from each instrument's ``sample``.
        """
        out = []
        for metric in self.metrics():
            entry: dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            entry.update(metric.sample(at))
            out.append(entry)
        return {"at": at, "metrics": out}

    def to_json(self, at: float) -> str:
        """The snapshot serialized as an indented JSON document."""
        import json

        return json.dumps(self.snapshot(at), indent=2, sort_keys=True)

    def to_prometheus(self, at: float) -> str:
        """The snapshot in the Prometheus text exposition format.

        Metric names are sanitized (``.`` and ``-`` become ``_``) and
        prefixed ``repro_``; time-weighted gauges export both the
        instantaneous value and a ``_avg`` companion series.
        """
        lines: list[str] = []
        for metric in self.metrics():
            base = "repro_" + _sanitize(metric.name)
            labels = _prom_labels(metric.labels)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {base} counter")
                lines.append(f"{base}{labels} {_num(metric.value)}")
            elif isinstance(metric, TimeWeightedGauge):
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base}{labels} {_num(metric.value)}")
                lines.append(f"# TYPE {base}_avg gauge")
                lines.append(
                    f"{base}_avg{labels} {_num(metric.time_average(at))}"
                )
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base}{labels} {_num(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {base} histogram")
                cumulative = 0
                for bound, count in zip(metric.buckets, metric.counts):
                    cumulative += count
                    lines.append(
                        f"{base}_bucket{_prom_labels(metric.labels, le=_num(bound))}"
                        f" {cumulative}"
                    )
                inf_count = cumulative + metric.counts[-1]
                if inf_count != metric.count:
                    raise TelemetryError(
                        f"histogram {metric.name!r} is inconsistent: "
                        f"buckets sum to {inf_count} but count is "
                        f"{metric.count}"
                    )
                lines.append(
                    f"{base}_bucket{_prom_labels(metric.labels, le='+Inf')}"
                    f" {inf_count}"
                )
                lines.append(f"{base}_sum{labels} {_num(metric.sum)}")
                lines.append(f"{base}_count{labels} {metric.count}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and newline must be escaped inside quoted
    label values; anything else passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: Labels, le: str | None = None) -> str:
    pairs = [f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in labels]
    if le is not None:
        pairs.append(f'le="{le}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _num(value: float) -> str:
    """Render a float the way Prometheus expects (no trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
