"""Streaming trace sinks.

A sink receives one plain-dict record per occurrence and persists it
*incrementally* — unlike the buffering :class:`repro.sim.trace.Tracer`,
nothing accumulates in memory and a crashed run keeps everything written
so far.  The JSONL format (one JSON object per line) is the on-disk
interchange: ``repro trace`` converts it to a Chrome trace and summary
tables, and any jq/pandas pipeline can consume it directly.

Record convention
-----------------
Every record carries ``t`` (simulation time, seconds) and ``kind``; the
remaining keys are kind-specific.  The instrumentation emits:

``trace``
    A forwarded :class:`~repro.sim.trace.Tracer` record (``cat``,
    ``label``, ``data``) — jobs, messages, period completions, failures.
``rm.span``
    One resource-manager decision cycle (see
    :mod:`repro.telemetry.spans`).
``rm.forecast_realized``
    A Figure 5 forecast paired with the stage latency later observed.
``run.meta``
    Run-level context (policy, pattern, horizon), written once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO


class TraceSink:
    """Base sink: discards everything (also the no-op default)."""

    def write(self, record: dict[str, Any]) -> None:
        """Persist one record (base class: drop it)."""

    def close(self) -> None:
        """Flush and release resources (base class: nothing to do)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MemorySink(TraceSink):
    """Keeps records in a list — for tests and in-process consumers."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        """Append the record to the in-memory list."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


class JsonlTraceSink(TraceSink):
    """Appends records to a ``.jsonl`` file as they arrive.

    Parameters
    ----------
    path:
        Target file (parent directories are created).
    flush_every:
        Records between explicit flushes.  Buffered I/O keeps the write
        cheap; periodic flushing bounds how much a crash can lose.
    append:
        Open the file in append mode instead of truncating.  This is
        what a resumed run (:mod:`repro.recovery`) needs: records
        written before the checkpoint survive and the continuation's
        records concatenate after them.
    """

    def __init__(
        self, path: str | Path, flush_every: int = 256, append: bool = False
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if append else "w"
        self._fh: IO[str] | None = self.path.open(mode, encoding="utf-8")
        self._flush_every = max(1, int(flush_every))
        self._unflushed = 0
        self.written = 0

    def __getstate__(self) -> dict[str, Any]:
        # The OS file handle cannot cross a pickle boundary.  Snapshot
        # the configuration and counters; restore reopens in *append*
        # mode so the resumed run extends the trace instead of
        # truncating what the original run already persisted.
        state = dict(self.__dict__)
        state["_fh"] = None
        state["_was_open"] = self._fh is not None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        was_open = state.pop("_was_open", False)
        self.__dict__.update(state)
        self._unflushed = 0
        if was_open:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def write(self, record: dict[str, Any]) -> None:
        """Serialize the record as one compact JSON line."""
        if self._fh is None:
            return  # closed: late stragglers are dropped, not an error
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str))
        self._fh.write("\n")
        self.written += 1
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            self._fh.flush()
            self._unflushed = 0

    def flush(self) -> None:
        """Force buffered records to disk without closing the sink."""
        if self._fh is not None:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush and close the file; later writes are dropped.

        Exception-safe: the file handle is released even if the final
        flush fails, and a second ``close`` is a no-op.  Combined with
        the context-manager protocol on :class:`TraceSink` this means a
        run that dies mid-flight still lands every record written
        before the crash — ``__exit__`` runs on the way out of the
        ``with`` block regardless of the exception.
        """
        fh = self._fh
        if fh is not None:
            self._fh = None
            try:
                fh.flush()
            finally:
                fh.close()


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace back into a list of records.

    Tolerates a truncated final line (the crash-in-progress case the
    streaming sink exists for); any other malformed line raises
    :class:`~repro.errors.TelemetryError`.
    """
    from repro.errors import TelemetryError

    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TelemetryError(f"cannot read trace {path}: {exc}") from exc
    records: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # truncated tail from an interrupted run
            raise TelemetryError(
                f"{path}:{i + 1}: malformed trace line: {exc}"
            ) from exc
    return records
