"""Order-independent aggregation of per-run results into one rollup.

A campaign produces one row per grid cell (policy × pattern × workload
× scenario × engine), and with ``--shards`` those rows arrive in
whatever order the shards finish.  :class:`CampaignRollup` collects
each run's metrics snapshot, SLO verdict, resilience scorecard, and
forecast-calibration report keyed by the cell's stable *tag*, and
serializes them with sorted keys and sorted tags so that

* adding runs in any order,
* merging partial rollups in any order (:meth:`CampaignRollup.merge`),

produce **byte-identical** JSON.  That property is what lets the
sharded campaign path emit the same rollup as a serial run — pinned by
the shard-equality tests.

Aggregates (pass counts, worst cells, campaign-wide means) are
computed *at serialization time* from the sorted rows, never
incrementally, so they cannot depend on insertion order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import TelemetryError


def _clean(value: Any) -> Any:
    """Deep-copy ``value`` into plain JSON types (dict/list/str/num)."""
    if isinstance(value, Mapping):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


def _miss_ratio(metrics: Mapping[str, Any] | None) -> float | None:
    """The run's missed-deadline ratio under either snapshot spelling
    (``missed`` in the short metrics dict, ``missed_deadline_ratio`` in
    long-form payloads)."""
    if metrics is None:
        return None
    value = metrics.get("missed", metrics.get("missed_deadline_ratio"))
    return None if value is None else float(value)


class CampaignRollup:
    """Per-tag run payloads that merge and serialize order-independently."""

    def __init__(self) -> None:
        self._runs: dict[str, dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def tags(self) -> tuple[str, ...]:
        """All cell tags, sorted."""
        return tuple(sorted(self._runs))

    def add_run(
        self,
        tag: str,
        *,
        metrics: Mapping[str, Any] | None = None,
        slo: Mapping[str, Any] | None = None,
        scorecard: Mapping[str, Any] | None = None,
        calibration: Mapping[str, Any] | None = None,
        decision_digest: str | None = None,
    ) -> None:
        """Record one run's payloads under its cell ``tag``.

        Re-adding the same tag with an identical payload is a no-op
        (shards may overlap on retries); a *different* payload for an
        existing tag raises — that would mean two runs disagreed on
        the same deterministic cell.
        """
        payload = {
            "metrics": _clean(metrics) if metrics is not None else None,
            "slo": _clean(slo) if slo is not None else None,
            "scorecard": _clean(scorecard) if scorecard is not None else None,
            "calibration": _clean(calibration) if calibration is not None else None,
            "decision_digest": decision_digest,
        }
        existing = self._runs.get(tag)
        if existing is not None:
            if existing != payload:
                raise TelemetryError(
                    f"rollup conflict for tag {tag!r}: two runs produced "
                    "different payloads for the same cell"
                )
            return
        self._runs[tag] = payload

    def merge(self, other: "CampaignRollup") -> "CampaignRollup":
        """Fold ``other``'s runs into this rollup (returns ``self``)."""
        for tag in other._runs:
            payload = other._runs[tag]
            existing = self._runs.get(tag)
            if existing is not None:
                if existing != payload:
                    raise TelemetryError(
                        f"rollup merge conflict for tag {tag!r}"
                    )
                continue
            self._runs[tag] = payload
        return self

    # -- aggregates (computed from sorted rows at read time) ----------------

    def _aggregate(self) -> dict[str, Any]:
        tags = self.tags
        n = len(tags)
        slo_pass = slo_fail = slo_absent = 0
        worst_miss: tuple[float, str] | None = None
        miss_sum = 0.0
        miss_n = 0
        alerts = 0
        for tag in tags:
            run = self._runs[tag]
            slo = run["slo"]
            if slo is None:
                slo_absent += 1
            elif slo.get("passed"):
                slo_pass += 1
            else:
                slo_fail += 1
            if slo is not None:
                alerts += len(slo.get("alerts", []))
            ratio = _miss_ratio(run["metrics"])
            if ratio is not None:
                miss_sum += ratio
                miss_n += 1
                if worst_miss is None or ratio > worst_miss[0]:
                    worst_miss = (ratio, tag)
        return {
            "n_runs": n,
            "slo": {
                "passed": slo_pass,
                "failed": slo_fail,
                "absent": slo_absent,
                "alert_transitions": alerts,
            },
            "missed_deadline_ratio": {
                "mean": (miss_sum / miss_n) if miss_n else None,
                "worst": worst_miss[0] if worst_miss else None,
                "worst_tag": worst_miss[1] if worst_miss else None,
            },
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form with sorted tags and computed aggregates."""
        return {
            "schema_version": 2,
            "kind": "campaign_rollup",
            "aggregate": self._aggregate(),
            "runs": {tag: self._runs[tag] for tag in self.tags},
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for equal run sets."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the canonical JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignRollup":
        """Rebuild a rollup from :meth:`to_dict` output."""
        runs = data.get("runs")
        if not isinstance(runs, Mapping):
            raise TelemetryError("rollup document has no 'runs' mapping")
        rollup = cls()
        for tag, payload in runs.items():
            rollup.add_run(
                str(tag),
                metrics=payload.get("metrics"),
                slo=payload.get("slo"),
                scorecard=payload.get("scorecard"),
                calibration=payload.get("calibration"),
                decision_digest=payload.get("decision_digest"),
            )
        return rollup

    @classmethod
    def load(cls, path: str | Path) -> "CampaignRollup":
        """Read a rollup JSON file written by :meth:`write`."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"cannot load rollup {path}: {exc}") from exc
        return cls.from_dict(data)

    def get(self, tag: str) -> dict[str, Any] | None:
        """One cell's payload (or ``None``)."""
        return self._runs.get(tag)

    def render(self) -> str:
        """A compact text table, one row per cell."""
        from repro.formatting import format_table

        rows = []
        for tag in self.tags:
            run = self._runs[tag]
            ratio = _miss_ratio(run["metrics"])
            slo = run["slo"]
            rows.append(
                [
                    tag,
                    "-" if ratio is None else f"{ratio:.4f}",
                    "-" if slo is None else ("PASS" if slo.get("passed") else "FAIL"),
                    "-" if slo is None else len(slo.get("alerts", [])),
                ]
            )
        agg = self._aggregate()
        return format_table(
            ["cell", "miss ratio", "slo", "alerts"],
            rows,
            title=(
                f"campaign rollup: {agg['n_runs']} run(s), "
                f"{agg['slo']['passed']} SLO pass / "
                f"{agg['slo']['failed']} fail"
            ),
        )


def merge_rollups(rollups: Iterable[CampaignRollup]) -> CampaignRollup:
    """Merge any number of partial rollups into a fresh one."""
    merged = CampaignRollup()
    for rollup in rollups:
        merged.merge(rollup)
    return merged
