"""Chrome trace-event export and trace summaries.

Converts a JSONL trace (see :mod:`repro.telemetry.sinks`) into the
Chrome trace-event JSON format, which ``chrome://tracing`` and Perfetto
load directly.  The layout mirrors the simulated machine:

* one *process* row per group — processors, the network medium, the
  resource manager, and the task's periods;
* one *thread* track per processor (jobs as duration slices, failures
  as instants), one for the shared medium (message transmissions), one
  for RM decision spans and forecast realizations.

:func:`summarize_trace` derives the quick-look numbers the ``repro
trace`` CLI prints: per-processor utilization (union of job busy
intervals), per-subtask replica counts (from decision spans), and
forecast calibration statistics (from realization records).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.formatting import format_table

_US = 1e6  # seconds -> trace-event microseconds

PID_PROCESSORS = 1
PID_NETWORK = 2
PID_RM = 3
PID_TASK = 4


def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    event: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _slice(
    name: str,
    cat: str,
    start_s: float,
    dur_s: float,
    pid: int,
    tid: int,
    args: dict[str, Any],
) -> dict[str, Any]:
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "ts": start_s * _US,
        "dur": max(dur_s, 0.0) * _US,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _instant(
    name: str, cat: str, t_s: float, pid: int, tid: int, args: dict[str, Any]
) -> dict[str, Any]:
    return {
        "ph": "i",
        "name": name,
        "cat": cat,
        "ts": t_s * _US,
        "pid": pid,
        "tid": tid,
        "s": "t",
        "args": args,
    }


def _processor_tids(records: Sequence[dict[str, Any]]) -> dict[str, int]:
    """Stable thread ids for every processor seen in the trace."""
    names = set()
    for record in records:
        if record.get("kind") != "trace":
            continue
        if record.get("cat") in ("job", "failure"):
            processor = record.get("data", {}).get("processor")
            if processor is None and record.get("cat") == "failure":
                # failure labels are "<name>.fail" / "<name>.recover"
                processor = str(record.get("label", "")).rsplit(".", 1)[0]
            if processor:
                names.add(str(processor))
    return {name: i + 1 for i, name in enumerate(sorted(names))}


def to_chrome_trace(records: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Build the Chrome trace-event document from JSONL records."""
    tids = _processor_tids(records)
    events: list[dict[str, Any]] = [
        _meta(PID_PROCESSORS, "processors"),
        _meta(PID_NETWORK, "network"),
        _meta(PID_RM, "resource manager"),
        _meta(PID_TASK, "task periods"),
        _meta(PID_NETWORK, "shared medium", tid=1),
        _meta(PID_RM, "decisions", tid=1),
        _meta(PID_TASK, "periods", tid=1),
    ]
    for name, tid in sorted(tids.items()):
        events.append(_meta(PID_PROCESSORS, name, tid=tid))
    other: dict[str, Any] = {}
    for record in records:
        events.extend(_convert(record, tids, other))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def _convert(
    record: dict[str, Any], tids: dict[str, int], other: dict[str, Any]
) -> list[dict[str, Any]]:
    kind = record.get("kind")
    t = float(record.get("t", 0.0))
    if kind == "run.meta":
        other.update({k: v for k, v in record.items() if k not in ("t", "kind")})
        return []
    if kind == "rm.span":
        end = record.get("end_t")
        dur = max(0.0, float(end) - t) if end is not None else 0.0
        args = {
            "verdicts": record.get("verdicts", []),
            "forecasts": record.get("forecasts", []),
            "actions": record.get("actions", []),
            "replicas": record.get("replicas", {}),
        }
        name = f"rm.step#{record.get('span_id')}"
        if record.get("actions"):
            name += " (acted)"
        if dur > 0.0:
            return [_slice(name, "rm", t, dur, PID_RM, 1, args)]
        return [_instant(name, "rm", t, PID_RM, 1, args)]
    if kind == "rm.forecast_realized":
        args = {k: v for k, v in record.items() if k not in ("t", "kind")}
        return [_instant("forecast.realized", "rm", t, PID_RM, 1, args)]
    if kind != "trace":
        return []  # unknown kinds pass through silently (forward compat)
    cat = record.get("cat", "")
    label = str(record.get("label", ""))
    data = record.get("data", {}) or {}
    if cat == "job":
        latency = float(data.get("latency", 0.0))
        tid = tids.get(str(data.get("processor", "")), 0)
        return [
            _slice(label, "job", t - latency, latency, PID_PROCESSORS, tid, data)
        ]
    if cat == "message":
        if label.endswith(".lost"):
            return [_instant(label, "message", t, PID_NETWORK, 1, data)]
        delay = float(data.get("total_delay", 0.0))
        return [_slice(label, "message", t - delay, delay, PID_NETWORK, 1, data)]
    if cat == "period":
        latency = data.get("latency")
        if label.endswith(".complete") and latency is not None:
            return [
                _slice(
                    label, "period", t - float(latency), float(latency),
                    PID_TASK, 1, data,
                )
            ]
        return [_instant(label, "period", t, PID_TASK, 1, data)]
    if cat == "failure":
        processor = label.rsplit(".", 1)[0]
        tid = tids.get(processor, 0)
        return [_instant(label, "failure", t, PID_PROCESSORS, tid, data)]
    if cat == "rm":
        return [_instant(label, "rm", t, PID_RM, 1, data)]
    return []  # "event" and other firehose categories stay out of the view


def write_chrome_trace(
    records: Sequence[dict[str, Any]], path: str | Path
) -> Path:
    """Convert ``records`` and write the Chrome trace JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(records)))
    return path


# -- summaries -------------------------------------------------------------


def _merged_busy(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    total = 0.0
    current_start: float | None = None
    current_end = 0.0
    for start, end in sorted(intervals):
        if current_start is None or start > current_end:
            if current_start is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        total += current_end - current_start
    return total


def processor_utilization(
    records: Sequence[dict[str, Any]], horizon: float | None = None
) -> dict[str, float]:
    """Busy fraction per processor from job slices in the trace.

    A processor is busy exactly while it has >= 1 active job, so the
    union of ``[completion - latency, completion]`` job intervals over
    the horizon reproduces the meter's busy fraction.
    """
    intervals: dict[str, list[tuple[float, float]]] = {}
    t_max = 0.0
    for record in records:
        t = float(record.get("t", 0.0))
        t_max = max(t_max, t)
        if record.get("kind") != "trace" or record.get("cat") != "job":
            continue
        data = record.get("data", {}) or {}
        processor = str(data.get("processor", ""))
        latency = float(data.get("latency", 0.0))
        intervals.setdefault(processor, []).append((t - latency, t))
    span = horizon if horizon and horizon > 0.0 else t_max
    if span <= 0.0:
        return {name: 0.0 for name in intervals}
    return {
        name: min(1.0, _merged_busy(ivs) / span)
        for name, ivs in sorted(intervals.items())
    }


def replica_counts(
    records: Sequence[dict[str, Any]],
) -> dict[int, dict[str, float]]:
    """Per-subtask replica statistics from the decision spans.

    Returns ``{subtask: {"mean": ..., "max": ..., "final": ...}}`` over
    every ``rm.span`` record (mean is over spans, i.e. per RM step).
    """
    series: dict[int, list[int]] = {}
    for record in records:
        if record.get("kind") != "rm.span":
            continue
        for subtask, count in record.get("replicas", {}).items():
            series.setdefault(int(subtask), []).append(int(count))
    return {
        subtask: {
            "mean": sum(counts) / len(counts),
            "max": float(max(counts)),
            "final": float(counts[-1]),
        }
        for subtask, counts in sorted(series.items())
    }


def forecast_stats(records: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Calibration statistics from ``rm.forecast_realized`` records."""
    errors: list[float] = []
    apes: list[float] = []
    evaluations = 0
    for record in records:
        if record.get("kind") == "rm.span":
            evaluations += len(record.get("forecasts", []))
        if record.get("kind") != "rm.forecast_realized":
            continue
        error = float(record["error_s"])
        observed = float(record["observed_s"])
        errors.append(error)
        apes.append(abs(error) / max(observed, 1e-9))
    n = len(errors)
    return {
        "n_realized": float(n),
        "n_evaluations": float(evaluations),
        "mape": sum(apes) / n if n else 0.0,
        "mean_error_s": sum(errors) / n if n else 0.0,
        "pessimism_rate": (
            sum(1 for e in errors if e >= 0.0) / n if n else 0.0
        ),
    }


def run_meta(records: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """The merged ``run.meta`` context of a trace (empty if absent)."""
    out: dict[str, Any] = {}
    for record in records:
        if record.get("kind") == "run.meta":
            out.update(
                {k: v for k, v in record.items() if k not in ("t", "kind")}
            )
    return out


def summarize_trace(records: Sequence[dict[str, Any]]) -> str:
    """Render the ``repro trace`` summary tables from JSONL records."""
    meta = run_meta(records)
    horizon = meta.get("horizon")
    sections: list[str] = []
    if meta:
        sections.append(
            format_table(
                ["key", "value"],
                sorted(meta.items()),
                title="run",
            )
        )
    utilization = processor_utilization(
        records, horizon=float(horizon) if horizon is not None else None
    )
    if utilization:
        sections.append(
            format_table(
                ["processor", "utilization"],
                [[name, value] for name, value in utilization.items()],
                title="per-processor utilization (busy fraction)",
            )
        )
    replicas = replica_counts(records)
    if replicas:
        sections.append(
            format_table(
                ["subtask", "mean replicas", "max", "final"],
                [
                    [subtask, stats["mean"], int(stats["max"]), int(stats["final"])]
                    for subtask, stats in replicas.items()
                ],
                title="per-subtask replica counts (over RM steps)",
            )
        )
    stats = forecast_stats(records)
    sections.append(
        format_table(
            ["statistic", "value"],
            [
                ["forecast evaluations", int(stats["n_evaluations"])],
                ["realized forecasts", int(stats["n_realized"])],
                ["MAPE", stats["mape"]],
                ["mean signed error (s)", stats["mean_error_s"]],
                ["pessimism rate", stats["pessimism_rate"]],
            ],
            title="forecast calibration",
        )
    )
    return "\n\n".join(sections)


def iter_kinds(records: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Record counts by kind/category (diagnostic helper)."""
    counts: dict[str, int] = {}
    for record in records:
        key = str(record.get("kind", "?"))
        if key == "trace":
            key = f"trace.{record.get('cat', '?')}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))
