"""Self-contained, deterministic HTML health report (``repro report``).

:func:`render_report` turns one run's observability payloads — metrics
snapshot, :class:`~repro.telemetry.slo.SloReport`, profiler summary,
calibration report, resilience scorecard, and optionally a campaign
rollup — into a single HTML file with zero external resources: styles
are inlined, burn-rate sparklines are inline SVG polylines, and there
are **no timestamps, hostnames, or random ids** anywhere in the
output.  For a fixed seed the bytes are reproducible, which is pinned
by a digest test and is what makes the report diffable in CI
artifacts.

Float formatting is ``%.6g`` throughout; every iteration is over
sorted keys.  Wall-clock numbers (profiler seconds) are only included
when the caller passes them explicitly via a non-deterministic
profiler summary — the default report shows calls/event counts only.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Mapping, Sequence

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1c2733; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #d7dee6; padding-bottom: .4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e4e9ee; }
th { background: #f2f5f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pass { color: #1a7f37; font-weight: 600; }
.fail { color: #b42318; font-weight: 600; }
.muted { color: #6b7a89; }
svg.spark { vertical-align: middle; }
code { background: #f2f5f8; padding: .1rem .3rem; border-radius: 3px; }
""".strip()


def _fmt(value: Any) -> str:
    """Render one cell: ``%.6g`` for floats, str otherwise."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "-"
    return str(value)


class _Html(str):
    """A string that is already HTML and must not be escaped again.

    Only fragments built by this module (badges, sparklines) are wrapped;
    plain strings from run payloads always go through :func:`_esc`.
    """


def _esc(value: Any) -> str:
    return html.escape(_fmt(value), quote=True)


def _table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    numeric: Sequence[int] = (),
) -> str:
    """An HTML table; columns in ``numeric`` get right alignment."""
    out = ["<table><thead><tr>"]
    out.extend(f"<th>{_esc(h)}</th>" for h in headers)
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="num"' if i in numeric else ""
            if isinstance(cell, _Html):
                out.append(f"<td{cls}>{cell}</td>")  # pre-rendered fragment
            else:
                out.append(f"<td{cls}>{_esc(cell)}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def _verdict_badge(passed: bool) -> _Html:
    if passed:
        return _Html('<span class="pass">PASS</span>')
    return _Html('<span class="fail">FAIL</span>')


def sparkline(
    points: Sequence[Sequence[float]],
    threshold: float | None = None,
    width: int = 140,
    height: int = 28,
) -> str:
    """Inline SVG polyline of ``(t, value)`` points.

    The y-axis spans 0..max(value, threshold); the threshold, when
    given, is drawn as a dashed reference line.  Coordinates are
    rounded to 2 decimals so the markup is deterministic.
    """
    if not points:
        return _Html('<span class="muted">no data</span>')
    ts = [float(p[0]) for p in points]
    vs = [float(p[1]) for p in points]
    t_lo, t_hi = min(ts), max(ts)
    v_hi = max(max(vs), threshold or 0.0, 1e-12)
    t_span = (t_hi - t_lo) or 1.0

    def x(t: float) -> float:
        return round((t - t_lo) / t_span * (width - 2) + 1, 2)

    def y(v: float) -> float:
        return round(height - 1 - (v / v_hi) * (height - 2), 2)

    path = " ".join(f"{x(t)},{y(v)}" for t, v in zip(ts, vs))
    parts = [
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    if threshold is not None:
        ty = y(threshold)
        parts.append(
            f'<line x1="1" y1="{ty}" x2="{width - 1}" y2="{ty}" '
            'stroke="#b42318" stroke-width="1" stroke-dasharray="3,2"/>'
        )
    parts.append(
        f'<polyline points="{path}" fill="none" stroke="#31708f" '
        'stroke-width="1.2"/>'
    )
    parts.append("</svg>")
    return _Html("".join(parts))


def _section_meta(meta: Mapping[str, Any]) -> str:
    rows = [[key, meta[key]] for key in sorted(meta)]
    return "<h2>Run</h2>" + _table(["parameter", "value"], rows)


def _section_metrics(metrics: Mapping[str, Any]) -> str:
    rows = [[key, metrics[key]] for key in sorted(metrics)]
    return "<h2>Metrics</h2>" + _table(
        ["metric", "value"], rows, numeric=(1,)
    )


def _section_slo(slo: Mapping[str, Any]) -> str:
    verdicts = slo.get("verdicts", [])
    rows = []
    for v in verdicts:
        rows.append(
            [
                v["name"],
                v["signal"],
                v["objective"],
                v["observed"],
                v["n_events"],
                v["alerts_fired"],
                sparkline(v.get("burn_history", []), threshold=2.0),
                _verdict_badge(bool(v["passed"])),
            ]
        )
    parts = [
        "<h2>SLOs "
        + _verdict_badge(bool(slo.get("passed")))
        + "</h2>",
        _table(
            ["slo", "signal", "objective", "observed", "events",
             "alerts", "burn rate", "verdict"],
            rows,
            numeric=(2, 3, 4, 5),
        ),
    ]
    alerts = slo.get("alerts", [])
    if alerts:
        alert_rows = [
            [a["t"], a["rule"], a["state"], a["burn_short"], a["burn_long"]]
            for a in alerts
        ]
        parts.append("<h3>Alert transitions</h3>")
        parts.append(
            _table(
                ["sim time", "slo", "state", "burn (short)", "burn (long)"],
                alert_rows,
                numeric=(0, 3, 4),
            )
        )
    return "".join(parts)


def _section_profile(profile: Mapping[str, Any]) -> str:
    regions = profile.get("regions", [])
    deterministic = bool(profile.get("deterministic", True))
    headers = ["region", "calls", "events"]
    numeric = [1, 2]
    if not deterministic:
        headers += ["wall s", "self s"]
        numeric += [3, 4]
    rows = []
    for region in regions:
        row: list[Any] = [region["name"], region["calls"], region["events"]]
        if not deterministic:
            row += [region.get("wall_s"), region.get("self_wall_s")]
        rows.append(row)
    note = (
        '<p class="muted">Deterministic view: call and event counts only. '
        "Pass <code>--wall</code> to include host wall-clock times "
        "(non-reproducible).</p>"
        if deterministic
        else ""
    )
    return "<h2>Profile</h2>" + note + _table(headers, rows, numeric=tuple(numeric))


def _section_calibration(calibration: Mapping[str, Any]) -> str:
    rows = [[key, calibration[key]] for key in sorted(calibration)]
    return "<h2>Forecast calibration</h2>" + _table(
        ["statistic", "value"], rows, numeric=(1,)
    )


def _section_scorecard(scorecard: Mapping[str, Any]) -> str:
    rows = [[key, scorecard[key]] for key in sorted(scorecard)]
    return "<h2>Resilience scorecard</h2>" + _table(
        ["statistic", "value"], rows, numeric=(1,)
    )


def _section_rollup(rollup: Mapping[str, Any]) -> str:
    runs = rollup.get("runs", {})
    agg = rollup.get("aggregate", {})
    rows = []
    for tag in sorted(runs):
        run = runs[tag]
        metrics = run.get("metrics") or {}
        slo = run.get("slo")
        rows.append(
            [
                tag,
                metrics.get("missed", metrics.get("missed_deadline_ratio")),
                metrics.get("combined"),
                "-" if slo is None else _verdict_badge(bool(slo.get("passed"))),
                "-" if slo is None else len(slo.get("alerts", [])),
            ]
        )
    slo_agg = agg.get("slo", {})
    summary = (
        f'<p>{agg.get("n_runs", len(runs))} run(s): '
        f'<span class="pass">{slo_agg.get("passed", 0)} SLO pass</span>, '
        f'<span class="fail">{slo_agg.get("failed", 0)} fail</span>, '
        f'{slo_agg.get("absent", 0)} without SLOs.</p>'
    )
    return (
        "<h2>Campaign rollup</h2>"
        + summary
        + _table(
            ["cell", "miss ratio", "combined", "slo", "alerts"],
            rows,
            numeric=(1, 2, 4),
        )
    )


def render_report(
    *,
    meta: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    slo: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
    calibration: Mapping[str, Any] | None = None,
    scorecard: Mapping[str, Any] | None = None,
    rollup: Mapping[str, Any] | None = None,
    title: str = "repro health report",
) -> str:
    """Render the payloads into one self-contained HTML document.

    Every argument is the ``as_dict()`` / ``to_dict()`` form of the
    corresponding object; ``None`` sections are omitted.  Output is a
    pure function of the inputs — no timestamps, no randomness.
    """
    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    if slo is not None:
        overall = _verdict_badge(bool(slo.get("passed")))
        body.append(f"<p>Overall SLO verdict: {overall}</p>")
    if meta:
        body.append(_section_meta(meta))
    if metrics:
        body.append(_section_metrics(metrics))
    if slo is not None:
        body.append(_section_slo(slo))
    if profile is not None:
        body.append(_section_profile(profile))
    if calibration:
        body.append(_section_calibration(calibration))
    if scorecard:
        body.append(_section_scorecard(scorecard))
    if rollup is not None:
        body.append(_section_rollup(rollup))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_report(path: str | Path, **kwargs: Any) -> Path:
    """Render and write the report to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_report(**kwargs), encoding="utf-8")
    return path
