"""Declarative SLOs over live telemetry streams, with burn-rate alerts.

Raw metrics say what happened; an SLO says whether that was *okay*.  A
:class:`SloRule` declares an objective over one of the named signals
(deadline miss-rate, availability, forecast calibration error,
placement-decision latency, message loss) and the :class:`SloEngine`
evaluates every rule continuously in **simulation time** as the
:class:`~repro.telemetry.hub.TelemetryHub` feeds it events.

Evaluation follows the SRE multi-window burn-rate recipe: each rule
watches a short and a long trailing window, the *burn rate* is the
window's error consumption relative to the rule's error budget
(``1.0`` = exactly on budget), and an alert fires only when **both**
windows burn faster than the rule's threshold — the short window gives
fast detection, the long window suppresses blips.  Alerts are emitted
into the trace as structured ``slo.alert`` records (``firing`` /
``resolved`` transitions) and the engine publishes ``slo.*`` gauges so
breaches show up next to the raw metrics in every export.

Everything here is deterministic: evaluation points are simulation
times (the RM decision cadence), never the host clock.  The only
wall-clock signal, ``placement_latency``, takes its observations from
the opt-in :class:`~repro.telemetry.profile.RunProfiler` and is not in
:data:`DEFAULT_SLO_RULES` precisely so the default reports stay
bit-reproducible.

Rules can be built in code or loaded from a TOML document::

    [[slo.rules]]
    name = "miss-rate"
    signal = "deadline_miss_rate"
    objective = 0.02
    windows = [5.0, 20.0]
    burn_rate_threshold = 2.0
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.errors import TelemetryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricsRegistry

#: Signal catalogue: ``kind`` decides both the event payload and the
#: pass direction.  ``max_ratio`` signals track a bad-event fraction
#: that must stay at or below the objective; ``min_ratio`` signals track
#: a good-event fraction that must stay at or above it; ``max_value``
#: signals track a numeric stream whose mean must stay at or below it.
SIGNALS: dict[str, str] = {
    "deadline_miss_rate": "max_ratio",
    "availability": "min_ratio",
    "forecast_calibration_error": "max_ratio",
    "message_loss_rate": "max_ratio",
    "placement_latency": "max_value",
}

#: Points kept per rule for burn-rate sparklines (one per evaluation).
MAX_BURN_POINTS = 4096


@dataclass(frozen=True)
class SloRule:
    """One declarative objective over a named telemetry signal.

    Attributes
    ----------
    name:
        Stable identifier (used in gauges, alerts, and reports).
    signal:
        One of :data:`SIGNALS`.
    objective:
        The target: maximum bad fraction (``max_ratio``), minimum good
        fraction (``min_ratio``), or maximum mean value (``max_value``).
    windows:
        ``(short, long)`` trailing windows in simulation seconds for
        burn-rate evaluation.
    burn_rate_threshold:
        Both windows must burn at or above this multiple of the error
        budget for an alert to fire (1.0 = exactly on budget).
    tolerance:
        Signal-specific knob: for ``forecast_calibration_error`` the
        absolute-percentage-error above which one forecast counts as
        badly calibrated.
    description:
        Free-form context for reports.
    """

    name: str
    signal: str
    objective: float
    windows: tuple[float, float] = (5.0, 20.0)
    burn_rate_threshold: float = 2.0
    tolerance: float = 0.5
    description: str = ""

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise TelemetryError(
                f"SLO rule {self.name!r}: unknown signal {self.signal!r}; "
                f"expected one of {', '.join(sorted(SIGNALS))}"
            )
        if not self.name:
            raise TelemetryError("SLO rule name must be non-empty")
        kind = SIGNALS[self.signal]
        if kind in ("max_ratio", "min_ratio") and not 0.0 <= self.objective <= 1.0:
            raise TelemetryError(
                f"SLO rule {self.name!r}: ratio objective must be in "
                f"[0, 1], got {self.objective}"
            )
        if kind == "max_value" and self.objective <= 0.0:
            raise TelemetryError(
                f"SLO rule {self.name!r}: value objective must be "
                f"positive, got {self.objective}"
            )
        short, long = self.windows
        if not 0.0 < short <= long:
            raise TelemetryError(
                f"SLO rule {self.name!r}: windows must satisfy "
                f"0 < short <= long, got {self.windows}"
            )
        if self.burn_rate_threshold <= 0.0:
            raise TelemetryError(
                f"SLO rule {self.name!r}: burn_rate_threshold must be "
                f"positive, got {self.burn_rate_threshold}"
            )

    @property
    def kind(self) -> str:
        """The signal's evaluation kind (see :data:`SIGNALS`)."""
        return SIGNALS[self.signal]

    @property
    def error_budget(self) -> float:
        """The per-event error budget the burn rate is measured against."""
        if self.kind == "min_ratio":
            return 1.0 - self.objective
        return self.objective


#: The deterministic default rule set (`repro slo` / `repro report`).
#: Windows are sized for the paper's 60-period (60 s) baseline runs.
DEFAULT_SLO_RULES: tuple[SloRule, ...] = (
    SloRule(
        name="deadline-miss-rate",
        signal="deadline_miss_rate",
        objective=0.02,
        windows=(5.0, 20.0),
        burn_rate_threshold=2.0,
        description="at most 2% of released periods may miss their deadline",
    ),
    SloRule(
        name="availability",
        signal="availability",
        objective=0.98,
        windows=(5.0, 20.0),
        burn_rate_threshold=2.0,
        description="at least 98% of released periods complete on time",
    ),
    SloRule(
        name="forecast-calibration",
        signal="forecast_calibration_error",
        objective=0.25,
        windows=(10.0, 30.0),
        burn_rate_threshold=2.0,
        tolerance=0.5,
        description="at most 25% of realized forecasts off by more than 50%",
    ),
    SloRule(
        name="message-loss",
        signal="message_loss_rate",
        objective=0.05,
        windows=(5.0, 20.0),
        burn_rate_threshold=2.0,
        description="at most 5% of network messages dropped after retries",
    ),
)


def load_slo_rules(source: str | Path | Mapping[str, Any]) -> tuple[SloRule, ...]:
    """Load rules from a TOML file/text or an already-parsed mapping.

    The document carries an ``[slo]`` table with a ``rules`` array (see
    the module docstring); a bare top-level ``rules`` array is also
    accepted.  Unknown keys in a rule entry raise
    :class:`~repro.errors.TelemetryError` (a typo would otherwise
    silently weaken an objective).
    """
    if isinstance(source, Mapping):
        data: Mapping[str, Any] = source
    else:
        import tomllib

        if isinstance(source, Path) or (
            "\n" not in str(source) and str(source).endswith(".toml")
        ):
            path = Path(source)
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise TelemetryError(f"cannot read SLO rules {path}: {exc}") from exc
        else:
            text = str(source)
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise TelemetryError(f"malformed SLO TOML: {exc}") from exc
    entries = data.get("slo", data).get("rules") if "slo" in data else data.get("rules")
    if not entries:
        raise TelemetryError("SLO document has no [[slo.rules]] entries")
    known = {
        "name", "signal", "objective", "windows", "burn_rate_threshold",
        "tolerance", "description",
    }
    rules: list[SloRule] = []
    for entry in entries:
        unknown = sorted(set(entry) - known)
        if unknown:
            raise TelemetryError(
                f"SLO rule entry has unknown key(s) {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        kwargs = dict(entry)
        if "windows" in kwargs:
            kwargs["windows"] = tuple(float(w) for w in kwargs["windows"])
        rules.append(SloRule(**kwargs))
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise TelemetryError(f"duplicate SLO rule names in {sorted(names)}")
    return tuple(rules)


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert transition (``firing`` or ``resolved``)."""

    time: float
    rule: str
    state: str  # "firing" | "resolved"
    burn_short: float
    burn_long: float

    def as_record(self) -> dict[str, Any]:
        """The structured trace record for this transition."""
        return {
            "t": self.time,
            "kind": "slo.alert",
            "rule": self.rule,
            "state": self.state,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
        }


@dataclass(frozen=True)
class SloVerdict:
    """One rule's end-of-run outcome."""

    rule: SloRule
    observed: float
    n_events: int
    passed: bool
    alerts_fired: int
    worst_burn: float
    #: ``(time, long-window burn rate)`` per evaluation — the report's
    #: sparkline series.
    burn_history: tuple[tuple[float, float], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {
            "name": self.rule.name,
            "signal": self.rule.signal,
            "objective": self.rule.objective,
            "observed": self.observed,
            "n_events": self.n_events,
            "passed": self.passed,
            "alerts_fired": self.alerts_fired,
            "worst_burn": self.worst_burn,
            "burn_history": [[t, b] for t, b in self.burn_history],
        }


@dataclass(frozen=True)
class SloReport:
    """Every rule's verdict plus the run's alert log."""

    verdicts: tuple[SloVerdict, ...]
    alerts: tuple[SloAlert, ...] = ()

    @property
    def passed(self) -> bool:
        """Whether every rule met its objective."""
        return all(v.passed for v in self.verdicts)

    @property
    def breaches(self) -> tuple[SloVerdict, ...]:
        """The failing verdicts."""
        return tuple(v for v in self.verdicts if not v.passed)

    @property
    def exit_code(self) -> int:
        """CI-friendly exit code: 0 when every objective held, else 1."""
        return 0 if self.passed else 1

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {
            "passed": self.passed,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "alerts": [a.as_record() for a in self.alerts],
        }

    def render(self) -> str:
        """A compact text table (the ``repro slo`` output)."""
        from repro.formatting import format_table

        rows = [
            [
                v.rule.name,
                v.rule.signal,
                f"{v.rule.objective:.6g}",
                f"{v.observed:.6g}",
                v.n_events,
                v.alerts_fired,
                f"{v.worst_burn:.3g}",
                "PASS" if v.passed else "FAIL",
            ]
            for v in self.verdicts
        ]
        return format_table(
            ["slo", "signal", "objective", "observed", "events",
             "alerts", "worst burn", "verdict"],
            rows,
            title=f"SLO report: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.breaches)} breach(es), {len(self.alerts)} "
            "alert transition(s))",
        )


class _RuleState:
    """Mutable evaluation state for one rule (ring buffers + totals)."""

    __slots__ = (
        "rule", "kind", "budget", "events", "short_events",
        "w_short", "w_long", "total", "bad_total",
        "value_sum", "alerts_fired", "worst_burn", "active",
        "burn_history", "gauges",
    )

    def __init__(self, rule: SloRule) -> None:
        self.rule = rule
        # The rule's derived properties, flattened: record() and the
        # burn computations run on the RM decision cadence.
        self.kind = rule.kind
        self.budget = rule.error_budget
        #: ``(time, weight)`` — weight is 1.0 for a bad event / the
        #: observed value, 0.0 for a good event.  Good events still
        #: occupy a slot: window fractions need the denominator.
        #: ``events`` spans the long window; ``short_events`` mirrors
        #: the short-window tail so both burn rates come from running
        #: sums instead of a rescan per evaluation (event counts are
        #: the deque lengths).  Weights are 0/1 for the ratio signals,
        #: so the running sums stay exact under add/subtract.
        self.events: deque[tuple[float, float]] = deque()
        self.short_events: deque[tuple[float, float]] = deque()
        self.w_short = 0.0
        self.w_long = 0.0
        self.total = 0
        self.bad_total = 0.0
        self.value_sum = 0.0
        self.alerts_fired = 0
        self.worst_burn = 0.0
        self.active = False
        self.burn_history: deque[tuple[float, float]] = deque(
            maxlen=MAX_BURN_POINTS
        )
        #: Cached ``slo.*`` gauge handles, filled on first evaluation —
        #: per-evaluation registry lookups are too hot for the RM cadence.
        self.gauges: tuple[Any, ...] | None = None

    def record(self, now: float, weight: float) -> None:
        item = (now, weight)
        self.events.append(item)
        self.short_events.append(item)
        self.w_short += weight
        self.w_long += weight
        self.total += 1
        if self.kind == "max_value":
            self.value_sum += weight
        else:
            self.bad_total += weight

    def _burn(self, n: int, weight: float) -> float:
        if n == 0:
            return 0.0
        observed = weight / n
        budget = self.budget
        if budget <= 0.0:
            return float("inf") if observed > 0.0 else 0.0
        return observed / budget

    def _window_burns(self, now: float) -> tuple[float, float]:
        """Both windows' burn rates from the running sums.

        Evicts aged-out events first; amortized O(1) per evaluation
        (each event is evicted from each window exactly once).
        """
        short, long_ = self.rule.windows
        cutoff_short = now - short
        cutoff_long = now - long_
        short_events = self.short_events
        w_short = self.w_short
        while short_events and short_events[0][0] < cutoff_short:
            w_short -= short_events.popleft()[1]
        self.w_short = w_short
        events = self.events
        w_long = self.w_long
        while events and events[0][0] < cutoff_long:
            w_long -= events.popleft()[1]
        self.w_long = w_long
        return (
            self._burn(len(short_events), w_short),
            self._burn(len(events), w_long),
        )

    def prune(self, now: float) -> None:
        """Drop events older than the long window (ring-buffer bound)."""
        cutoff = now - self.rule.windows[1]
        events = self.events
        while events and events[0][0] < cutoff:
            self.w_long -= events.popleft()[1]

    @property
    def observed(self) -> float:
        """The whole-run observation the final verdict compares."""
        if self.total == 0:
            # No events: a min-ratio signal vacuously holds at 1.0,
            # the max-type signals at 0.0.
            return 1.0 if self.kind == "min_ratio" else 0.0
        if self.kind == "max_value":
            return self.value_sum / self.total
        bad_fraction = self.bad_total / self.total
        if self.kind == "min_ratio":
            return 1.0 - bad_fraction
        return bad_fraction

    @property
    def passed(self) -> bool:
        if self.kind == "min_ratio":
            return self.observed >= self.rule.objective
        return self.observed <= self.rule.objective


class SloEngine:
    """Evaluates a rule set against the hub's event stream in sim time.

    Parameters
    ----------
    rules:
        The declarative objectives (defaults to
        :data:`DEFAULT_SLO_RULES`).
    registry:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`
        receiving ``slo.*`` gauges at every evaluation point.
    emit:
        Optional sink callback (the hub's ``emit``) receiving
        structured ``slo.alert`` records on alert transitions.
    """

    def __init__(
        self,
        rules: Iterable[SloRule] | None = None,
        registry: "MetricsRegistry | None" = None,
        emit: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        rule_list = tuple(rules) if rules is not None else DEFAULT_SLO_RULES
        if not rule_list:
            raise TelemetryError("SloEngine needs at least one rule")
        names = [rule.name for rule in rule_list]
        if len(set(names)) != len(names):
            raise TelemetryError(f"duplicate SLO rule names in {sorted(names)}")
        self.rules = rule_list
        self.registry = registry
        self.emit = emit
        self._states = {rule.name: _RuleState(rule) for rule in rule_list}
        self._by_signal: dict[str, list[_RuleState]] = {}
        for state in self._states.values():
            self._by_signal.setdefault(state.rule.signal, []).append(state)
        # The hot feed paths run per message / per period, so resolve
        # each signal's state list once instead of per event.
        self._period_states = tuple(
            self._by_signal.get("deadline_miss_rate", [])
            + self._by_signal.get("availability", [])
        )
        self._forecast_states = tuple(
            self._by_signal.get("forecast_calibration_error", [])
        )
        self._loss_states = tuple(self._by_signal.get("message_loss_rate", []))
        self._latency_states = tuple(self._by_signal.get("placement_latency", []))
        self._all_states = tuple(self._states.values())
        self.alerts: list[SloAlert] = []

    # -- signal feeds (called by the hub) -----------------------------------

    def on_period(self, now: float, missed: bool) -> None:
        """One released period finished (missed covers aborts too)."""
        bad = 1.0 if missed else 0.0
        for state in self._period_states:
            state.record(now, bad)

    def on_forecast_realized(self, now: float, ape: float) -> None:
        """One Figure 5 forecast paired with its realized latency."""
        for state in self._forecast_states:
            state.record(now, 1.0 if ape > state.rule.tolerance else 0.0)

    def on_message(self, now: float, dropped: bool) -> None:
        """One network message resolved (delivered or dropped)."""
        weight = 1.0 if dropped else 0.0
        for state in self._loss_states:
            state.record(now, weight)

    def on_decision_latency(self, now: float, wall_s: float) -> None:
        """Host wall-time of one RM decision (profiler-fed, opt-in)."""
        for state in self._latency_states:
            state.record(now, wall_s)

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, now: float) -> None:
        """One burn-rate pass over every rule (the RM decision cadence).

        Window eviction happens inside ``_window_burns``, so the pass
        is amortized O(1) per rule; gauges are written through cached
        handles (``Gauge.set`` is pure value storage).
        """
        registry = self.registry
        for state in self._all_states:
            rule = state.rule
            burn_short, burn_long = state._window_burns(now)
            state.burn_history.append((now, burn_long))
            # Both-windows criterion: the lower burn is the binding one.
            worst = burn_short if burn_short < burn_long else burn_long
            if worst > state.worst_burn:
                state.worst_burn = worst
            firing = worst >= rule.burn_rate_threshold
            if firing and not state.active:
                state.active = True
                state.alerts_fired += 1
                self._transition(now, state, "firing", burn_short, burn_long)
            elif not firing and state.active:
                state.active = False
                self._transition(now, state, "resolved", burn_short, burn_long)
            if registry is not None:
                if state.gauges is None:
                    labels = {"slo": rule.name}
                    state.gauges = (
                        registry.gauge("slo.observed", labels),
                        registry.gauge("slo.burn_short", labels),
                        registry.gauge("slo.burn_long", labels),
                        registry.gauge("slo.ok", labels),
                    )
                g_observed, g_short, g_long, g_ok = state.gauges
                observed = state.observed
                if state.kind == "min_ratio":
                    ok = observed >= rule.objective
                else:
                    ok = observed <= rule.objective
                g_observed.value = observed
                g_short.value = burn_short
                g_long.value = burn_long
                g_ok.value = 1.0 if ok else 0.0

    def _transition(
        self,
        now: float,
        state: _RuleState,
        transition: str,
        burn_short: float,
        burn_long: float,
    ) -> None:
        alert = SloAlert(
            time=now,
            rule=state.rule.name,
            state=transition,
            burn_short=burn_short,
            burn_long=burn_long,
        )
        self.alerts.append(alert)
        if self.registry is not None:
            self.registry.counter(
                "slo.alert_transitions", {"slo": state.rule.name}
            ).inc()
        if self.emit is not None:
            self.emit(alert.as_record())

    # -- the final verdict --------------------------------------------------

    def report(self) -> SloReport:
        """Freeze every rule's whole-run verdict into a report."""
        verdicts = tuple(
            SloVerdict(
                rule=state.rule,
                observed=state.observed,
                n_events=state.total,
                passed=state.passed,
                alerts_fired=state.alerts_fired,
                worst_burn=state.worst_burn,
                burn_history=tuple(state.burn_history),
            )
            for state in self._states.values()
        )
        return SloReport(verdicts=verdicts, alerts=tuple(self.alerts))
