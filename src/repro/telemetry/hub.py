"""The telemetry hub: one facade over metrics, spans, and sinks.

Instrumented components (engine, processors, network, executor, RM
loop) hold a :class:`TelemetryHub` and guard every call site with the
cheap ``hub.enabled`` class attribute — the exact pattern the engine's
hot loop already uses for :class:`~repro.sim.trace.NullTracer`.  The
default :data:`NULL_TELEMETRY` singleton has ``enabled = False``, so an
uninstrumented run pays one attribute read and a falsy branch per
*instrumentation site*, never per event.

The hub deliberately takes duck-typed simulation objects (period
records, monitor reports, RM events) rather than importing the layers
that define them: ``repro.telemetry`` sits next to the foundation
modules in the layering contract and must stay importable from
``sim``/``cluster``/``runtime``/``core`` without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import TraceSink
from repro.telemetry.spans import DecisionSpan, ForecastEval, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.profile import RunProfiler
    from repro.telemetry.slo import SloEngine, SloRule

#: Buckets for signed forecast errors (seconds; negative = optimistic).
FORECAST_ERROR_BUCKETS: tuple[float, ...] = (
    -1.0, -0.5, -0.25, -0.1, -0.05, -0.01, 0.0,
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class TelemetryHub:
    """Aggregates a metrics registry, a span recorder, and a trace sink.

    Parameters
    ----------
    sink:
        Streaming destination for span/realization records (``None``
        keeps metrics and spans in memory only).
    max_spans:
        Completed decision spans retained in memory.
    """

    #: Class attribute so the guard is one LOAD_ATTR, no property call.
    enabled: bool = True

    def __init__(
        self, sink: TraceSink | None = None, max_spans: int = 4096
    ) -> None:
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(max_spans=max_spans)
        self.sink = sink
        #: Largest simulation time any instrumentation call has seen —
        #: the default snapshot/export timestamp.
        self.now = 0.0
        #: Optional consumers armed per run (see :meth:`arm_slo` /
        #: :meth:`arm_profiler`); instrumentation treats ``None`` as off.
        self.slo: SloEngine | None = None
        self.profiler: RunProfiler | None = None
        # Pre-resolved profiler handle for the per-message hot path
        # (set by arm_profiler; None keeps the path free when unarmed).
        self._msg_stat: Any | None = None

    # -- plumbing -----------------------------------------------------------

    def emit(self, record: dict[str, Any]) -> None:
        """Forward one trace record to the sink, if any."""
        if self.sink is not None:
            self.sink.write(record)

    def close(self) -> None:
        """Close any dangling span and flush the sink."""
        span = self.spans.end(self.now)
        if span is not None:
            self.emit(span.as_record())
        if self.sink is not None:
            self.sink.close()

    def _tick(self, now: float) -> None:
        if now > self.now:
            self.now = now

    # -- optional consumers --------------------------------------------------

    def arm_slo(self, rules: "Iterable[SloRule] | None" = None) -> "SloEngine":
        """Attach an SLO engine fed by this hub's event stream.

        The engine shares the hub's registry (``slo.*`` gauges) and
        sink (``slo.alert`` records); its burn-rate evaluation runs at
        every :meth:`end_decision` — the RM cadence, in sim time.
        """
        from repro.telemetry.slo import SloEngine

        self.slo = SloEngine(rules, registry=self.registry, emit=self.emit)
        return self.slo

    def arm_profiler(self) -> "RunProfiler":
        """Attach a :class:`~repro.telemetry.profile.RunProfiler`."""
        from repro.telemetry.profile import RunProfiler

        self.profiler = RunProfiler()
        self._msg_stat = self.profiler.counter("net.message")
        return self.profiler

    # -- run-level context ---------------------------------------------------

    def set_run_meta(self, **meta: Any) -> None:
        """Emit run-level context (policy, pattern, horizon, ...)."""
        self.emit({"t": 0.0, "kind": "run.meta", **meta})

    # -- engine -------------------------------------------------------------

    def on_engine_run(self, now: float, executed: int) -> None:
        """Account a finished ``run``/``run_until`` batch (not per event)."""
        self._tick(now)
        self.registry.counter("sim.events_executed").inc(executed)
        self.registry.gauge("sim.time").set(now)

    # -- cluster ------------------------------------------------------------

    def on_job_complete(
        self, now: float, processor: str, kind: str, demand: float, latency: float
    ) -> None:
        """Account one completed CPU job."""
        self._tick(now)
        labels = {"processor": processor}
        self.registry.counter("proc.jobs_completed", labels).inc()
        self.registry.histogram("proc.job_latency_seconds", labels).observe(
            latency
        )

    def on_message_delivered(
        self, now: float, wire_bytes: float, buffer_delay: float, total_delay: float
    ) -> None:
        """Account one delivered network message."""
        self._tick(now)
        self.registry.counter("net.messages_delivered").inc()
        self.registry.counter("net.bytes_delivered").inc(wire_bytes)
        self.registry.histogram("net.message_delay_seconds").observe(total_delay)
        self.registry.histogram("net.buffer_delay_seconds").observe(buffer_delay)
        if self._msg_stat is not None:
            self._msg_stat.events += 1
        if self.slo is not None:
            self.slo.on_message(now, dropped=False)

    def on_message_lost(self, now: float) -> None:
        """Account one lost transmission (retry pending)."""
        self._tick(now)
        self.registry.counter("net.messages_lost").inc()

    def on_message_dropped(self, now: float) -> None:
        """Account one message abandoned after exhausting its retries."""
        self._tick(now)
        self.registry.counter("net.messages_dropped").inc()
        if self._msg_stat is not None:
            self._msg_stat.events += 1
        if self.slo is not None:
            self.slo.on_message(now, dropped=True)

    # -- runtime ------------------------------------------------------------

    def on_period_complete(self, now: float, record: Any) -> None:
        """Account a finished period and realize matching forecasts.

        ``record`` is a duck-typed
        :class:`~repro.runtime.records.PeriodRecord`.
        """
        self._tick(now)
        self.registry.counter("task.periods_completed").inc()
        if record.missed:
            self.registry.counter("task.periods_missed").inc()
        if self.slo is not None:
            self.slo.on_period(now, missed=bool(record.missed))
        latency = record.latency
        if latency is not None:
            self.registry.histogram("task.period_latency_seconds").observe(
                latency
            )
        for stage in record.stages:
            stage_latency = stage.stage_latency
            if stage_latency is None:
                continue
            for forecast in self.spans.realize(
                stage.subtask_index, stage.replica_count, stage_latency
            ):
                self._record_realization(now, record.period_index, forecast)

    def on_period_abort(self, now: float, record: Any) -> None:
        """Account a period shed by the overload watchdog."""
        self._tick(now)
        self.registry.counter("task.periods_aborted").inc()
        self.registry.counter("task.periods_missed").inc()
        if self.slo is not None:
            self.slo.on_period(now, missed=True)

    def _record_realization(
        self, now: float, period_index: int, forecast: ForecastEval
    ) -> None:
        error = forecast.error_s
        if error is None:  # pragma: no cover - realize() always sets it
            return
        if self.slo is not None:
            realized = forecast.realized_s
            if realized:
                self.slo.on_forecast_realized(now, abs(error) / realized)
        self.registry.histogram(
            "rm.forecast_error_seconds", buckets=FORECAST_ERROR_BUCKETS
        ).observe(error)
        self.emit(
            {
                "t": now,
                "kind": "rm.forecast_realized",
                "period": period_index,
                "subtask": forecast.subtask_index,
                "replicas": forecast.replica_count,
                "forecast_s": forecast.forecast_s,
                "observed_s": forecast.realized_s,
                "error_s": error,
            }
        )

    # -- the RM decision cycle ----------------------------------------------

    def begin_decision(self, now: float) -> DecisionSpan:
        """Open the span for one manager step."""
        self._tick(now)
        self.registry.counter("rm.steps").inc()
        return self.spans.begin(now)

    def on_monitor_report(self, now: float, report: Any) -> None:
        """Attach a monitor pass's verdicts (duck-typed MonitorReport)."""
        self._tick(now)
        span = self.spans.current
        for verdict in report.verdicts:
            action = verdict.action.value
            self.registry.counter("rm.verdicts", {"action": action}).inc()
            if span is not None:
                span.verdicts.append(
                    {
                        "subtask": verdict.subtask_index,
                        "action": action,
                        "mean_stage_latency": verdict.mean_stage_latency,
                        "budget": verdict.budget,
                        "slack": verdict.slack,
                        "overdue": verdict.overdue,
                    }
                )

    def on_forecast(
        self,
        now: float,
        subtask_index: int,
        replica_count: int,
        forecast_s: float,
        threshold_s: float,
        accepted: bool,
    ) -> ForecastEval:
        """Record one Figure 5 forecast evaluation (one growth step)."""
        self._tick(now)
        self.registry.counter("rm.forecast_evaluations").inc()
        forecast = ForecastEval(
            subtask_index=subtask_index,
            replica_count=replica_count,
            forecast_s=forecast_s,
            threshold_s=threshold_s,
            accepted=accepted,
        )
        span = self.spans.current
        if span is not None:
            span.forecasts.append(forecast)
        if accepted:
            self.spans.await_realization(forecast)
        return forecast

    def on_index_stats(self, now: float, stats: dict[str, int]) -> None:
        """Export the utilization index's operation counters.

        ``stats`` are the cumulative counters of
        :class:`repro.cluster.index.IndexStats` (argmin/threshold
        queries, re-keys, heap pops, meter reads, refreshes, parks),
        published as ``cluster.index.*`` gauges so a regression in index
        efficiency — e.g. meter reads creeping back toward P per query —
        is visible in existing dashboards.
        """
        self._tick(now)
        for name, value in stats.items():
            self.registry.gauge(f"cluster.index.{name}").set(value)

    def on_cluster_utilization(self, now: float, min_u: float, name: str) -> None:
        """Record the least-utilized processor seen by a monitor pass."""
        self._tick(now)
        self.registry.gauge("cluster.min_utilization").set(min_u)
        self.registry.counter(
            "cluster.min_utilization_samples", {"processor": name}
        ).inc()

    def on_breaker_state(self, now: float, state: str, trips: int) -> None:
        """Export the forecast circuit breaker's state (hardened loop).

        ``rm.breaker_open`` is 1 while the breaker is open (fallback
        policy active), 0 when closed or half-open; ``rm.breaker_trips``
        is the cumulative trip count.
        """
        self._tick(now)
        self.registry.gauge("rm.breaker_open").set(
            1.0 if state == "open" else 0.0
        )
        self.registry.gauge("rm.breaker_trips").set(trips)

    def on_fault_injected(self, now: float, kind: str, target: str) -> None:
        """Account one chaos fault injection (by fault kind)."""
        self._tick(now)
        self.registry.counter("chaos.faults_injected", {"kind": kind}).inc()

    def end_decision(self, now: float, event: Any) -> DecisionSpan | None:
        """Close the step's span from its RMEvent and stream it out."""
        self._tick(now)
        span = self.spans.current
        if span is None:
            return None
        for outcome in event.outcomes:
            if outcome.changed:
                span.actions.append(
                    {
                        "kind": "replicate",
                        "subtask": outcome.subtask_index,
                        "processors": list(outcome.added_processors),
                        "success": outcome.success,
                        "forecast_s": outcome.forecast_latency,
                    }
                )
        for subtask_index, processor in event.shutdowns:
            span.actions.append(
                {
                    "kind": "shutdown",
                    "subtask": subtask_index,
                    "processors": [processor],
                }
            )
        for subtask_index, dead, target in event.recoveries:
            span.actions.append(
                {
                    "kind": "recovery",
                    "subtask": subtask_index,
                    "processors": [dead, target or "evicted"],
                }
            )
        span.replicas = {
            subtask: len(processors)
            for subtask, processors in sorted(event.placement.items())
        }
        if span.acted:
            self.registry.counter("rm.actions").inc()
        self.registry.time_gauge("rm.replicas_total").set(
            now, event.total_replicas
        )
        closed = self.spans.end(now)
        if closed is not None:
            self.emit(closed.as_record())
        if self.slo is not None:
            self.slo.evaluate(now)
        return closed


class NullTelemetry(TelemetryHub):
    """The disabled hub: every call is a no-op behind ``enabled=False``.

    Instrumentation sites must check ``enabled`` before calling in —
    the overrides below are a second line of defence for call sites
    that cannot afford the branch asymmetry, not an invitation to skip
    the guard.
    """

    enabled = False

    def __reduce__(self) -> str:
        # Pickle as a reference to the module-level singleton: engine
        # hot loops compare ``telemetry.enabled`` on the shared default
        # hub, and a run snapshot must restore to the *same* object, not
        # a copy carrying fresh registries.
        return "NULL_TELEMETRY"

    def emit(self, record: dict[str, Any]) -> None:
        """Drop the record."""
        return

    def on_engine_run(self, now: float, executed: int) -> None:
        """Drop the engine-run accounting."""
        return

    def on_job_complete(
        self, now: float, processor: str, kind: str, demand: float, latency: float
    ) -> None:
        """Drop the job completion."""
        return

    def on_message_delivered(
        self, now: float, wire_bytes: float, buffer_delay: float, total_delay: float
    ) -> None:
        """Drop the message delivery."""
        return

    def on_message_lost(self, now: float) -> None:
        """Drop the message loss."""
        return

    def on_message_dropped(self, now: float) -> None:
        """Drop the message-drop accounting."""
        return

    def on_period_complete(self, now: float, record: Any) -> None:
        """Drop the period completion."""
        return

    def on_period_abort(self, now: float, record: Any) -> None:
        """Drop the period abort."""
        return

    def on_index_stats(self, now: float, stats: dict[str, int]) -> None:
        """Drop the index counters."""
        return

    def on_cluster_utilization(self, now: float, min_u: float, name: str) -> None:
        """Drop the cluster utilization sample."""
        return

    def on_breaker_state(self, now: float, state: str, trips: int) -> None:
        """Drop the breaker state."""
        return

    def on_fault_injected(self, now: float, kind: str, target: str) -> None:
        """Drop the fault injection."""
        return


#: Shared disabled hub — the default for every engine/system.
NULL_TELEMETRY = NullTelemetry()
