"""Decision-cycle spans: one RM monitoring pass as a structured object.

The paper's adaptation loop (§4.1, Figure 1) is monitor → forecast →
act; a :class:`DecisionSpan` captures one whole cycle — the monitor's
verdicts, every Figure 5 forecast evaluated while growing a replica set,
the placement/shutdown actions taken, and the replica map after the
step.  Forecasts are additionally registered as *pending* so that when
the next period completes under the new placement, the realized stage
latency is attached — making predicted-vs-observed calibration a
first-class trace artefact instead of a post-hoc join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ForecastEval:
    """One Figure 5 forecast evaluation (one replica-set growth step).

    Attributes
    ----------
    subtask_index:
        The replicated subtask.
    replica_count:
        ``|PS(st)|`` at the moment of the forecast.
    forecast_s:
        The worst per-replica ``eex + ecd`` forecast.
    threshold_s:
        The budget-minus-slack bar the forecast was compared against.
    accepted:
        Whether this forecast satisfied the bar (ended the growth loop).
    realized_s:
        Stage latency later observed under this placement (attached when
        the next period completes; ``None`` until then or if the
        placement changed first).
    """

    subtask_index: int
    replica_count: int
    forecast_s: float
    threshold_s: float
    accepted: bool = False
    realized_s: float | None = None

    @property
    def error_s(self) -> float | None:
        """Signed forecast error (positive = pessimistic), if realized."""
        if self.realized_s is None:
            return None
        return self.forecast_s - self.realized_s

    def as_dict(self) -> dict[str, Any]:
        """The forecast as a JSON-ready dict."""
        return {
            "subtask": self.subtask_index,
            "replicas": self.replica_count,
            "forecast_s": self.forecast_s,
            "threshold_s": self.threshold_s,
            "accepted": self.accepted,
            "realized_s": self.realized_s,
        }


@dataclass
class DecisionSpan:
    """One manager step: verdicts → forecasts → actions, queryable."""

    span_id: int
    start_time: float
    end_time: float | None = None
    #: Monitor verdicts: ``{subtask, action, slack, budget, overdue}``.
    verdicts: list[dict[str, Any]] = field(default_factory=list)
    forecasts: list[ForecastEval] = field(default_factory=list)
    #: Actions: ``{kind: replicate|shutdown|recovery, subtask, processors}``.
    actions: list[dict[str, Any]] = field(default_factory=list)
    #: Replica count per subtask after the step.
    replicas: dict[int, int] = field(default_factory=dict)

    @property
    def acted(self) -> bool:
        """Whether this cycle changed the placement."""
        return bool(self.actions)

    def as_record(self) -> dict[str, Any]:
        """The span as a JSONL trace record."""
        return {
            "t": self.start_time,
            "kind": "rm.span",
            "span_id": self.span_id,
            "end_t": self.end_time,
            "verdicts": list(self.verdicts),
            "forecasts": [f.as_dict() for f in self.forecasts],
            "actions": list(self.actions),
            "replicas": {str(k): v for k, v in sorted(self.replicas.items())},
        }


class SpanRecorder:
    """Builds spans and tracks forecasts awaiting realization.

    Parameters
    ----------
    max_spans:
        Completed spans kept in memory (oldest dropped beyond it); the
        sink received every span regardless, so nothing is lost on disk.
    """

    def __init__(self, max_spans: int = 4096) -> None:
        self._next_id = 0
        self._max = int(max_spans)
        self.current: DecisionSpan | None = None
        self.completed: list[DecisionSpan] = []
        #: Accepted forecasts waiting for a completed period to confirm.
        self.pending: list[ForecastEval] = []

    def begin(self, time: float) -> DecisionSpan:
        """Open a new span (implicitly closing a dangling one)."""
        if self.current is not None:
            self.end(self.current.start_time)
        self._next_id += 1
        self.current = DecisionSpan(span_id=self._next_id, start_time=time)
        return self.current

    def end(self, time: float) -> DecisionSpan | None:
        """Close the open span and archive it; returns it (or ``None``)."""
        span = self.current
        if span is None:
            return None
        span.end_time = time
        self.completed.append(span)
        if len(self.completed) > self._max:
            del self.completed[0]
        self.current = None
        return span

    def await_realization(self, forecast: ForecastEval) -> None:
        """Register an accepted forecast for predicted-vs-realized pairing."""
        self.pending.append(forecast)
        if len(self.pending) > self._max:
            del self.pending[0]

    def realize(
        self, subtask_index: int, replica_count: int, observed_s: float
    ) -> list[ForecastEval]:
        """Attach an observed stage latency to matching pending forecasts.

        A pending forecast matches when the stage ran with the replica
        count the forecast was made for; a mismatching replica count
        means the placement changed first, so the forecast is stale and
        dropped.  Returns the forecasts realized by this observation.
        """
        realized: list[ForecastEval] = []
        keep: list[ForecastEval] = []
        for forecast in self.pending:
            if forecast.subtask_index != subtask_index:
                keep.append(forecast)
            elif forecast.replica_count == replica_count:
                forecast.realized_s = observed_s
                realized.append(forecast)
            # else: stale (placement changed) — drop silently
        self.pending = keep
        return realized

    def forecast_errors(self) -> list[float]:
        """Signed errors of every realized forecast in archived spans."""
        out = []
        for span in self.completed:
            for forecast in span.forecasts:
                error = forecast.error_s
                if error is not None:
                    out.append(error)
        return out
