"""Concurrency-safety lint: the process-pool worker surface (CONC-*).

Campaign sharding and the parallel job pool re-run the same code inside
worker processes, and the repo's core guarantee — sharded == serial,
byte for byte — holds only if worker-reachable code neither accumulates
cross-run state nor draws from undisciplined RNG streams.  These rules
machine-check that contract over the bounded call graph rooted at the
declared entry points (``[concurrency] entry_points`` in
``layering.toml``):

``CONC-GLOBAL-MUT``
    A worker-reachable function mutates module-level state (rebinding a
    ``global``, writing ``X[k] = v`` / ``X.attr = v``, or calling a
    mutating method on a module-level container).  Worker state diverges
    from the parent's and, with pool reuse, from run to run.
``CONC-RNG-FACTORY``
    A worker-reachable function constructs a generator
    (``np.random.default_rng``, ``RngRegistry``) outside the sanctioned
    factory modules (``[concurrency] rng_factories``).  Ad-hoc
    generators bypass the master-seed derivation scheme.
``CONC-RNG-STREAM``
    A ``registry.stream("name")`` call whose literal stream name matches
    none of the declared prefixes (``[concurrency] streams``) — an
    undeclared stream silently collides with or forks from the
    experiment streams.
``CONC-PAYLOAD``
    An engine/sink/telemetry object (``[concurrency] unpicklable``)
    passed into the pool surface (``JobSpec``, ``map_jobs``,
    ``run_sharded``, ``submit``) — those objects either fail to pickle
    or smuggle a parent-process view across the process boundary.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import qualified_name
from repro.analysis.callgraph import CallGraph, format_path
from repro.analysis.layering import LayeringContract
from repro.analysis.model import Rule, Violation
from repro.analysis.project import FunctionInfo, ProjectModel

RULES = (
    Rule(
        "CONC-GLOBAL-MUT",
        "worker-reachable code must not mutate module-level state",
        "a worker's module state diverges from the parent's; with pool "
        "reuse it leaks between runs, breaking sharded == serial",
    ),
    Rule(
        "CONC-RNG-FACTORY",
        "worker-reachable code constructs RNGs only in sanctioned factories",
        "an ad-hoc generator bypasses the master-seed derivation scheme, "
        "decoupling worker randomness from the experiment seed",
    ),
    Rule(
        "CONC-RNG-STREAM",
        "stream names must match a declared prefix",
        "an undeclared stream name silently collides with or forks from "
        "the seeded experiment/chaos streams",
    ),
    Rule(
        "CONC-PAYLOAD",
        "no engines/sinks/telemetry objects in pool payloads",
        "these objects are unpicklable or carry parent-process state "
        "that must not cross the process boundary",
    ),
)

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: Call names whose arguments become process-pool payloads (kept in
#: sync with the PCK-* pass).
POOL_SURFACE = frozenset({"JobSpec", "map_jobs", "run_sharded", "submit"})

#: Names bound by generator construction (CONC-RNG-FACTORY).
_RNG_CONSTRUCTORS = ("numpy.random.default_rng", "RngRegistry")


def check_project(
    project: ProjectModel, graph: CallGraph, contract: LayeringContract
) -> list[Violation]:
    """Run every CONC rule over the project."""
    violations: list[Violation] = []
    reachable = graph.reachable_from(contract.entry_points)
    for qname in sorted(reachable):
        info = project.functions[qname]
        path = reachable[qname]
        violations.extend(_check_global_mut(project, info, path))
        violations.extend(_check_rng(project, info, path, contract))
    for info in project.modules.values():
        violations.extend(_check_payloads(project, info.module, contract))
    return violations


# -- CONC-GLOBAL-MUT ------------------------------------------------------------


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally anywhere inside ``node`` (params, stores)."""
    names: set[str] = set()
    args = node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        names.add(arg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if child is not node:
                names.add(child.name)
        elif isinstance(child, ast.Global):
            names.difference_update(child.names)
    return names


def _global_decls(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            out.update(child.names)
    return out


def _base_name(expr: ast.expr) -> ast.Name | None:
    """Innermost ``Name`` of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr if isinstance(expr, ast.Name) else None


def _check_global_mut(
    project: ProjectModel, info: FunctionInfo, path: tuple[str, ...]
) -> list[Violation]:
    node = info.node
    local = _local_names(node)
    declared_global = _global_decls(node)
    module_globals = project.module_globals.get(info.module, set())
    aliases = project.aliases.get(info.module, {})
    flagged: dict[tuple[str, int], Violation] = {}

    def flag(site: ast.AST, name: str) -> None:
        # One violation per mutation site, so line-based suppressions
        # stay stable as unrelated code moves.
        key = (name, site.lineno)
        if key in flagged:
            return
        flagged[key] = Violation(
            "CONC-GLOBAL-MUT",
            project.modules[info.module].path,
            site.lineno,
            site.col_offset,
            f"`{info.name}` mutates module-level `{name}` on a worker "
            f"path ({format_path(path)})",
            "thread the state through parameters/return values, or "
            "justify a per-process cache with `# repro: noqa "
            "CONC-GLOBAL-MUT`",
        )

    def check_target(target: ast.expr, site: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                flag(site, target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                check_target(elt, site)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = _base_name(target)
            if base is None:
                return
            if base.id in local:
                return
            if base.id in module_globals:
                flag(site, base.id)
                return
            # Mutation through an imported module: `mod.GLOBAL[k] = v`.
            owner = aliases.get(base.id)
            if owner in project.module_globals and isinstance(
                target.value, ast.Attribute
            ):
                if target.value.attr in project.module_globals[owner]:
                    flag(site, f"{owner}.{target.value.attr}")

    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                check_target(target, child)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            check_target(child.target, child)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                check_target(target, child)
        elif isinstance(child, ast.Call):
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                base = _base_name(func.value)
                if (
                    base is not None
                    and base.id not in local
                    and base.id in module_globals
                ):
                    flag(child, base.id)
    return [flagged[key] for key in sorted(flagged)]


# -- CONC-RNG-* -----------------------------------------------------------------


def _check_rng(
    project: ProjectModel,
    info: FunctionInfo,
    path: tuple[str, ...],
    contract: LayeringContract,
) -> list[Violation]:
    if info.module in contract.rng_factories:
        return []
    aliases = project.aliases.get(info.module, {})
    module_path = project.modules[info.module].path
    violations: list[Violation] = []
    for child in ast.walk(info.node):
        if not isinstance(child, ast.Call):
            continue
        qname = qualified_name(child.func, aliases)
        is_factory = qname is not None and (
            qname == "numpy.random.default_rng"
            or qname == "RngRegistry"
            or (qname.startswith("repro.") and qname.endswith(".RngRegistry"))
        )
        if is_factory:
            violations.append(
                Violation(
                    "CONC-RNG-FACTORY",
                    module_path,
                    child.lineno,
                    child.col_offset,
                    f"`{info.name}` constructs a generator via `{qname}` "
                    f"on a worker path ({format_path(path)})",
                    "take an rng stream from the caller, or justify a "
                    "config-seeded private stream with `# repro: noqa "
                    "CONC-RNG-FACTORY`",
                )
            )
            continue
        func = child.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "stream"
            and len(child.args) == 1
            and not child.keywords
        ):
            name = _literal_stream_prefix(child.args[0])
            if name is None:
                continue
            if not any(name.startswith(prefix) for prefix in contract.streams):
                violations.append(
                    Violation(
                        "CONC-RNG-STREAM",
                        module_path,
                        child.lineno,
                        child.col_offset,
                        f"stream name `{name}` matches no declared prefix "
                        f"({', '.join(contract.streams) or 'none declared'})",
                        "declare the stream prefix in [concurrency] "
                        "streams in layering.toml",
                    )
                )
    return violations


def _literal_stream_prefix(expr: ast.expr) -> str | None:
    """The statically-known leading text of a stream-name argument."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr) and expr.values:
        first = expr.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


# -- CONC-PAYLOAD ---------------------------------------------------------------


def _check_payloads(
    project: ProjectModel, module: str, contract: LayeringContract
) -> list[Violation]:
    if not contract.unpicklable:
        return []
    info = project.modules[module]
    violations: list[Violation] = []
    for scope in ast.walk(info.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Local flow: names assigned from an unpicklable constructor.
        tainted: set[str] = set()
        for child in ast.walk(scope):
            if isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Call
            ):
                ctor = _bare_callee(child.value.func)
                if ctor in contract.unpicklable:
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
        for child in ast.walk(scope):
            if not isinstance(child, ast.Call):
                continue
            callee = _bare_callee(child.func)
            if callee not in POOL_SURFACE:
                continue
            for arg in (*child.args, *[kw.value for kw in child.keywords]):
                bad: str | None = None
                if isinstance(arg, ast.Call):
                    ctor = _bare_callee(arg.func)
                    if ctor in contract.unpicklable:
                        bad = f"{ctor}(...)"
                elif isinstance(arg, ast.Name) and arg.id in tainted:
                    bad = arg.id
                if bad is not None:
                    violations.append(
                        Violation(
                            "CONC-PAYLOAD",
                            info.path,
                            arg.lineno,
                            arg.col_offset,
                            f"`{bad}` flows into `{callee}` — engines/"
                            "sinks must not cross the process boundary",
                            "pass a picklable descriptor and rebuild the "
                            "object inside the worker",
                        )
                    )
    return violations


def _bare_callee(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
