"""Determinism lint: no ambient entropy or wall-clock time in sim code.

The parallel campaign runner guarantees bit-identical parallel-vs-serial
results, and the paper's predictive policy (eqs. 3, 5-6) is only
reproducible when every stochastic draw flows through the seeded
:class:`repro.sim.rng.RngRegistry` streams and simulation time never
mixes with host time.  These rules make the convention machine-checked:

``DET-TIME``
    Wall-clock reads (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...) inside simulation-scoped packages.
``DET-RNG-GLOBAL``
    Process-global RNG state: the stdlib :mod:`random` module or the
    legacy ``numpy.random.*`` functions (``rand``, ``seed``, ...).
``DET-RNG-SEED``
    ``np.random.default_rng()`` with no seed or a literal seed.  A
    literal decouples the stream from the experiment master seed (the
    ``cluster/clock.py`` bug this rule was written for); pass a
    ``sim.rng`` stream or a caller-provided seed/Generator instead.
``DET-SET-ITER``
    Iteration over an unordered ``set``/``frozenset`` expression.  Hash
    randomization makes the visit order vary between processes; wrap in
    ``sorted(...)`` to pin it.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import alias_map, qualified_name
from repro.analysis.model import ModuleInfo, Rule, Violation

RULES = (
    Rule(
        "DET-TIME",
        "no wall-clock time in simulation code",
        "simulated time comes from the engine; host time injects "
        "measurement noise that breaks run-to-run reproducibility",
    ),
    Rule(
        "DET-RNG-GLOBAL",
        "no process-global RNG (stdlib random / legacy numpy.random)",
        "global RNG state is shared across subsystems, so one extra draw "
        "anywhere perturbs every other stream",
    ),
    Rule(
        "DET-RNG-SEED",
        "default_rng must take a caller-provided seed or stream",
        "an unseeded or literal-seeded generator is decoupled from the "
        "experiment master seed, silently correlating or fixing streams",
    ),
    Rule(
        "DET-SET-ITER",
        "no iteration over unordered sets",
        "set order varies with hash randomization across processes, "
        "changing event order and therefore results",
    ),
)

#: Packages whose modules must be deterministic (the simulation path and
#: the worker code it runs under).
SCOPED_PACKAGES = frozenset(
    {"sim", "cluster", "runtime", "tasks", "workloads", "parallel"}
)

#: The sanctioned stream API itself — the one place allowed to construct
#: generators from seeds.
WHITELISTED_MODULES = frozenset({"repro.sim.rng"})

_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

_ENTROPY = ("os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.")

#: numpy.random attributes that do NOT touch the legacy global state.
_NUMPY_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "Philox", "SFC64", "MT19937"}
)

_SET_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})


def in_scope(info: ModuleInfo) -> bool:
    """Whether the determinism rules apply to this module."""
    return (
        info.package() in SCOPED_PACKAGES
        and info.module not in WHITELISTED_MODULES
    )


def check(info: ModuleInfo) -> list[Violation]:
    """Run the determinism rules over one module."""
    if not in_scope(info):
        return []
    aliases = alias_map(info.tree)
    violations: list[Violation] = []
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            violations.extend(_check_import(info, node))
        elif isinstance(node, ast.Call):
            violations.extend(_check_call(info, node, aliases))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_unordered_set(node.iter, aliases):
                violations.append(_set_iter(info, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                if _is_unordered_set(gen.iter, aliases):
                    violations.append(_set_iter(info, gen.iter))
    return violations


def _check_import(
    info: ModuleInfo, node: ast.Import | ast.ImportFrom
) -> list[Violation]:
    names = []
    if isinstance(node, ast.Import):
        names = [alias.name for alias in node.names]
    elif node.module is not None and node.level == 0:
        names = [node.module]
    out = []
    for name in names:
        if name == "random" or name.startswith("random."):
            out.append(
                Violation(
                    "DET-RNG-GLOBAL",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "stdlib `random` uses hidden process-global state",
                    "draw from a repro.sim.rng.RngRegistry stream instead",
                )
            )
        if name == "secrets":
            out.append(
                Violation(
                    "DET-RNG-GLOBAL",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "`secrets` is OS entropy, unreproducible by design",
                    "draw from a repro.sim.rng.RngRegistry stream instead",
                )
            )
    return out


def _check_call(
    info: ModuleInfo, node: ast.Call, aliases: dict[str, str]
) -> list[Violation]:
    qname = qualified_name(node.func, aliases)
    if qname is None:
        return []
    if qname in _WALL_CLOCK:
        return [
            Violation(
                "DET-TIME",
                info.path,
                node.lineno,
                node.col_offset,
                f"wall-clock read `{qname}` in simulation-scoped code",
                "use engine.now for simulated time; suppress with "
                "`# repro: noqa DET-TIME` for host-side accounting",
            )
        ]
    if qname.startswith(_ENTROPY):
        return [
            Violation(
                "DET-RNG-GLOBAL",
                info.path,
                node.lineno,
                node.col_offset,
                f"`{qname}` draws OS entropy",
                "derive randomness from the experiment seed via sim.rng",
            )
        ]
    if qname.startswith("random."):
        return [
            Violation(
                "DET-RNG-GLOBAL",
                info.path,
                node.lineno,
                node.col_offset,
                f"stdlib global-state RNG call `{qname}`",
                "draw from a repro.sim.rng.RngRegistry stream instead",
            )
        ]
    if qname == "numpy.random.default_rng":
        return _check_default_rng(info, node)
    if qname.startswith("numpy.random."):
        attr = qname.split(".")[2]
        if attr not in _NUMPY_RANDOM_OK:
            return [
                Violation(
                    "DET-RNG-GLOBAL",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"legacy numpy global-state RNG call `{qname}`",
                    "use a Generator from a sim.rng stream instead",
                )
            ]
    return []


def _check_default_rng(info: ModuleInfo, node: ast.Call) -> list[Violation]:
    if not node.args and not node.keywords:
        return [
            Violation(
                "DET-RNG-SEED",
                info.path,
                node.lineno,
                node.col_offset,
                "`default_rng()` without a seed is entropy-seeded",
                "accept an rng/seed parameter or take a sim.rng stream",
            )
        ]
    seed = node.args[0] if node.args else node.keywords[0].value
    if isinstance(seed, ast.Constant):
        return [
            Violation(
                "DET-RNG-SEED",
                info.path,
                node.lineno,
                node.col_offset,
                f"`default_rng({seed.value!r})` hard-codes the seed, "
                "decoupling this stream from the experiment master seed",
                "accept an rng/seed parameter or take a sim.rng stream",
            )
        ]
    return []


def _is_unordered_set(expr: ast.expr, aliases: dict[str, str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        qname = qualified_name(expr.func, aliases)
        if qname in ("set", "frozenset"):
            return True
        # list(set(...)) etc. leak the unordered order one level up.
        if qname in _SET_WRAPPERS and expr.args:
            return _is_unordered_set(expr.args[0], aliases)
    return False


def _set_iter(info: ModuleInfo, expr: ast.expr) -> Violation:
    return Violation(
        "DET-SET-ITER",
        info.path,
        expr.lineno,
        expr.col_offset,
        "iteration over an unordered set expression",
        "wrap in sorted(...) to pin a deterministic order",
    )
