"""Data model of the static-analysis suite: rules, violations, modules.

A *rule* is a named invariant with a stable id (``DET-TIME``,
``LAY-DAG``, ...).  A *violation* is one concrete breach of a rule at a
``file:line``.  A :class:`ModuleInfo` bundles everything a lint pass
needs to inspect one module — path, dotted module name, source text and
parsed AST — so passes stay pure functions of their input and are
trivially testable against synthetic sources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Rule:
    """One enforced invariant.

    Attributes
    ----------
    rule_id:
        Stable identifier used in reports and suppression comments.
    title:
        One-line statement of the invariant.
    rationale:
        Why the invariant is load-bearing for the reproduction.
    """

    rule_id: str
    title: str
    rationale: str


@dataclass(frozen=True)
class Violation:
    """One breach of a rule, pointing at ``file:line``.

    ``hint`` tells the author how to fix the breach (or how to suppress
    it with ``# repro: noqa RULE-ID`` when the flagged construct is
    deliberate).
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self) -> str:
        """``file:line:col: RULE-ID message (hint)``, the text format."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (the ``--format json`` row)."""
        return {
            "rule": self.rule_id,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class ModuleInfo:
    """One parsed module, ready for lint passes.

    Attributes
    ----------
    path:
        Filesystem path (as given; kept relative when the caller passed
        a relative root so reports are stable across machines).
    module:
        Dotted module name, e.g. ``repro.cluster.clock``.  Scoped rules
        key off this, so synthetic test trees only need a ``repro/``
        directory to be linted exactly like the real package.
    source:
        Full source text.
    tree:
        The parsed AST.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    _lines: list[str] = field(default_factory=list, repr=False)

    @property
    def lines(self) -> list[str]:
        """Source split into physical lines (cached, 1-indexed via [n-1])."""
        if not self._lines:
            self._lines = self.source.splitlines()
        return self._lines

    def package(self) -> str:
        """Second dotted component (``repro.cluster.clock`` → ``cluster``).

        Top-level modules (``repro.units``) return their own name
        (``units``); modules outside ``repro`` return ``""`` so scoped
        rules skip them.
        """
        parts = self.module.split(".")
        if not parts or parts[0] != "repro":
            return ""
        if len(parts) == 1:
            return ""
        return parts[1]


def module_name_for(path: Path) -> str:
    """Derive the dotted module name of ``path`` from its ``repro`` anchor.

    The *last* path component named ``repro`` is taken as the package
    root, so both ``src/repro/sim/engine.py`` and a synthetic test tree
    ``/tmp/x/repro/sim/engine.py`` map to ``repro.sim.engine``.  Files
    outside any ``repro`` directory fall back to their stem.
    """
    parts = path.with_suffix("").parts
    anchor = None
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
    if anchor is None:
        return path.stem
    dotted = list(parts[anchor:])
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def load_module(path: Path, display_path: str | None = None) -> ModuleInfo:
    """Read and parse one file into a :class:`ModuleInfo`.

    Raises :class:`~repro.errors.AnalysisError` when the file cannot be
    read or parsed — a lint run must not silently skip broken inputs.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return ModuleInfo(
        path=display_path if display_path is not None else str(path),
        module=module_name_for(path),
        source=source,
        tree=tree,
    )


def parse_source(source: str, module: str, path: str = "<string>") -> ModuleInfo:
    """Parse in-memory source as ``module`` (the unit-test entry point)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return ModuleInfo(path=path, module=module, source=source, tree=tree)
