"""Bounded call graph over a :class:`~repro.analysis.project.ProjectModel`.

The CONC-* passes need one question answered: *can this function run
inside a process-pool worker?*  :class:`CallGraph` approximates the
answer with a reachability query from the contract's declared entry
points (``repro.parallel.jobs.run_job``, ``run_shard``) over edges
built from three bounded resolution strategies:

1. **Qualified calls/references** — ``run_job(spec)``,
   ``jobs.run_job``, ``from x import f; f()`` resolve through the
   module's import bindings to a unique definition.  A bare *reference*
   (a function passed as a callback) counts as an edge too: the
   simulation engine executes scheduled callbacks, so a reachable
   reference is a reachable call.
2. **Constructor calls** — ``SomeClass(...)`` edges into ``__init__``
   and ``__post_init__`` (dataclasses), since instantiating a class on
   a worker path runs those bodies there.
3. **Name-matched method calls** — ``obj.m(...)`` where ``obj`` cannot
   be typed statically edges into *every* project method named ``m``,
   except names on the builtin-container skip list (``get``, ``items``,
   ``append``, ...), which would connect everything to everything.

Strategy 3 over-approximates (it may mark a method reachable that never
runs on a worker) and under-approximates only for methods whose names
collide with builtin container methods — both limits are deliberate,
bounded, and pinned by ``tests/analysis/test_callgraph.py``.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import qualified_name
from repro.analysis.project import FunctionInfo, ProjectModel

#: Method names shared with builtin containers/strings/files: matching
#: these by name would link virtually every function to every class.
#: Project methods with these names are resolved only through strategy
#: 1 (a documented limit of the bounded graph).
SKIP_METHOD_NAMES = frozenset({
    "add", "append", "appendleft", "clear", "close", "copy", "count",
    "discard", "encode", "endswith", "extend", "find", "flush", "format",
    "get", "index", "insert", "intersection", "items", "join", "keys",
    "lower", "lstrip", "pop", "popitem", "popleft", "read", "readline",
    "remove", "replace", "reverse", "rstrip", "setdefault", "sort",
    "split", "splitlines", "startswith", "strip", "union", "update",
    "upper", "values", "write",
})

#: Constructor-adjacent methods run by instantiation itself.
_INIT_METHODS = ("__init__", "__post_init__")


class CallGraph:
    """Edges between project functions plus reachability queries."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        #: ``caller qname -> callee qnames``.
        self.edges: dict[str, set[str]] = {}
        for info in project.functions.values():
            self.edges[info.qname] = self._edges_of(info)

    # -- edge construction --------------------------------------------------

    def _edges_of(self, info: FunctionInfo) -> set[str]:
        project = self.project
        aliases = project.aliases.get(info.module, {})
        out: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            qname = qualified_name(node, aliases)
            if qname is not None:
                resolved = project.resolve(info.module, qname)
                if resolved is not None:
                    self._add_resolved(out, resolved)
                    continue
            if isinstance(node, ast.Attribute):
                # Strategy 3: untyped method reference, matched by name.
                name = node.attr
                if name in SKIP_METHOD_NAMES:
                    continue
                for method in project.methods_by_name.get(name, ()):
                    out.add(method.qname)
        out.discard(info.qname)
        return out

    def _add_resolved(self, out: set[str], resolved: str) -> None:
        project = self.project
        if resolved in project.classes:
            cls = project.classes[resolved]
            for method_name in _INIT_METHODS:
                method = cls.methods.get(method_name)
                if method is not None:
                    out.add(method.qname)
            return
        if resolved in project.functions:
            out.add(resolved)

    # -- reachability -------------------------------------------------------

    def reachable_from(
        self, entry_points: tuple[str, ...]
    ) -> dict[str, tuple[str, ...]]:
        """BFS from the declared entry points.

        Returns ``qname -> shortest call path from an entry point``
        (the path includes both endpoints; an entry point maps to a
        one-element path).  Functions outside the worker surface are
        absent — that is the true-negative half of the CONC contract.
        """
        roots = self.project.resolve_entry_points(entry_points)
        paths: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for root in roots:
            if root.qname not in paths:
                paths[root.qname] = (root.qname,)
                frontier.append(root.qname)
        while frontier:
            next_frontier: list[str] = []
            for caller in frontier:
                base = paths[caller]
                for callee in sorted(self.edges.get(caller, ())):
                    if callee not in paths:
                        paths[callee] = (*base, callee)
                        next_frontier.append(callee)
            frontier = next_frontier
        return paths


def format_path(path: tuple[str, ...], limit: int = 4) -> str:
    """Render a call path compactly: ``a -> b -> ... -> z``."""
    if len(path) <= limit:
        return " -> ".join(path)
    return " -> ".join((*path[: limit - 1], "...", path[-1]))
