"""Pickling-safety lint: worker payloads must survive a process hop.

Every start method (fork, spawn, forkserver) pickles the worker
callable and its jobs.  Lambdas, closures and locally-defined classes
pickle by *reference to a module attribute that does not exist*, so they
fail only at dispatch time — on the one machine whose start method
actually pickles.  These rules move that failure to lint time:

``PCK-LAMBDA``
    A ``lambda`` passed into the pool surface (``map_jobs``,
    ``run_configs_parallel``, ``JobSpec``, ``submit``).
``PCK-LOCAL-FUNC``
    A function defined inside another function handed to the pool
    surface (closures are not picklable).
``PCK-LOCAL-CLASS``
    A class defined inside a function in :mod:`repro.parallel` —
    instances reference an unimportable type.
"""

from __future__ import annotations

import ast

from repro.analysis.model import ModuleInfo, Rule, Violation

RULES = (
    Rule(
        "PCK-LAMBDA",
        "no lambdas in process-pool payloads",
        "lambdas are unpicklable; the job dies at dispatch time under "
        "spawn/forkserver start methods",
    ),
    Rule(
        "PCK-LOCAL-FUNC",
        "pool workers must be module-level functions",
        "functions defined inside functions close over local state and "
        "cannot be pickled by reference",
    ),
    Rule(
        "PCK-LOCAL-CLASS",
        "no locally-defined classes in parallel modules",
        "instances of a function-local class cannot cross the process "
        "boundary",
    ),
)

#: Call names whose arguments become process-pool payloads.
POOL_SURFACE = frozenset(
    {"map_jobs", "run_configs_parallel", "JobSpec", "submit"}
)

#: Package whose modules are held to the local-class rule wholesale.
SCOPED_PACKAGE = "parallel"


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions."""
    local: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local.add(inner.name)
    return local


def check(info: ModuleInfo) -> list[Violation]:
    """Run the pickling rules over one module."""
    if not info.module.startswith("repro"):
        return []
    violations: list[Violation] = []
    local_funcs = _local_function_names(info.tree)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            if callee in POOL_SURFACE:
                violations.extend(
                    _check_payload_args(info, node, callee, local_funcs)
                )
        elif (
            info.package() == SCOPED_PACKAGE
            and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            for child in ast.walk(node):
                if isinstance(child, ast.ClassDef):
                    violations.append(
                        Violation(
                            "PCK-LOCAL-CLASS",
                            info.path,
                            child.lineno,
                            child.col_offset,
                            f"class `{child.name}` is defined inside a "
                            "function in a parallel module",
                            "define it at module level so instances pickle",
                        )
                    )
    return violations


def _check_payload_args(
    info: ModuleInfo,
    node: ast.Call,
    callee: str,
    local_funcs: set[str],
) -> list[Violation]:
    out = []
    # on_result/progress callbacks run in the parent and are never
    # pickled; they may be anything callable.
    kw_values = [
        kw.value
        for kw in node.keywords
        if kw.arg not in ("on_result", "progress")
    ]
    for arg in [*node.args, *kw_values]:
        if isinstance(arg, ast.Lambda):
            out.append(
                Violation(
                    "PCK-LAMBDA",
                    info.path,
                    arg.lineno,
                    arg.col_offset,
                    f"lambda passed to `{callee}` cannot be pickled",
                    "hoist it to a module-level function",
                )
            )
        elif isinstance(arg, ast.Name) and arg.id in local_funcs:
            out.append(
                Violation(
                    "PCK-LOCAL-FUNC",
                    info.path,
                    arg.lineno,
                    arg.col_offset,
                    f"locally-defined function `{arg.id}` passed to "
                    f"`{callee}` cannot be pickled",
                    "hoist it to a module-level function",
                )
            )
    return out
