"""Lint driver: per-file passes, project passes, cache, suppressions.

:func:`lint_paths` is the programmatic entry point (the CLI and the
tier-1 gate test both call it); :func:`lint_module` runs the per-file
passes over one already-parsed
:class:`~repro.analysis.model.ModuleInfo`, which is what the per-pass
unit tests use with synthetic sources.

The run is split into two kinds of work:

* **Per-file passes** (DET/UNIT/LAY/PCK/CKPT/VEC, plus the per-file
  API rule) see one module at a time and cache cleanly per content hash.
* **Project passes** (CONC-* over the call graph, API-SNAPSHOT) see a
  :class:`~repro.analysis.project.ProjectModel` over every file in the
  run and cache against the signature of the whole file set.

Both store **raw, pre-suppression** findings; suppression comments,
``--select`` filtering, and the stale-suppression check
(``LINT-UNUSED-NOQA``) are applied at merge time.  A warm run with no
edits therefore hashes files and parses nothing — the speedup pinned by
``benchmarks/bench_lint_speed.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import (
    ckpt,
    concurrency,
    determinism,
    facade_lint,
    layering,
    pickling,
    units_lint,
    vector_lint,
)
from repro.analysis.cache import (
    LintCache,
    hash_bytes,
    load_cache,
    rules_signature,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.layering import (
    LayeringContract,
    contract_text,
    load_contract,
)
from repro.analysis.model import (
    ModuleInfo,
    Rule,
    Violation,
    module_name_for,
    parse_source,
)
from repro.analysis.project import build_project
from repro.analysis.suppress import (
    NoqaComment,
    filter_suppressed,
    iter_noqa_comments,
    unused_noqa,
)
from repro.errors import AnalysisError

#: The meta-rule: a suppression comment that silences nothing.
UNUSED_NOQA_RULE = Rule(
    "LINT-UNUSED-NOQA",
    "suppression comments must suppress something",
    "a stale `# repro: noqa` outlives its violation and then hides the "
    "next real one on that line",
)

#: Every registered rule, keyed by id (the ``--list-rules`` source).
ALL_RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rules in (
        determinism.RULES,
        units_lint.RULES,
        layering.RULES,
        pickling.RULES,
        ckpt.RULES,
        vector_lint.RULES,
        concurrency.RULES,
        facade_lint.RULES,
        (UNUSED_NOQA_RULE,),
    )
    for rule in rules
}

#: Rule ids produced by project-wide passes (skipped under ``--changed``).
PROJECT_RULE_IDS = frozenset(
    {rule.rule_id for rule in concurrency.RULES} | {"API-SNAPSHOT"}
)


def _raw_local_violations(
    info: ModuleInfo, contract: LayeringContract
) -> list[Violation]:
    """Every per-file finding, before suppression or selection."""
    return [
        *determinism.check(info),
        *units_lint.check(info),
        *layering.check(info, contract=contract),
        *pickling.check(info),
        *ckpt.check(info),
        *vector_lint.check(info, contract=contract),
        *facade_lint.check(info, contract),
    ]


def lint_module(
    info: ModuleInfo,
    contract: LayeringContract | None = None,
    select: frozenset[str] | None = None,
) -> list[Violation]:
    """All (unsuppressed) per-file violations, sorted by position."""
    if contract is None:
        contract = load_contract()
    violations = _raw_local_violations(info, contract)
    if select is not None:
        violations = [v for v in violations if v.rule_id in select]
    violations = filter_suppressed(violations, info)
    return sorted(violations, key=lambda v: (v.line, v.col, v.rule_id))


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        elif not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
    return out


def _comment_suppressed(
    violation: Violation, comments: list[NoqaComment]
) -> bool:
    for comment in comments:
        if comment.line != violation.line:
            continue
        if not comment.rules or violation.rule_id in comment.rules:
            return True
    return False


def lint_paths(
    paths: Sequence[Path | str],
    contract_path: Path | None = None,
    select: Sequence[str] | None = None,
    cache_path: Path | str | None = None,
    project_rules: bool = True,
) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, n_files_checked)``.  ``select`` narrows the
    *report* to the given rule ids (unknown ids raise
    :class:`~repro.errors.AnalysisError` rather than silently matching
    nothing); the underlying analysis always runs every rule so the
    cache and the stale-noqa check stay select-independent.

    ``cache_path`` enables the persistent incremental cache.
    ``project_rules=False`` skips the project-wide passes (CONC-*,
    API-SNAPSHOT) — the ``--changed`` mode, where a partial file set
    would make whole-project conclusions wrong.
    """
    selected: frozenset[str] | None = None
    if select:
        selected = frozenset(select)
        unknown = selected - set(ALL_RULES)
        if unknown:
            raise AnalysisError(f"unknown rule ids: {sorted(unknown)}")
    text = contract_text(contract_path)
    contract = load_contract(contract_path)
    files = iter_python_files([Path(p) for p in paths])

    cache: LintCache | None = None
    if cache_path is not None:
        cache = load_cache(str(cache_path), rules_signature(text))

    # Phase 1: per-file analysis (cache-aware).
    per_file: dict[str, tuple[list[Violation], list[NoqaComment]]] = {}
    hashes: dict[str, str] = {}
    parsed: dict[str, ModuleInfo] = {}
    sources: dict[str, str] = {}
    for file in files:
        path_str = str(file)
        try:
            data = file.read_bytes()
        except OSError as exc:
            raise AnalysisError(f"cannot read {file}: {exc}") from exc
        content_hash = hash_bytes(data)
        hashes[path_str] = content_hash
        if cache is not None:
            record = cache.lookup(path_str, content_hash)
            if record is not None:
                per_file[path_str] = (record.raw, record.noqa)
                continue
        source = data.decode("utf-8")
        sources[path_str] = source
        info = parse_source(
            source, module=module_name_for(file), path=path_str
        )
        parsed[path_str] = info
        raw = _raw_local_violations(info, contract)
        comments = iter_noqa_comments(source)
        per_file[path_str] = (raw, comments)
        if cache is not None:
            cache.store(path_str, content_hash, raw, comments)

    # Phase 2: project passes (cache-aware over the whole file set).
    project_raw: list[Violation] = []
    if project_rules:
        sig_body = ";".join(
            f"{p}={hashes[p]}" for p in sorted(hashes)
        )
        project_sig = hash_bytes(sig_body.encode("utf-8"))
        cached = cache.lookup_project(project_sig) if cache else None
        if cached is not None:
            project_raw = cached
        else:
            infos = []
            for file in files:
                path_str = str(file)
                info = parsed.get(path_str)
                if info is None:
                    source = sources.get(path_str)
                    if source is None:
                        source = file.read_text(encoding="utf-8")
                    info = parse_source(
                        source, module=module_name_for(file), path=path_str
                    )
                infos.append(info)
            project = build_project(infos)
            graph = CallGraph(project)
            project_raw = [
                *concurrency.check_project(project, graph, contract),
                *facade_lint.check_project(project, contract),
            ]
            if cache is not None:
                cache.store_project(project_sig, project_raw)

    # Phase 3: merge — suppression, stale-noqa, selection (cheap).
    project_by_path: dict[str, list[Violation]] = {}
    for violation in project_raw:
        project_by_path.setdefault(violation.path, []).append(violation)

    known = frozenset(ALL_RULES)
    violations: list[Violation] = []
    for path_str, (raw, comments) in per_file.items():
        combined = [*raw, *project_by_path.get(path_str, [])]
        for violation in combined:
            if not _comment_suppressed(violation, comments):
                violations.append(violation)
        for comment, reason in unused_noqa(comments, combined, known):
            if not project_rules and (
                not comment.rules
                or any(r in PROJECT_RULE_IDS for r in comment.rules)
            ):
                # Without the project passes we cannot tell whether a
                # CONC/API suppression is live; don't cry stale.
                continue
            violations.append(
                Violation(
                    "LINT-UNUSED-NOQA",
                    path_str,
                    comment.line,
                    comment.col,
                    f"stale suppression: {reason}",
                    "delete the comment, or fix the rule list it names",
                )
            )
    if selected is not None:
        violations = [v for v in violations if v.rule_id in selected]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    if cache is not None:
        cache.save()
    return violations, len(files)


def render_text(violations: list[Violation], n_files: int) -> str:
    """Human-readable report (one line per violation plus a summary)."""
    lines = [v.render() for v in violations]
    if violations:
        counts: dict[str, int] = {}
        for v in violations:
            counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
        summary = ", ".join(f"{rid}: {n}" for rid, n in sorted(counts.items()))
        lines.append(
            f"{len(violations)} violation(s) in {n_files} file(s)  ({summary})"
        )
    else:
        lines.append(f"clean: {n_files} file(s), 0 violations")
    return "\n".join(lines)


def render_json(violations: list[Violation], n_files: int) -> str:
    """Machine-readable report (the ``--format json`` payload)."""
    counts: dict[str, int] = {}
    for v in violations:
        counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
    return json.dumps(
        {
            "checked_files": n_files,
            "violations": [v.as_dict() for v in violations],
            "counts": counts,
            "clean": not violations,
        },
        indent=2,
    )


def render_sarif(violations: list[Violation], n_files: int) -> str:
    """SARIF 2.1.0 report (the ``--format sarif`` payload).

    The shape follows the static-analysis results interchange format so
    CI can upload the run to code scanning; rule metadata comes from
    :data:`ALL_RULES`, results carry one physical location each.
    """
    rules = [
        {
            "id": rule_id,
            "name": rule_id.replace("-", ""),
            "shortDescription": {"text": ALL_RULES[rule_id].title},
            "fullDescription": {"text": ALL_RULES[rule_id].rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in sorted(ALL_RULES)
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(ALL_RULES))}
    results = [
        {
            "ruleId": v.rule_id,
            "ruleIndex": rule_index.get(v.rule_id, -1),
            "level": "error",
            "message": {
                "text": v.message + (f" ({v.hint})" if v.hint else "")
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {"checkedFiles": n_files},
            }
        ],
    }
    return json.dumps(payload, indent=2)


def render_rules() -> str:
    """The ``--list-rules`` table: id, title, rationale."""
    lines = []
    for rule_id in sorted(ALL_RULES):
        rule = ALL_RULES[rule_id]
        lines.append(f"{rule_id:15s} {rule.title}")
        lines.append(f"{'':15s}   {rule.rationale}")
    return "\n".join(lines)


#: Signature of the per-pass check functions (documentation aid).
PassFn = Callable[[ModuleInfo], list[Violation]]
