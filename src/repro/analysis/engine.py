"""Lint driver: walk files, run every pass, apply suppressions, report.

:func:`lint_paths` is the programmatic entry point (the CLI and the
tier-1 gate test both call it); :func:`lint_module` runs the passes over
one already-parsed :class:`~repro.analysis.model.ModuleInfo`, which is
what the per-pass unit tests use with synthetic sources.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import determinism, layering, pickling, units_lint
from repro.analysis.layering import LayeringContract, load_contract
from repro.analysis.model import ModuleInfo, Rule, Violation, load_module
from repro.analysis.suppress import filter_suppressed
from repro.errors import AnalysisError

#: Every registered rule, keyed by id (the ``--list-rules`` source).
ALL_RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rules in (
        determinism.RULES,
        units_lint.RULES,
        layering.RULES,
        pickling.RULES,
    )
    for rule in rules
}


def lint_module(
    info: ModuleInfo,
    contract: LayeringContract | None = None,
    select: frozenset[str] | None = None,
) -> list[Violation]:
    """All (unsuppressed) violations in one module, sorted by position."""
    violations = [
        *determinism.check(info),
        *units_lint.check(info),
        *layering.check(info, contract=contract),
        *pickling.check(info),
    ]
    if select is not None:
        violations = [v for v in violations if v.rule_id in select]
    violations = filter_suppressed(violations, info)
    return sorted(violations, key=lambda v: (v.line, v.col, v.rule_id))


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        elif not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
    return out


def lint_paths(
    paths: Sequence[Path | str],
    contract_path: Path | None = None,
    select: Sequence[str] | None = None,
) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, n_files_checked)``.  ``select`` narrows the
    run to the given rule ids (unknown ids raise
    :class:`~repro.errors.AnalysisError` rather than silently matching
    nothing).
    """
    selected: frozenset[str] | None = None
    if select:
        selected = frozenset(select)
        unknown = selected - set(ALL_RULES)
        if unknown:
            raise AnalysisError(f"unknown rule ids: {sorted(unknown)}")
    contract = load_contract(contract_path)
    files = iter_python_files([Path(p) for p in paths])
    violations: list[Violation] = []
    for file in files:
        info = load_module(file)
        violations.extend(lint_module(info, contract=contract, select=selected))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, len(files)


def render_text(violations: list[Violation], n_files: int) -> str:
    """Human-readable report (one line per violation plus a summary)."""
    lines = [v.render() for v in violations]
    if violations:
        counts: dict[str, int] = {}
        for v in violations:
            counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
        summary = ", ".join(f"{rid}: {n}" for rid, n in sorted(counts.items()))
        lines.append(
            f"{len(violations)} violation(s) in {n_files} file(s)  ({summary})"
        )
    else:
        lines.append(f"clean: {n_files} file(s), 0 violations")
    return "\n".join(lines)


def render_json(violations: list[Violation], n_files: int) -> str:
    """Machine-readable report (the ``--format json`` payload)."""
    counts: dict[str, int] = {}
    for v in violations:
        counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
    return json.dumps(
        {
            "checked_files": n_files,
            "violations": [v.as_dict() for v in violations],
            "counts": counts,
            "clean": not violations,
        },
        indent=2,
    )


def render_rules() -> str:
    """The ``--list-rules`` table: id, title, rationale."""
    lines = []
    for rule_id in sorted(ALL_RULES):
        rule = ALL_RULES[rule_id]
        lines.append(f"{rule_id:15s} {rule.title}")
        lines.append(f"{'':15s}   {rule.rationale}")
    return "\n".join(lines)


#: Signature of the per-pass check functions (documentation aid).
PassFn = Callable[[ModuleInfo], list[Violation]]
