"""Persistent lint cache: incremental ``repro lint`` runs.

The expensive part of a lint run is parsing and walking ASTs; deciding
what to *show* (suppressions, ``--select``, stale-noqa checks) is
cheap.  The cache therefore stores, per file, the **raw
pre-suppression** findings plus the file's suppression comments, keyed
on the file's content hash and a rules signature (analysis version +
contract bytes).  Project-wide passes store their findings once, keyed
on the signature of *every* participating file.  On a warm run with no
edits the engine hashes files, loads records, and never parses a line —
which is where the ≥3× cold/warm speedup pinned by
``benchmarks/bench_lint_speed.py`` comes from.

Design consequences, on purpose:

* ``--select`` and suppression filtering never reach the cache key —
  the raw findings are filter-input, so one cache serves every select
  combination and LINT-UNUSED-NOQA stays correct.
* Editing ``layering.toml`` (or bumping :data:`ANALYSIS_VERSION` when
  rule logic changes) invalidates everything at once via the rules
  signature.
* The cache file is plain JSON with a schema tag; anything unreadable
  or mismatched is discarded wholesale, never migrated.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.analysis.model import Violation
from repro.analysis.suppress import NoqaComment

#: Bump when rule logic changes in a way that alters raw findings.
ANALYSIS_VERSION = "2"

_SCHEMA = "repro-lint-cache/1"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def hash_bytes(data: bytes) -> str:
    """Hex sha256 of ``data`` (the cache's content fingerprint)."""
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str) -> str | None:
    """Content hash of ``path``, or ``None`` when unreadable."""
    try:
        with open(path, "rb") as fh:
            return hash_bytes(fh.read())
    except OSError:
        return None


def rules_signature(contract_text: str) -> str:
    """Signature invalidating the cache when rules or contract change."""
    contract_hash = hash_bytes(contract_text.encode("utf-8"))
    return f"{ANALYSIS_VERSION}:{contract_hash}"


@dataclass
class FileRecord:
    """Cached analysis of one file at one content hash."""

    content_hash: str
    raw: list[Violation]
    noqa: list[NoqaComment]


@dataclass
class LintCache:
    """In-memory view of the cache file."""

    path: str
    signature: str
    files: dict[str, FileRecord] = field(default_factory=dict)
    #: Project-pass findings, keyed implicitly by :attr:`project_sig`.
    project_sig: str = ""
    project_raw: list[Violation] = field(default_factory=list)
    #: Set when any record was added or replaced since load.
    dirty: bool = False

    # -- per-file records ---------------------------------------------------

    def lookup(self, path: str, content_hash: str) -> FileRecord | None:
        """The cached record for ``path`` at exactly this content hash."""
        record = self.files.get(path)
        if record is not None and record.content_hash == content_hash:
            return record
        return None

    def store(
        self,
        path: str,
        content_hash: str,
        raw: list[Violation],
        noqa: list[NoqaComment],
    ) -> FileRecord:
        """Insert/replace the record for ``path`` and mark the cache dirty."""
        record = FileRecord(content_hash=content_hash, raw=raw, noqa=noqa)
        self.files[path] = record
        self.dirty = True
        return record

    # -- project-pass record ------------------------------------------------

    def lookup_project(self, sig: str) -> list[Violation] | None:
        """Cached project-pass findings when ``sig`` matches, else ``None``."""
        if self.project_sig == sig and sig:
            return self.project_raw
        return None

    def store_project(self, sig: str, raw: list[Violation]) -> None:
        """Record the project-pass findings for file-set signature ``sig``."""
        self.project_sig = sig
        self.project_raw = raw
        self.dirty = True

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Write atomically (tmp + rename); a no-op when nothing changed."""
        if not self.dirty:
            return
        payload = {
            "schema": _SCHEMA,
            "signature": self.signature,
            "files": {
                path: {
                    "hash": record.content_hash,
                    "raw": [v.as_dict() for v in record.raw],
                    "noqa": [
                        {"line": c.line, "col": c.col, "rules": list(c.rules)}
                        for c in record.noqa
                    ],
                }
                for path, record in sorted(self.files.items())
            },
            "project": {
                "sig": self.project_sig,
                "raw": [v.as_dict() for v in self.project_raw],
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _violation_from_dict(data: dict) -> Violation:
    # Keys follow Violation.as_dict() ("rule", "file", ...).
    return Violation(
        rule_id=data["rule"],
        path=data["file"],
        line=int(data["line"]),
        col=int(data["col"]),
        message=data["message"],
        hint=data.get("hint", ""),
    )


def load_cache(path: str, signature: str) -> LintCache:
    """Load the cache at ``path``; mismatch or corruption starts fresh."""
    cache = LintCache(path=path, signature=signature)
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return cache
    if not isinstance(payload, dict):
        return cache
    if payload.get("schema") != _SCHEMA:
        return cache
    if payload.get("signature") != signature:
        return cache
    try:
        for file_path, entry in payload.get("files", {}).items():
            cache.files[file_path] = FileRecord(
                content_hash=entry["hash"],
                raw=[_violation_from_dict(v) for v in entry["raw"]],
                noqa=[
                    NoqaComment(
                        line=int(c["line"]),
                        col=int(c["col"]),
                        rules=tuple(c["rules"]),
                    )
                    for c in entry["noqa"]
                ],
            )
        project = payload.get("project", {})
        cache.project_sig = project.get("sig", "")
        cache.project_raw = [
            _violation_from_dict(v) for v in project.get("raw", [])
        ]
    except (KeyError, TypeError, ValueError):
        return LintCache(path=path, signature=signature)
    return cache
