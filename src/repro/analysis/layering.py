"""Layering lint: the package dependency DAG, enforced from a contract.

The distribution layers bottom-up — foundation (``errors``, ``units``,
``formatting``) under the simulation substrate (``sim``), the domain
packages (``tasks``/``workloads``/``cluster``), the run-time and policy
layers, the experiment harness, and the CLI on top.  The contract lives
in a declarative TOML file next to this module (``layering.toml``) so a
reviewer can read the architecture without reading the checker:

``LAY-DAG``
    A module-load-time import of a repro package the contract does not
    allow for the importer's package.
``LAY-LAZY``
    A function-level import crossing the DAG upward without a
    ``lazy_allow`` entry sanctioning that edge.
``LAY-PRIVATE``
    An import of a *restricted* package (``parallel``, ``analysis``)
    from outside its declared importer set.
``LAY-FACADE``
    A deep ``repro`` import from a *facade-only* tree (``examples/``,
    ``scripts/``): shipped end-user code must stay on the supported
    surface (``repro.api``) so the examples never document an
    unsupported path.

``if TYPE_CHECKING:`` imports are annotation-only — they never execute
— and are therefore exempt from all four rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from importlib import resources
from pathlib import Path
import tomllib

from repro.analysis.astutils import enclosing_function_lines
from repro.analysis.model import ModuleInfo, Rule, Violation
from repro.errors import AnalysisError

RULES = (
    Rule(
        "LAY-DAG",
        "module-level imports follow the package DAG",
        "upward imports couple foundation layers to the harness and "
        "eventually form import cycles",
    ),
    Rule(
        "LAY-LAZY",
        "lazy upward imports must be declared in the contract",
        "a function-level import dodges the import-time cycle but still "
        "creates a dependency; the contract makes each one reviewable",
    ),
    Rule(
        "LAY-PRIVATE",
        "restricted packages have a closed importer set",
        "repro.parallel is an implementation detail of the experiment "
        "runners; new importers would widen its pickling contract",
    ),
    Rule(
        "LAY-FACADE",
        "examples and scripts import only the public facade",
        "a deep import in shipped example code documents an unsupported "
        "path; everything an example needs belongs in repro.api",
    ),
)


@dataclass(frozen=True)
class LayeringContract:
    """Parsed form of ``layering.toml``.

    Besides the original layering relation, the contract carries the
    declarative inputs of the project-wide passes: worker entry points
    and RNG discipline for CONC-*, the kernel-module scope for VEC-*,
    and the deprecated-name/snapshot declarations for API-*.
    """

    allowed: dict[str, frozenset[str]]
    lazy_allow: frozenset[tuple[str, str]]
    restricted: dict[str, frozenset[str]]
    #: Directory names whose modules are facade-only consumers.
    facade_roots: frozenset[str] = frozenset()
    #: Contract packages those modules may import (the facade itself).
    facade_allowed: frozenset[str] = frozenset()
    #: Repo-relative path of the public-API snapshot (API-SNAPSHOT).
    facade_snapshot: str = ""
    #: Worker entry points: reachability roots of the CONC-* passes.
    entry_points: tuple[str, ...] = ()
    #: Modules sanctioned to construct generators from seeds.
    rng_factories: frozenset[str] = frozenset()
    #: Declared stream-name prefixes for ``registry.stream("...")``.
    streams: tuple[str, ...] = ()
    #: Type names that must never enter a process-pool payload.
    unpicklable: frozenset[str] = frozenset()
    #: Dotted module prefixes holding vectorized/kernel code (VEC-*).
    kernel_modules: tuple[str, ...] = ()
    #: Deprecated qualified names internal code must not reference.
    deprecated: frozenset[str] = frozenset()

    def packages(self) -> frozenset[str]:
        """Every package the contract knows about."""
        return frozenset(self.allowed)

    def in_kernel_scope(self, module: str) -> bool:
        """Whether ``module`` falls under a declared kernel prefix."""
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.kernel_modules
        )


def parse_contract(text: str, origin: str = "<contract>") -> LayeringContract:
    """Parse and validate contract TOML text.

    Raises :class:`~repro.errors.AnalysisError` on malformed documents:
    unknown packages in dependency lists, non-list values, or a
    relation that is not a DAG.
    """
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise AnalysisError(f"invalid layering contract {origin}: {exc}") from exc
    raw_allowed = data.get("allowed")
    if not isinstance(raw_allowed, dict) or not raw_allowed:
        raise AnalysisError(f"layering contract {origin} needs an [allowed] table")
    lazy_raw = raw_allowed.pop("lazy_allow", [])
    allowed: dict[str, frozenset[str]] = {}
    for pkg, deps in raw_allowed.items():
        if not isinstance(deps, list) or not all(
            isinstance(d, str) for d in deps
        ):
            raise AnalysisError(
                f"layering contract {origin}: allowed.{pkg} must be a "
                "list of package names"
            )
        allowed[pkg] = frozenset(deps)
    known = set(allowed)
    for pkg, deps in allowed.items():
        unknown = deps - known
        if unknown:
            raise AnalysisError(
                f"layering contract {origin}: allowed.{pkg} names unknown "
                f"packages {sorted(unknown)}"
            )
    _require_dag(allowed, origin)
    lazy_pairs = set()
    for pair in lazy_raw:
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or not all(isinstance(p, str) and p in known for p in pair)
        ):
            raise AnalysisError(
                f"layering contract {origin}: lazy_allow entries must be "
                "[importer, imported] pairs of known packages"
            )
        lazy_pairs.add((pair[0], pair[1]))
    restricted: dict[str, frozenset[str]] = {}
    for pkg, importers in data.get("restricted", {}).items():
        if pkg not in known or not isinstance(importers, list):
            raise AnalysisError(
                f"layering contract {origin}: restricted.{pkg} must name a "
                "known package with a list of importers"
            )
        restricted[pkg] = frozenset(importers)
    facade = data.get("facade", {})
    for key in ("roots", "allowed"):
        values = facade.get(key, [])
        if not isinstance(values, list) or not all(
            isinstance(v, str) for v in values
        ):
            raise AnalysisError(
                f"layering contract {origin}: facade.{key} must be a "
                "list of strings"
            )
    facade_allowed = frozenset(facade.get("allowed", []))
    unknown = facade_allowed - known
    if unknown:
        raise AnalysisError(
            f"layering contract {origin}: facade.allowed names unknown "
            f"packages {sorted(unknown)}"
        )
    snapshot = facade.get("snapshot", "")
    if not isinstance(snapshot, str):
        raise AnalysisError(
            f"layering contract {origin}: facade.snapshot must be a string"
        )
    concurrency = _string_list_table(
        data.get("concurrency", {}),
        ("entry_points", "rng_factories", "streams", "unpicklable"),
        origin,
        "concurrency",
    )
    for entry in concurrency["entry_points"]:
        if entry.count(".") < 2:
            raise AnalysisError(
                f"layering contract {origin}: entry point {entry!r} must "
                "be a fully qualified `repro.module.function` name"
            )
    vectorization = _string_list_table(
        data.get("vectorization", {}), ("kernel_modules",), origin,
        "vectorization",
    )
    deprecated = _string_list_table(
        data.get("deprecated", {}), ("names",), origin, "deprecated"
    )
    return LayeringContract(
        allowed=allowed,
        lazy_allow=frozenset(lazy_pairs),
        restricted=restricted,
        facade_roots=frozenset(facade.get("roots", [])),
        facade_allowed=facade_allowed,
        facade_snapshot=snapshot,
        entry_points=tuple(concurrency["entry_points"]),
        rng_factories=frozenset(concurrency["rng_factories"]),
        streams=tuple(concurrency["streams"]),
        unpicklable=frozenset(concurrency["unpicklable"]),
        kernel_modules=tuple(vectorization["kernel_modules"]),
        deprecated=frozenset(deprecated["names"]),
    )


def _string_list_table(
    table: object, keys: tuple[str, ...], origin: str, section: str
) -> dict[str, list[str]]:
    """Validate a ``[section]`` whose values are lists of strings."""
    if not isinstance(table, dict):
        raise AnalysisError(
            f"layering contract {origin}: [{section}] must be a table"
        )
    out: dict[str, list[str]] = {}
    for key in keys:
        values = table.get(key, [])
        if not isinstance(values, list) or not all(
            isinstance(v, str) for v in values
        ):
            raise AnalysisError(
                f"layering contract {origin}: {section}.{key} must be a "
                "list of strings"
            )
        out[key] = values
    return out


def _require_dag(allowed: dict[str, frozenset[str]], origin: str) -> None:
    """Topological check: the allowed relation must contain no cycle."""
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def visit(pkg: str, stack: tuple[str, ...]) -> None:
        if state.get(pkg) == 1:
            return
        if state.get(pkg) == 0:
            cycle = " -> ".join((*stack[stack.index(pkg):], pkg))
            raise AnalysisError(
                f"layering contract {origin} is cyclic: {cycle}"
            )
        state[pkg] = 0
        for dep in sorted(allowed.get(pkg, ())):
            visit(dep, (*stack, pkg))
        state[pkg] = 1

    for pkg in sorted(allowed):
        visit(pkg, ())


def contract_text(path: Path | None = None) -> str:
    """Raw TOML text of the packaged default contract or an explicit file.

    Exposed separately so the lint cache can fingerprint the contract
    bytes without re-parsing.
    """
    if path is not None:
        try:
            return path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read contract {path}: {exc}") from exc
    return (
        resources.files("repro.analysis")
        .joinpath("layering.toml")
        .read_text(encoding="utf-8")
    )


def load_contract(path: Path | None = None) -> LayeringContract:
    """Load the packaged default contract, or an explicit file."""
    text = contract_text(path)
    origin = str(path) if path is not None else "repro/analysis/layering.toml"
    return parse_contract(text, origin=origin)


def _importer_package(info: ModuleInfo) -> str | None:
    """Contract package of the module being linted."""
    parts = info.module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "__init__"
    return parts[1]


def _imported_packages(node: ast.Import | ast.ImportFrom) -> list[str]:
    """repro packages named by one import statement."""
    dotted: list[str] = []
    if isinstance(node, ast.Import):
        dotted = [alias.name for alias in node.names]
    elif node.module is not None and node.level == 0:
        dotted = [node.module]
    out = []
    for name in dotted:
        parts = name.split(".")
        if parts[0] != "repro":
            continue
        out.append(parts[1] if len(parts) > 1 else "__init__")
    return out


def check(
    info: ModuleInfo, contract: LayeringContract | None = None
) -> list[Violation]:
    """Run the layering rules over one module."""
    if contract is None:
        contract = load_contract()
    importer = _importer_package(info)
    if importer is None:
        return _check_facade(info, contract)
    allowed = contract.allowed.get(importer)
    if allowed is None:
        # A package the contract has never heard of: surface that rather
        # than silently skipping (new packages must be added explicitly).
        return [
            Violation(
                "LAY-DAG",
                info.path,
                1,
                0,
                f"package `{importer}` is not declared in the layering "
                "contract",
                "add it to [allowed] in repro/analysis/layering.toml",
            )
        ]
    lazy_lines = enclosing_function_lines(info.tree)
    type_checking_lines = _type_checking_lines(info.tree)
    violations: list[Violation] = []
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if node.lineno in type_checking_lines:
            continue
        for imported in _imported_packages(node):
            if imported == importer:
                continue
            is_lazy = node.lineno in lazy_lines
            restricted_to = contract.restricted.get(imported)
            if restricted_to is not None and importer not in restricted_to:
                violations.append(
                    Violation(
                        "LAY-PRIVATE",
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"`{imported}` may only be imported from "
                        f"{sorted(restricted_to - {imported})}",
                        "route through the experiment runners instead",
                    )
                )
                continue
            if imported in allowed:
                continue
            if is_lazy:
                if (importer, imported) in contract.lazy_allow:
                    continue
                violations.append(
                    Violation(
                        "LAY-LAZY",
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"lazy import of `repro.{imported}` from "
                        f"`{importer}` is not sanctioned by the contract",
                        "add a lazy_allow entry to layering.toml or "
                        "restructure the dependency",
                    )
                )
            else:
                violations.append(
                    Violation(
                        "LAY-DAG",
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"`{importer}` may not import `repro.{imported}` "
                        "at module load time",
                        f"allowed: {sorted(allowed)}; move the shared code "
                        "down a layer or import lazily with a contract entry",
                    )
                )
    return violations


def _check_facade(
    info: ModuleInfo, contract: LayeringContract
) -> list[Violation]:
    """LAY-FACADE: facade-only trees must stay on ``repro.api``."""
    parts = Path(info.path).parts
    if not any(part in contract.facade_roots for part in parts):
        return []
    type_checking_lines = _type_checking_lines(info.tree)
    violations: list[Violation] = []
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if node.lineno in type_checking_lines:
            continue
        for imported in _imported_packages(node):
            if imported in contract.facade_allowed:
                continue
            violations.append(
                Violation(
                    "LAY-FACADE",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"deep import of `repro.{imported}` from a "
                    "facade-only tree",
                    "import the name from repro.api instead (and add it "
                    "there if it is missing)",
                )
            )
    return violations


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Lines inside ``if TYPE_CHECKING:`` blocks (annotation-only)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if is_tc:
                for child in node.body:
                    end = child.end_lineno or child.lineno
                    lines.update(range(child.lineno, end + 1))
    return lines
