"""Self-hosted static analysis: the invariants of the reproduction, linted.

The reproducibility guarantees of this repository rest on conventions a
type checker cannot see: all randomness flows through seeded
:mod:`repro.sim.rng` streams, simulation time never mixes with host
time, seconds never silently mix with milliseconds, packages respect the
layering DAG, and process-pool payloads stay picklable.  This package
enforces them with AST passes over the source tree:

* :mod:`repro.analysis.determinism` — ``DET-*`` rules,
* :mod:`repro.analysis.units_lint` — ``UNIT-*`` rules,
* :mod:`repro.analysis.layering` — ``LAY-*`` rules from the declarative
  contract in ``layering.toml``,
* :mod:`repro.analysis.pickling` — ``PCK-*`` rules,
* :mod:`repro.analysis.vector_lint` — ``VEC-*`` rules (sort/dtype
  discipline in the declared kernel modules),
* :mod:`repro.analysis.concurrency` — ``CONC-*`` rules, flow-aware over
  the bounded call graph rooted at the pool-worker entry points,
* :mod:`repro.analysis.facade_lint` — ``API-*`` rules (deprecated-shim
  use, ``repro.api.__all__`` vs. the reviewed snapshot).

The flow-aware passes see the whole project through
:class:`~repro.analysis.project.ProjectModel` and
:class:`~repro.analysis.callgraph.CallGraph`; everything else is
per-file and cached incrementally (``.repro-lint-cache.json``).

Run it as ``repro lint src/repro`` (exit code 1 on violations), or via
:func:`lint_paths`.  Deliberate exceptions are suppressed per line with
``# repro: noqa RULE-ID``; stale suppressions are themselves flagged
(``LINT-UNUSED-NOQA``).  The tier-1 test
``tests/analysis/test_codebase_clean.py`` gates every future change on a
clean run.  See ``docs/static_analysis.md`` for the full rule catalogue.
"""

from repro.analysis.callgraph import CallGraph, format_path
from repro.analysis.engine import (
    ALL_RULES,
    PROJECT_RULE_IDS,
    lint_module,
    lint_paths,
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.analysis.layering import LayeringContract, load_contract, parse_contract
from repro.analysis.model import ModuleInfo, Rule, Violation, parse_source
from repro.analysis.project import ProjectModel, build_project

__all__ = [
    "ALL_RULES",
    "CallGraph",
    "LayeringContract",
    "ModuleInfo",
    "PROJECT_RULE_IDS",
    "ProjectModel",
    "Rule",
    "Violation",
    "build_project",
    "format_path",
    "lint_module",
    "lint_paths",
    "load_contract",
    "parse_contract",
    "parse_source",
    "render_json",
    "render_rules",
    "render_sarif",
    "render_text",
]
