"""Self-hosted static analysis: the invariants of the reproduction, linted.

The reproducibility guarantees of this repository rest on conventions a
type checker cannot see: all randomness flows through seeded
:mod:`repro.sim.rng` streams, simulation time never mixes with host
time, seconds never silently mix with milliseconds, packages respect the
layering DAG, and process-pool payloads stay picklable.  This package
enforces them with AST passes over the source tree:

* :mod:`repro.analysis.determinism` — ``DET-*`` rules,
* :mod:`repro.analysis.units_lint` — ``UNIT-*`` rules,
* :mod:`repro.analysis.layering` — ``LAY-*`` rules from the declarative
  contract in ``layering.toml``,
* :mod:`repro.analysis.pickling` — ``PCK-*`` rules.

Run it as ``repro lint src/repro`` (exit code 1 on violations), or via
:func:`lint_paths`.  Deliberate exceptions are suppressed per line with
``# repro: noqa RULE-ID``.  The tier-1 test
``tests/analysis/test_codebase_clean.py`` gates every future change on a
clean run.  See ``docs/static_analysis.md`` for the full rule catalogue.
"""

from repro.analysis.engine import (
    ALL_RULES,
    lint_module,
    lint_paths,
    render_json,
    render_rules,
    render_text,
)
from repro.analysis.layering import LayeringContract, load_contract, parse_contract
from repro.analysis.model import ModuleInfo, Rule, Violation, parse_source

__all__ = [
    "ALL_RULES",
    "LayeringContract",
    "ModuleInfo",
    "Rule",
    "Violation",
    "lint_module",
    "lint_paths",
    "load_contract",
    "parse_contract",
    "parse_source",
    "render_json",
    "render_rules",
    "render_text",
]
