"""Vectorized-determinism lint: order and dtype discipline (VEC-*).

The vectorized engine and the batched forecast kernels are bit-identical
to their scalar counterparts only because every NumPy operation that
*orders* or *accumulates* floats is pinned: stable sorts, total-order
keys, float64 end to end, and reductions over deterministically-ordered
collections.  These rules keep that discipline machine-checked inside
the declared kernel modules (``[vectorization] kernel_modules`` in
``layering.toml``):

``VEC-SORT-STABLE``
    ``np.sort``/``np.argsort`` (or a ``.argsort(...)`` method call)
    without ``kind="stable"``.  The default introsort reorders equal
    keys differently across NumPy versions and array layouts, so tied
    events execute in different orders.
``VEC-SORT-KEY``
    ``sorted(...)``/``.sort(...)`` whose ``key`` lambda returns a
    single value rather than a tuple.  Equal keys fall back to the
    *input* order, which is shard- or insertion-dependent; a tuple with
    an explicit tiebreaker (``(t, seq)``) pins a total order.
``VEC-FLOAT-REDUCE``
    ``sum``/``np.sum``/``np.mean``/``math.fsum`` over an unordered
    set expression.  Float addition is non-associative, so an
    unpinned iteration order changes the result in the last ulps —
    enough to break bit-identity gates.
``VEC-NARROW``
    ``np.float32``/``np.float16`` (including ``dtype="float32"`` and
    ``.astype`` spellings).  The forecast kernels mirror scalar float64
    op order exactly; narrowing silently changes every comparison
    against the scalar path.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import alias_map, qualified_name
from repro.analysis.layering import LayeringContract, load_contract
from repro.analysis.model import ModuleInfo, Rule, Violation

RULES = (
    Rule(
        "VEC-SORT-STABLE",
        "NumPy sorts in kernel modules must be stable",
        "the default introsort reorders equal keys unpredictably, so "
        "tied events execute in different orders across layouts/versions",
    ),
    Rule(
        "VEC-SORT-KEY",
        "sort keys in kernel modules must be total-order tuples",
        "a scalar float key leaves ties to the input order, which is "
        "shard- and insertion-dependent",
    ),
    Rule(
        "VEC-FLOAT-REDUCE",
        "no float reductions over unordered collections",
        "float addition is non-associative; an unpinned iteration order "
        "changes results in the last ulps and breaks bit-identity",
    ),
    Rule(
        "VEC-NARROW",
        "no float32/float16 narrowing in kernel modules",
        "forecast kernels mirror the scalar float64 op order exactly; "
        "narrowing changes every value against the scalar path",
    ),
)

#: Sort kinds that preserve the order of equal keys.
_STABLE_KINDS = frozenset({"stable", "mergesort"})

#: Reduction callables whose argument order reaches the result.
_REDUCERS = frozenset({
    "sum", "math.fsum", "numpy.sum", "numpy.mean", "numpy.prod",
    "numpy.cumsum",
})

_NARROW_DTYPES = frozenset({"float32", "float16"})


def check(
    info: ModuleInfo, contract: LayeringContract | None = None
) -> list[Violation]:
    """Run the VEC rules over one module."""
    if contract is None:
        contract = load_contract()
    if not contract.in_kernel_scope(info.module):
        return []
    aliases = alias_map(info.tree)
    violations: list[Violation] = []
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            violations.extend(_check_call(info, node, aliases))
        elif isinstance(node, ast.Attribute):
            qname = qualified_name(node, aliases)
            if qname in ("numpy.float32", "numpy.float16"):
                violations.append(_narrow(info, node, qname))
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in _NARROW_DTYPES
        ):
            # dtype="float32" string spellings; cheap and rare enough
            # to flag wholesale in kernel modules.
            violations.append(_narrow(info, node, repr(node.value)))
    return violations


def _check_call(
    info: ModuleInfo, node: ast.Call, aliases: dict[str, str]
) -> list[Violation]:
    qname = qualified_name(node.func, aliases)
    out: list[Violation] = []
    is_np_sort = qname in ("numpy.sort", "numpy.argsort")
    is_method_argsort = (
        isinstance(node.func, ast.Attribute) and node.func.attr == "argsort"
    )
    if is_np_sort or is_method_argsort:
        kind = _keyword(node, "kind")
        if not (
            isinstance(kind, ast.Constant) and kind.value in _STABLE_KINDS
        ):
            out.append(
                Violation(
                    "VEC-SORT-STABLE",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"`{qname or 'argsort'}` without kind=\"stable\" in a "
                    "kernel module",
                    'pass kind="stable" to pin the order of equal keys',
                )
            )
    is_sorted = qname == "sorted"
    is_sort_method = (
        isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
    )
    if is_sorted or is_sort_method:
        key = _keyword(node, "key")
        if isinstance(key, ast.Lambda) and not isinstance(
            key.body, ast.Tuple
        ):
            out.append(
                Violation(
                    "VEC-SORT-KEY",
                    info.path,
                    key.lineno,
                    key.col_offset,
                    "sort key returns a single value; equal keys fall "
                    "back to input order",
                    "return a tuple with an explicit tiebreaker, e.g. "
                    "(t, seq)",
                )
            )
    if qname in _REDUCERS and node.args:
        if _is_unordered(node.args[0], aliases):
            out.append(
                Violation(
                    "VEC-FLOAT-REDUCE",
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"`{qname}` over an unordered set expression",
                    "sort the operands first (sorted(...)) to pin the "
                    "accumulation order",
                )
            )
    if qname == "numpy.float32" or qname == "numpy.float16":
        out.append(_narrow(info, node, qname))
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
        and node.args
    ):
        target = node.args[0]
        tq = qualified_name(target, aliases)
        if tq in ("numpy.float32", "numpy.float16") or (
            isinstance(target, ast.Constant) and target.value in _NARROW_DTYPES
        ):
            out.append(_narrow(info, node, tq or repr(target.value)))
    return out


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_unordered(expr: ast.expr, aliases: dict[str, str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        qname = qualified_name(expr.func, aliases)
        if qname in ("set", "frozenset"):
            return True
    if isinstance(expr, ast.GeneratorExp):
        return any(
            _is_unordered(gen.iter, aliases) for gen in expr.generators
        )
    return False


def _narrow(info: ModuleInfo, node: ast.AST, spelled: str) -> Violation:
    return Violation(
        "VEC-NARROW",
        info.path,
        node.lineno,
        node.col_offset,
        f"float narrowing via `{spelled}` in a kernel module",
        "keep kernel math in float64; narrow only at export boundaries",
    )
