"""Project-wide analysis model: modules, definitions, imports, resolver.

The per-file passes see one :class:`~repro.analysis.model.ModuleInfo` at
a time; the flow-aware passes (CONC-*, API-SNAPSHOT) need the whole
picture: which modules exist, which functions and classes they define,
what each module imports, and how a name used in one module resolves to
a definition in another.  :class:`ProjectModel` bundles exactly that —
it is a pure function of the parsed modules, so synthetic test trees
exercise it the same way the real package does.

Resolution is *bounded* by design: it follows explicit import bindings
(``import repro.x``, ``from repro.x import y``) and same-module
definitions, one level of re-export indirection, and nothing dynamic.
The limits (no ``__getattr__`` shims, no star-imports, no attribute
flow through containers) are documented behaviour and pinned by
``tests/analysis/test_project.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutils import alias_map
from repro.analysis.model import ModuleInfo

#: Upper bound on re-export hops the resolver follows (``from a import
#: f`` where ``a`` itself imported ``f`` from ``b``, ...).  Deep chains
#: are a smell, not a feature; the bound keeps resolution terminating on
#: adversarial inputs.
MAX_REEXPORT_HOPS = 4


@dataclass
class FunctionInfo:
    """One function or method definition in the project.

    ``qname`` is the fully qualified dotted name —
    ``repro.parallel.jobs.run_job`` for a module-level function,
    ``repro.sim.engine.Engine.schedule_at`` for a method.
    """

    qname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool = False
    class_name: str = ""


@dataclass
class ClassInfo:
    """One class definition: its methods, keyed by bare name."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class ProjectModel:
    """Cross-module index over a set of parsed ``repro`` modules.

    Attributes
    ----------
    modules:
        ``dotted name -> ModuleInfo`` for every ``repro.*`` module seen.
    functions:
        ``qname -> FunctionInfo`` for every function and method.
    classes:
        ``qname -> ClassInfo``.
    methods_by_name:
        ``bare name -> [FunctionInfo]`` over methods only — the
        name-matching fallback the call graph uses for ``obj.m(...)``
        calls it cannot type.
    module_globals:
        ``module -> names bound at module level`` (assignment targets;
        the mutable-state surface the CONC pass checks against).
    import_graph:
        ``module -> set of repro modules it imports`` (module- and
        function-level alike; an edge means "loading/running A may load
        B").
    """

    def __init__(self, infos: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.module_globals: dict[str, set[str]] = {}
        self.import_graph: dict[str, set[str]] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        #: ``module -> {local name -> canonical dotted target}`` for
        #: ``from x import y`` bindings only (re-export following).
        self._from_imports: dict[str, dict[str, str]] = {}
        for info in infos:
            if info.module.split(".")[0] != "repro":
                continue
            self._index_module(info)

    # -- construction -------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        module = info.module
        self.modules[module] = info
        self.aliases[module] = alias_map(info.tree)
        self.module_globals[module] = set()
        self.import_graph[module] = set()
        self._from_imports[module] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name.split(".")[0] == "repro":
                        self.import_graph[module].add(name.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0 and (
                    node.module.split(".")[0] == "repro"
                ):
                    self.import_graph[module].add(node.module)
                    for name in node.names:
                        if name.name == "*":
                            continue
                        local = name.asname or name.name
                        self._from_imports[module][local] = (
                            f"{node.module}.{name.name}"
                        )
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._add_global_target(module, target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                self._add_global_target(module, node.target)

    def _add_global_target(self, module: str, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.module_globals[module].add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._add_global_target(module, elt)

    def _add_function(
        self, module: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        info = FunctionInfo(
            qname=f"{module}.{node.name}", module=module, name=node.name,
            node=node,
        )
        self.functions[info.qname] = info

    def _add_class(self, module: str, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qname=f"{module}.{node.name}", module=module, name=node.name,
            node=node,
        )
        self.classes[cls.qname] = cls
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qname=f"{cls.qname}.{child.name}",
                    module=module,
                    name=child.name,
                    node=child,
                    is_method=True,
                    class_name=node.name,
                )
                cls.methods[child.name] = method
                self.functions[method.qname] = method
                self.methods_by_name.setdefault(child.name, []).append(method)

    # -- queries ------------------------------------------------------------

    def module_of_path(self, path: str) -> ModuleInfo | None:
        """The indexed module whose ``path`` matches, if any."""
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted use in ``module`` to a project qname.

        ``dotted`` is the *canonical* path produced by
        :func:`~repro.analysis.astutils.qualified_name` (aliases already
        expanded) or a bare local name.  Returns the qname of a function
        or class defined in the project, following at most
        :data:`MAX_REEXPORT_HOPS` ``from x import y`` re-export hops, or
        ``None`` when the name does not resolve statically.
        """
        seen: set[str] = set()
        for _ in range(MAX_REEXPORT_HOPS):
            if dotted in seen:
                return None
            seen.add(dotted)
            if dotted.split(".")[0] != "repro":
                # A bare local name: qualify against the using module.
                dotted = f"{module}.{dotted}"
            if dotted in self.functions or dotted in self.classes:
                return dotted
            # repro.pkg.mod.func -> is repro.pkg.mod an indexed module
            # that defines (or re-exports) `func`?
            owner, _, leaf = dotted.rpartition(".")
            if not owner or owner not in self.modules:
                return None
            if f"{owner}.{leaf}" in self.functions:
                return f"{owner}.{leaf}"
            reexport = self._from_imports.get(owner, {}).get(leaf)
            if reexport is None:
                return None
            module, dotted = owner, reexport
        return None

    def resolve_entry_points(
        self, entry_points: tuple[str, ...]
    ) -> list[FunctionInfo]:
        """The declared entry points present in this project.

        Missing entries are skipped (a partial lint run — examples only,
        a synthetic tree — simply has no worker surface).
        """
        out = []
        for entry in entry_points:
            qname = self.resolve(entry.rsplit(".", 1)[0], entry)
            if qname is not None and qname in self.functions:
                out.append(self.functions[qname])
        return out


def build_project(infos: list[ModuleInfo]) -> ProjectModel:
    """Construct the :class:`ProjectModel` over parsed modules."""
    return ProjectModel(infos)
