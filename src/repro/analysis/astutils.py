"""Small AST helpers shared by the lint passes.

The passes match *qualified names*: ``np.random.default_rng`` must be
recognised whatever the module imported ``numpy`` as.  :func:`alias_map`
collects every import binding in a module and :func:`qualified_name`
resolves a ``Name``/``Attribute`` chain through those bindings to its
canonical dotted path.
"""

from __future__ import annotations

import ast
from typing import Iterator


def alias_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted paths for every import.

    ``import numpy as np`` binds ``np → numpy``; ``from time import
    perf_counter as pc`` binds ``pc → time.perf_counter``.  Relative
    imports are left package-less (the layering pass resolves those
    against the module path itself).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def qualified_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of a ``Name``/``Attribute`` chain, if any.

    ``np.random.default_rng`` with ``np → numpy`` resolves to
    ``numpy.random.default_rng``.  Non-name expressions (calls,
    subscripts) yield ``None``.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def walk_outside_type_checking(tree: ast.Module) -> Iterator[ast.AST]:
    """``ast.walk`` skipping ``if TYPE_CHECKING:`` bodies.

    Annotation-only imports never execute, so runtime-behaviour rules
    (layering, determinism) must not fire on them.
    """
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                stack.extend(child.orelse)
                continue
            stack.append(child)


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def enclosing_function_lines(tree: ast.Module) -> set[int]:
    """Line numbers that fall inside any function or method body.

    Used to tell module-load-time imports (strict layering) from lazy,
    call-time imports (allowed only where the contract says so).
    """
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = node.end_lineno or node.lineno
            lines.update(range(node.lineno, end + 1))
    return lines
