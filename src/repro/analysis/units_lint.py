"""Unit-safety lint: seconds and milliseconds must not silently mix.

The simulator keeps every internal quantity in SI units (seconds); the
paper presents latencies in milliseconds and eq. 3 mixes both.  One
unlabelled factor of 1000 in the deadline math of eqs. 1-2 shifts every
reported miss ratio, so :mod:`repro.units` is the single sanctioned
conversion point and names carry their unit as a suffix:

``UNIT-MIX``
    Addition, subtraction or comparison between names whose unit
    suffixes disagree (``x_ms + y_s``, ``deadline_s < latency_ms``).
``UNIT-CONV``
    Inline magic-number conversion (``* 1e3``, ``/ 1000.0``, ``* 1e-3``)
    outside :mod:`repro.units`; use ``s_to_ms``/``ms_to_s``/``MS``.
``UNIT-NAME``
    A function parameter named bare ``deadline``/``latency``/``period``
    etc. in the timing-math packages; suffix it (``deadline_s``) so call
    sites read unambiguously.
"""

from __future__ import annotations

import ast

from repro.analysis.model import ModuleInfo, Rule, Violation

RULES = (
    Rule(
        "UNIT-MIX",
        "no arithmetic across disagreeing unit suffixes",
        "adding or comparing seconds to milliseconds is the factor-of-1000 "
        "bug class the units module exists to prevent",
    ),
    Rule(
        "UNIT-CONV",
        "unit conversions go through repro.units",
        "a bare * 1e3 hides which unit is which; the helpers name both "
        "ends of the conversion",
    ),
    Rule(
        "UNIT-NAME",
        "time-valued parameters carry a unit suffix",
        "a bare `deadline` parameter forces every caller to re-derive the "
        "unit from documentation; `deadline_s` makes it part of the API",
    ),
)

#: Recognised unit suffixes → canonical unit tag.
SUFFIXES = {
    "_s": "s",
    "_ms": "ms",
    "_us": "us",
    "_ns": "ns",
    "_bytes": "bytes",
    "_bits": "bits",
    "_bps": "bps",
    "_mbps": "mbps",
    "_pct": "pct",
    "_tracks": "tracks",
}

#: Packages where the parameter-naming rule applies (the timing math).
NAME_SCOPED_PACKAGES = frozenset(
    {"sim", "tasks", "cluster", "runtime", "workloads", "regression", "core"}
)

#: Parameter names that denote a time quantity but carry no unit.
BARE_TIME_NAMES = frozenset(
    {"latency", "deadline", "delay", "interval", "timeout", "duration",
     "elapsed", "period"}
)

#: Magic constants that smell like a time-unit conversion.
_CONVERSION_CONSTANTS = (1000, 1000.0, 1e3, 0.001, 1e-3)

#: Modules allowed to convert with raw constants (the conversion module
#: itself).
WHITELISTED_MODULES = frozenset({"repro.units"})


def check(info: ModuleInfo) -> list[Violation]:
    """Run the unit-safety rules over one module."""
    if not info.module.startswith("repro"):
        return []
    violations: list[Violation] = []
    conv_allowed = info.module in WHITELISTED_MODULES
    name_scoped = info.package() in NAME_SCOPED_PACKAGES
    for node in ast.walk(info.tree):
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                violations.extend(_check_mix(info, node.left, node.right, node))
            if not conv_allowed and isinstance(node.op, (ast.Mult, ast.Div)):
                violations.extend(_check_conversion(info, node))
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for left, right in zip(operands, operands[1:]):
                violations.extend(_check_mix(info, left, right, node))
        elif name_scoped and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            violations.extend(_check_params(info, node))
    return violations


def _unit_of(expr: ast.expr) -> str | None:
    """Unit tag of a name/attribute operand, from its suffix."""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    else:
        return None
    for suffix, unit in SUFFIXES.items():
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


def _check_mix(
    info: ModuleInfo, left: ast.expr, right: ast.expr, node: ast.AST
) -> list[Violation]:
    left_unit = _unit_of(left)
    right_unit = _unit_of(right)
    if left_unit is None or right_unit is None or left_unit == right_unit:
        return []
    return [
        Violation(
            "UNIT-MIX",
            info.path,
            getattr(node, "lineno", left.lineno),
            getattr(node, "col_offset", left.col_offset),
            f"operands mix units `{left_unit}` and `{right_unit}`",
            "convert through repro.units so both sides agree",
        )
    ]


def _check_conversion(info: ModuleInfo, node: ast.BinOp) -> list[Violation]:
    for operand in (node.left, node.right):
        if isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float)
        ):
            if any(operand.value == c for c in _CONVERSION_CONSTANTS):
                # 1000 as a divisor of the *right* operand of Div is a
                # conversion too; position does not matter.
                return [
                    Violation(
                        "UNIT-CONV",
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"magic conversion constant {operand.value!r}",
                        "use repro.units (s_to_ms / ms_to_s / MS) instead",
                    )
                ]
    return []


def _check_params(
    info: ModuleInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[Violation]:
    out = []
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in BARE_TIME_NAMES:
            out.append(
                Violation(
                    "UNIT-NAME",
                    info.path,
                    arg.lineno,
                    arg.col_offset,
                    f"time-valued parameter `{arg.arg}` has no unit suffix",
                    f"rename to `{arg.arg}_s` (internal convention: seconds)",
                )
            )
    return out
