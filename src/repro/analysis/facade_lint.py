"""Facade-drift lint: the stable public surface (API-*).

``repro.api`` is the one supported entry point; everything else may
move.  Two failure modes erode that guarantee and both are statically
checkable:

``API-DEPRECATED``
    An *internal* module imports or references one of the deprecated
    compatibility shims (``[deprecated] names`` in ``layering.toml``,
    e.g. ``repro.build_estimator``).  The shims exist so external
    callers survive one release cycle; internal code reaching through
    them resurrects the old surface and blocks its removal.
``API-SNAPSHOT``
    ``repro.api.__all__`` drifts from the reviewed snapshot
    (``tests/public_api_snapshot.txt``).  The comparison is static —
    the ``__all__`` list literal is read from the AST, never imported —
    so the check runs identically in the linter and in CI.  One
    violation per missing/extra name keeps the diff reviewable.
"""

from __future__ import annotations

import ast
import os

from repro.analysis.astutils import alias_map, qualified_name
from repro.analysis.layering import LayeringContract
from repro.analysis.model import ModuleInfo, Rule, Violation
from repro.analysis.project import ProjectModel

RULES = (
    Rule(
        "API-DEPRECATED",
        "internal code must not use deprecated shims",
        "the shims exist only to give external callers a migration "
        "window; internal uses resurrect the old surface and block "
        "its removal",
    ),
    Rule(
        "API-SNAPSHOT",
        "repro.api.__all__ must match the reviewed snapshot",
        "the facade is the compatibility contract — silent additions "
        "or removals ship an unreviewed API change",
    ),
)


# -- API-DEPRECATED (per-file) ----------------------------------------------


def check(
    info: ModuleInfo, contract: LayeringContract
) -> list[Violation]:
    """Flag imports/references of deprecated shim names in ``info``.

    Only internal ``repro.*`` modules are checked — examples and
    scripts mimic external callers and may exercise the shims on
    purpose (their own deprecation warnings cover them).
    """
    if not contract.deprecated or info.module.split(".")[0] != "repro":
        return []
    violations: list[Violation] = []
    seen: set[tuple[int, str]] = set()

    def flag(node: ast.AST, shim: str) -> None:
        key = (node.lineno, shim)
        if key in seen:
            return
        seen.add(key)
        violations.append(
            Violation(
                "API-DEPRECATED",
                info.path,
                node.lineno,
                node.col_offset,
                f"internal use of deprecated shim `{shim}`",
                "call the replacement exported by repro.api instead",
            )
        )

    aliases = alias_map(info.tree)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for name in node.names:
                shim = f"{node.module}.{name.name}"
                if shim in contract.deprecated:
                    flag(node, shim)
        elif isinstance(node, ast.Attribute):
            qname = qualified_name(node, aliases)
            if qname in contract.deprecated:
                flag(node, qname)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            qname = aliases.get(node.id)
            if qname in contract.deprecated:
                flag(node, qname)
    return violations


# -- API-SNAPSHOT (project pass) --------------------------------------------


def check_project(
    project: ProjectModel, contract: LayeringContract
) -> list[Violation]:
    """Compare the static ``repro.api.__all__`` against the snapshot."""
    if not contract.facade_snapshot:
        return []
    info = project.modules.get("repro.api")
    if info is None:
        return []
    snapshot_path = _locate_snapshot(info.path, contract.facade_snapshot)
    if snapshot_path is None:
        return []
    exported = _static_all(info)
    if exported is None:
        return [
            Violation(
                "API-SNAPSHOT",
                info.path,
                1,
                0,
                "repro.api.__all__ is not a static list of string "
                "literals",
                "keep __all__ a plain list literal so the facade is "
                "statically checkable",
            )
        ]
    with open(snapshot_path, encoding="utf-8") as fh:
        expected = {line.strip() for line in fh if line.strip()}
    violations: list[Violation] = []
    for name in sorted(set(exported) - expected):
        violations.append(
            Violation(
                "API-SNAPSHOT",
                info.path,
                exported[name],
                0,
                f"`{name}` is exported by repro.api but missing from "
                f"{contract.facade_snapshot}",
                "add it to the snapshot in the same PR that reviews "
                "the API addition",
            )
        )
    for name in sorted(expected - set(exported)):
        violations.append(
            Violation(
                "API-SNAPSHOT",
                info.path,
                1,
                0,
                f"`{name}` is in {contract.facade_snapshot} but no "
                "longer exported by repro.api",
                "removing a public name needs a deprecation cycle and "
                "a snapshot update",
            )
        )
    return violations


def _static_all(info: ModuleInfo) -> dict[str, int] | None:
    """``__all__`` entries -> line number, read from the AST only."""
    for node in info.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if not isinstance(node.value, (ast.List, ast.Tuple)):
                    return None
                out: dict[str, int] = {}
                for elt in node.value.elts:
                    if not (
                        isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ):
                        return None
                    out[elt.value] = elt.lineno
                return out
    return None


def _locate_snapshot(api_path: str, relative: str) -> str | None:
    """Find the snapshot file relative to plausible repo roots.

    ``api_path`` is ``<root>/src/repro/api.py`` in the real layout or
    ``<root>/repro/api.py`` in synthetic test trees; the snapshot lives
    at ``<root>/<relative>``.  Returns ``None`` (rule skipped) when no
    candidate exists, e.g. when linting a lone file outside a repo.
    """
    repro_dir = os.path.dirname(os.path.abspath(api_path))
    candidates = [
        os.path.dirname(repro_dir),
        os.path.dirname(os.path.dirname(repro_dir)),
    ]
    for root in candidates:
        path = os.path.join(root, relative)
        if os.path.isfile(path):
            return path
    return None
