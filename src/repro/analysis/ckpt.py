"""Checkpoint-safety lint: snapshot-reachable state must pickle.

:mod:`repro.recovery` snapshots a run by pickling the whole world —
engine calendar, rng streams, cluster, controller, telemetry — as one
object.  Anything on that graph that cannot pickle turns the *first
checkpoint* into a crash, and anything that pickles by reference to a
vanished local scope fails even later, at restore.  These rules move
both failures to lint time, scoped to the packages a snapshot can reach
(:data:`SNAPSHOT_SCOPE`):

``CKPT-LAMBDA-CB``
    A ``lambda`` passed to the engine scheduling surface
    (``schedule``/``schedule_at``/``schedule_many``/``every``).  The
    calendar pickles its callbacks *and their arguments*; lambdas
    cannot pickle.
``CKPT-LOCAL-CB``
    A function defined inside another function passed to the
    scheduling surface — closures pickle by reference to a module
    attribute that does not exist.
``CKPT-HANDLE``
    A class in snapshot scope that stores an OS-level resource (open
    file handle, thread, lock) on ``self`` without defining
    ``__getstate__``/``__reduce__`` to exclude or re-open it (the
    :class:`~repro.telemetry.sinks.JsonlTraceSink` pattern).
"""

from __future__ import annotations

import ast

from repro.analysis.model import ModuleInfo, Rule, Violation

RULES = (
    Rule(
        "CKPT-LAMBDA-CB",
        "no lambdas on the engine calendar",
        "checkpoints pickle the calendar; a scheduled lambda makes the "
        "first snapshot raise instead of the run resuming",
    ),
    Rule(
        "CKPT-LOCAL-CB",
        "calendar callbacks must be module-level or bound methods",
        "a closure scheduled on the calendar pickles by reference to a "
        "local scope that no longer exists at restore time",
    ),
    Rule(
        "CKPT-HANDLE",
        "snapshot-reachable classes holding OS resources need __getstate__",
        "open files, threads and locks cannot cross the pickle boundary; "
        "without __getstate__/__reduce__ the first checkpoint crashes "
        "the run",
    ),
)

#: Packages a :func:`repro.recovery.take_snapshot` payload can reach.
SNAPSHOT_SCOPE = frozenset(
    {
        "sim",
        "cluster",
        "runtime",
        "core",
        "tasks",
        "workloads",
        "chaos",
        "recovery",
        "telemetry",
        "experiments",
    }
)

#: Engine methods whose arguments land on the pickled calendar.
SCHEDULING_SURFACE = frozenset(
    {"schedule", "schedule_at", "schedule_many", "every"}
)

#: Keywords of the scheduling surface that are never pickled payloads.
NON_PAYLOAD_KEYWORDS = frozenset({"priority", "label", "labels", "start_delay"})

#: Constructor names whose results are OS resources (not picklable).
HANDLE_FACTORIES = frozenset(
    {"open", "Lock", "RLock", "Event", "Condition", "Semaphore", "Thread"}
)

#: Dunder methods that let a class control its pickled form.
PICKLE_HOOKS = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__"}
)


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions."""
    local: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local.add(inner.name)
    return local


def check(info: ModuleInfo) -> list[Violation]:
    """Run the checkpoint-safety rules over one module."""
    if not info.module.startswith("repro"):
        return []
    if info.package() not in SNAPSHOT_SCOPE:
        return []
    violations: list[Violation] = []
    local_funcs = _local_function_names(info.tree)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            if callee in SCHEDULING_SURFACE:
                violations.extend(_check_callback_args(info, node, callee, local_funcs))
        elif isinstance(node, ast.ClassDef):
            violations.extend(_check_handle_state(info, node))
    return violations


def _check_callback_args(
    info: ModuleInfo,
    node: ast.Call,
    callee: str,
    local_funcs: set[str],
) -> list[Violation]:
    out: list[Violation] = []
    kw_values = [
        kw.value
        for kw in node.keywords
        if kw.arg not in NON_PAYLOAD_KEYWORDS
    ]
    for arg in [*node.args, *kw_values]:
        if isinstance(arg, ast.Lambda):
            out.append(
                Violation(
                    "CKPT-LAMBDA-CB",
                    info.path,
                    arg.lineno,
                    arg.col_offset,
                    f"lambda passed to `{callee}` lands on the pickled "
                    "calendar",
                    "use a bound method or a module-level callable class",
                )
            )
        elif isinstance(arg, ast.Name) and arg.id in local_funcs:
            out.append(
                Violation(
                    "CKPT-LOCAL-CB",
                    info.path,
                    arg.lineno,
                    arg.col_offset,
                    f"locally-defined function `{arg.id}` passed to "
                    f"`{callee}` cannot be restored from a snapshot",
                    "hoist it to module level or make it a method",
                )
            )
    return out


def _check_handle_state(
    info: ModuleInfo, klass: ast.ClassDef
) -> list[Violation]:
    """Flag classes that stash OS resources on ``self`` with no
    ``__getstate__``/``__reduce__`` to keep them out of snapshots."""
    has_hook = any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name in PICKLE_HOOKS
        for item in klass.body
    )
    if has_hook:
        return []
    out: list[Violation] = []
    for node in ast.walk(klass):
        if not isinstance(node, ast.Assign):
            continue
        stores_on_self = any(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in node.targets
        )
        if not stores_on_self:
            continue
        for call in ast.walk(node.value):
            if (
                isinstance(call, ast.Call)
                and _callee_name(call.func) in HANDLE_FACTORIES
            ):
                out.append(
                    Violation(
                        "CKPT-HANDLE",
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"class `{klass.name}` stores a "
                        f"`{_callee_name(call.func)}(...)` result on self "
                        "without __getstate__",
                        "exclude the handle from pickling and re-open it "
                        "on restore (see JsonlTraceSink)",
                    )
                )
                break
    return out
