"""Per-line violation suppression: ``# repro: noqa RULE-ID``.

A violation is suppressed when the physical line it points at carries a
suppression comment naming its rule id (or a bare ``# repro: noqa``,
which silences every rule on that line).  Suppressions are deliberate,
reviewable exceptions — e.g. the wall-clock accounting in
:mod:`repro.parallel.jobs` carries ``# repro: noqa DET-TIME`` because it
measures the *host*, not the simulation.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.model import ModuleInfo, Violation

#: The suppression marker, optionally followed by a comma/space
#: separated rule list.  (Spelled indirectly here: a literal marker in
#: a real comment would register as a live suppression.)
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<rules>[ \t]+[A-Z][A-Z0-9-]*(?:[,\s]+[A-Z][A-Z0-9-]*)*)?",
)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules suppressed on ``line``.

    Returns ``None`` when the line has no suppression comment, an empty
    set for a bare ``# repro: noqa`` (suppress everything), else the
    named rule ids.
    """
    match = _NOQA.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(re.split(r"[,\s]+", rules.strip()))


def is_suppressed(violation: Violation, info: ModuleInfo) -> bool:
    """Whether ``violation`` is silenced by a comment on its line."""
    if not 1 <= violation.line <= len(info.lines):
        return False
    rules = suppressed_rules(info.lines[violation.line - 1])
    if rules is None:
        return False
    return not rules or violation.rule_id in rules


def filter_suppressed(
    violations: list[Violation], info: ModuleInfo
) -> list[Violation]:
    """Drop violations silenced by suppression comments."""
    return [v for v in violations if not is_suppressed(v, info)]


@dataclass(frozen=True)
class NoqaComment:
    """One real suppression *comment* (not a docstring mention).

    ``rules`` follows the :func:`suppressed_rules` convention: an empty
    tuple means a bare ``# repro: noqa`` that silences every rule.
    """

    line: int
    col: int
    rules: tuple[str, ...]


def iter_noqa_comments(source: str) -> list[NoqaComment]:
    """Suppression comments in ``source``, via the tokenizer.

    Unlike the line-regex used for matching (which is deliberately
    forgiving), this walks COMMENT tokens only, so a docstring that
    *mentions* ``# repro: noqa`` — as this module's own docs do — is
    not mistaken for a live suppression.  Sources that fail to tokenize
    yield nothing (the parser will have reported them already).
    """
    out: list[NoqaComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            rules = suppressed_rules(tok.string)
            if rules is None:
                continue
            out.append(
                NoqaComment(
                    line=tok.start[0],
                    col=tok.start[1],
                    rules=tuple(sorted(rules)),
                )
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return out


def unused_noqa(
    comments: list[NoqaComment],
    raw_violations: list[Violation],
    known_rules: frozenset[str],
) -> list[tuple[NoqaComment, str]]:
    """Suppression comments that silence nothing (LINT-UNUSED-NOQA).

    ``raw_violations`` must be the *pre-suppression* findings for the
    same file.  Returns ``(comment, reason)`` pairs: a comment is stale
    when no raw violation on its line matches any of its rules, and a
    named rule id the engine does not know is always stale (typo'd ids
    would otherwise silently rot).
    """
    by_line: dict[int, set[str]] = {}
    for violation in raw_violations:
        by_line.setdefault(violation.line, set()).add(violation.rule_id)
    out: list[tuple[NoqaComment, str]] = []
    for comment in comments:
        hits = by_line.get(comment.line, set())
        unknown = [r for r in comment.rules if r not in known_rules]
        if unknown:
            out.append(
                (comment, f"unknown rule id `{unknown[0]}`")
            )
            continue
        if not comment.rules:
            if not hits:
                out.append(
                    (comment, "bare noqa on a line with no findings")
                )
            continue
        if not hits.intersection(comment.rules):
            out.append(
                (
                    comment,
                    "suppresses "
                    + ", ".join(comment.rules)
                    + " but the line raises nothing",
                )
            )
    return out
