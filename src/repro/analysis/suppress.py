"""Per-line violation suppression: ``# repro: noqa RULE-ID``.

A violation is suppressed when the physical line it points at carries a
suppression comment naming its rule id (or a bare ``# repro: noqa``,
which silences every rule on that line).  Suppressions are deliberate,
reviewable exceptions — e.g. the wall-clock accounting in
:mod:`repro.parallel.jobs` carries ``# repro: noqa DET-TIME`` because it
measures the *host*, not the simulation.
"""

from __future__ import annotations

import re

from repro.analysis.model import ModuleInfo, Violation

#: ``# repro: noqa`` optionally followed by a comma/space separated rule list.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<rules>[ \t]+[A-Z][A-Z0-9-]*(?:[,\s]+[A-Z][A-Z0-9-]*)*)?",
)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules suppressed on ``line``.

    Returns ``None`` when the line has no suppression comment, an empty
    set for a bare ``# repro: noqa`` (suppress everything), else the
    named rule ids.
    """
    match = _NOQA.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(re.split(r"[,\s]+", rules.strip()))


def is_suppressed(violation: Violation, info: ModuleInfo) -> bool:
    """Whether ``violation`` is silenced by a comment on its line."""
    if not 1 <= violation.line <= len(info.lines):
        return False
    rules = suppressed_rules(info.lines[violation.line - 1])
    if rules is None:
        return False
    return not rules or violation.rule_id in rules


def filter_suppressed(
    violations: list[Violation], info: ModuleInfo
) -> list[Violation]:
    """Drop violations silenced by suppression comments."""
    return [v for v in violations if not is_suppressed(v, info)]
