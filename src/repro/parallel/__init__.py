"""Process-pool execution layer for experiment campaigns.

The science loop — profile, fit, sweep, replicate — is embarrassingly
parallel across experiment runs.  This package fans runs out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping results
**bit-identical to serial execution**:

* :mod:`repro.parallel.pool` — the generic order-preserving
  :func:`map_jobs` core (``n_jobs=1`` is the exact in-process path);
* :mod:`repro.parallel.jobs` — picklable :class:`JobSpec`/:class:`JobResult`
  descriptors and the :func:`run_job` worker entry point;
* :mod:`repro.parallel.dispatch` — estimator-cache warming plus
  dispatch for sweeps, replications and campaigns;
* :mod:`repro.parallel.shards` — round-robin sharding for large
  campaigns of short runs (few processes, many runs each, merged back
  into input order).

See DESIGN.md ("Parallel execution subsystem") for the seed-derivation
and shared-estimator rationale.
"""

from repro.parallel.dispatch import run_configs_parallel
from repro.parallel.jobs import JobResult, JobSpec, run_job
from repro.parallel.pool import JobFailure, effective_n_jobs, map_jobs
from repro.parallel.shards import ShardPlan, plan_shards, run_shard, run_sharded

__all__ = [
    "JobFailure",
    "JobResult",
    "JobSpec",
    "ShardPlan",
    "effective_n_jobs",
    "map_jobs",
    "plan_shards",
    "run_configs_parallel",
    "run_job",
    "run_shard",
    "run_sharded",
]
