"""Experiment-aware fan-out: warm the estimator cache, then map jobs.

:func:`run_configs_parallel` is the shared engine behind
``sweep_workloads(n_jobs=...)``, ``replicate_experiment(n_jobs=...)``
and :mod:`repro.experiments.campaign`: it fits (or reuses) one
estimator per distinct baseline in the parent, persists the models to a
disk cache, and dispatches :class:`~repro.parallel.jobs.JobSpec`\\ s to
the pool so workers only ever *load* fits.
"""

from __future__ import annotations

import contextlib
import tempfile
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.experiments import estimator_cache
from repro.experiments.config import ExperimentConfig
from repro.parallel.jobs import JobResult, JobSpec, run_job
from repro.parallel.pool import OnResult, map_jobs
from repro.regression.estimator import TimingEstimator


@contextlib.contextmanager
def _cache_dir(cache_dir: str | Path | None) -> Iterator[Path]:
    """The given cache directory, or a temporary one torn down after use."""
    if cache_dir is not None:
        path = Path(cache_dir)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"cache dir {str(cache_dir)!r} is not a usable directory"
            ) from exc
        yield path
        return
    with tempfile.TemporaryDirectory(prefix="repro-estimators-") as tmp:
        yield Path(tmp)


def run_configs_parallel(
    configs: Sequence[ExperimentConfig],
    n_jobs: int,
    cache_dir: str | Path | None = None,
    estimator: TimingEstimator | None = None,
    seed_offsets: Sequence[int] | None = None,
    repetitions: int = 2,
    tags: Sequence[str] | None = None,
    on_result: OnResult | None = None,
    shards: int = 0,
    retries: int = 0,
) -> list[JobResult]:
    """Run every config (paired with its seed offset) across the pool.

    The parent warms the estimator cache once per distinct baseline —
    with ``estimator`` given, those exact models are persisted for every
    baseline, mirroring the serial convention that an explicit estimator
    is shared across a whole sweep.  Results return in config order.

    ``shards >= 1`` switches from one-job-per-worker-task dispatch to
    :func:`repro.parallel.shards.run_sharded`: the job list splits
    round-robin into that many groups, each running serially inside one
    worker process — cheaper per run for large campaigns of short runs,
    and still byte-identical to serial (``shards`` overrides
    ``n_jobs``; the seed of every job is derived before dispatch).

    ``retries > 0`` arms :func:`~repro.parallel.pool.map_jobs`'s
    crash-tolerant mode: died-worker jobs are resubmitted boundedly and
    unrecoverable slots return as
    :class:`~repro.parallel.pool.JobFailure` records (not supported
    together with ``shards``).
    """
    configs = list(configs)
    if seed_offsets is None:
        seed_offsets = [0] * len(configs)
    if len(seed_offsets) != len(configs):
        raise ConfigurationError(
            f"{len(configs)} configs but {len(seed_offsets)} seed offsets"
        )
    if tags is not None and len(tags) != len(configs):
        raise ConfigurationError(f"{len(configs)} configs but {len(tags)} tags")
    with _cache_dir(cache_dir) as cdir:
        seen = set()
        for config in configs:
            key = estimator_cache.cache_key(config.baseline, repetitions)
            if key in seen:
                continue
            seen.add(key)
            estimator_cache.warm(
                config.baseline, cdir, estimator=estimator, repetitions=repetitions
            )
        specs = [
            JobSpec(
                config=config,
                seed_offset=int(offset),
                repetitions=repetitions,
                cache_dir=str(cdir),
                tag="" if tags is None else tags[i],
            )
            for i, (config, offset) in enumerate(zip(configs, seed_offsets))
        ]
        if shards >= 1:
            if retries > 0:
                raise ConfigurationError(
                    "retries are not supported with sharded dispatch; "
                    "use per-job dispatch (shards=0) for crash tolerance"
                )
            from repro.parallel.shards import run_sharded

            return run_sharded(specs, shards, on_result=on_result)
        return map_jobs(
            specs,
            n_jobs=n_jobs,
            worker=run_job,
            on_result=on_result,
            retries=retries,
        )
