"""Sharded campaign execution: few processes, many runs each.

:func:`repro.parallel.pool.map_jobs` dispatches one experiment per
worker task, which is right when runs are long; a large campaign of
*short* runs pays per-task pickling and scheduling overhead instead.
Sharding flips the granularity: the job list is split round-robin into
``n_shards`` groups, each shard runs its runs **serially inside one
worker process**, and the parent merges per-run results back into input
order.

Determinism is preserved by construction:

* **seed-stream split** — every :class:`~repro.parallel.jobs.JobSpec`
  carries its full RNG derivation (``baseline.seed + seed_offset``)
  fixed *before* dispatch, so a run's random streams are independent of
  which shard executes it;
* **order-independent merge** — shard workers return ``(original
  index, result)`` pairs and the parent reassembles by index, so the
  merged list is identical whatever order shards finish in.

Sharded results are therefore byte-identical to a serial run of the
same specs (``tests/parallel/test_shards.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.parallel.jobs import JobResult, JobSpec, run_job
from repro.parallel.pool import OnResult, map_jobs


@dataclass(frozen=True)
class ShardPlan:
    """A round-robin split of ``n_items`` jobs into ``n_shards`` groups.

    Item ``i`` lands in shard ``i % n_shards``, so shard sizes differ by
    at most one and a prefix of the job list (e.g. a campaign's
    canonical grid order) spreads evenly across shards.
    """

    n_items: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {self.n_items}")
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )

    def indices_of(self, shard: int) -> range:
        """Original-list indices assigned to ``shard`` (ascending)."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        return range(shard, self.n_items, self.n_shards)

    def shard_of(self, index: int) -> int:
        """The shard that owns original-list index ``index``."""
        if not 0 <= index < self.n_items:
            raise ConfigurationError(
                f"index must be in [0, {self.n_items}), got {index}"
            )
        return index % self.n_shards


def plan_shards(n_items: int, n_shards: int) -> ShardPlan:
    """Plan a round-robin split, clamping empty trailing shards away.

    Asking for more shards than items yields one shard per item — a
    plan never contains an empty shard.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    return ShardPlan(n_items=n_items, n_shards=max(1, min(n_shards, n_items)))


def run_shard(
    indexed_specs: Sequence[tuple[int, JobSpec]],
) -> list[tuple[int, JobResult]]:
    """Worker entry point: run one shard's specs serially, in order.

    Returns ``(original index, result)`` pairs so the parent can merge
    shards order-independently.  Module-level (no closures) so every
    multiprocessing start method can import it.
    """
    return [(index, run_job(spec)) for index, spec in indexed_specs]


def run_sharded(
    specs: Sequence[JobSpec],
    n_shards: int,
    on_result: OnResult | None = None,
) -> list[JobResult]:
    """Run every spec across ``n_shards`` worker processes.

    Each shard executes its round-robin slice of ``specs`` serially in
    one process; results come back in input order, byte-identical to
    ``[run_job(s) for s in specs]``.  ``on_result`` fires once per run
    after the merge, in input order (sharded workers buffer their
    shard's results, so true completion-order progress is not
    observable).
    """
    specs = list(specs)
    if not specs:
        return []
    plan = plan_shards(len(specs), n_shards)
    shard_jobs = [
        [(index, specs[index]) for index in plan.indices_of(shard)]
        for shard in range(plan.n_shards)
    ]
    shard_results = map_jobs(
        shard_jobs, n_jobs=plan.n_shards, worker=run_shard
    )
    merged: dict[int, JobResult] = {}
    for pairs in shard_results:
        for index, result in pairs:
            merged[index] = result
    results = [merged[index] for index in range(len(specs))]
    if on_result is not None:
        for index, result in enumerate(results):
            on_result(index, len(results), result)
    return results
