"""Picklable job descriptors and the worker entry point.

A :class:`JobSpec` names one experiment run — an
:class:`~repro.experiments.config.ExperimentConfig`, a seed offset, and
the estimator cache to load fitted models from.  :func:`run_job` is the
module-level function executed inside worker processes; it must stay
importable (no closures) so every start method (fork, spawn,
forkserver) can reach it.

Seed-derivation scheme
----------------------
A job's RNG state is fully determined by ``config.baseline.seed +
seed_offset``: the parent derives one offset per job (replication seed
``k`` maps to offset ``k``) *before* dispatch, so the random streams a
job consumes are independent of which worker runs it, in what order.
Workers never refit regression models — they load the parent-warmed
disk cache by configuration key — matching the paper's methodology of
one profiled model reused across every run of a study.
"""

from __future__ import annotations

import os
import resource
import sys
import time
from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.metrics import ExperimentMetrics


@dataclass(frozen=True)
class JobSpec:
    """One experiment run, picklable for dispatch to a worker process.

    Attributes
    ----------
    config:
        The full experiment descriptor.
    seed_offset:
        Added to ``config.baseline.seed`` (replication index).
    repetitions:
        Profiling repetitions — part of the estimator cache key.
    cache_dir:
        Directory of the parent-warmed estimator cache (``None`` lets
        the worker fit in-process; only sensible for one-off jobs).
    tag:
        Free-form label carried through to the result (campaign rows).
    """

    config: ExperimentConfig
    seed_offset: int = 0
    repetitions: int = 2
    cache_dir: str | None = None
    tag: str = ""


@dataclass(frozen=True)
class JobResult:
    """A finished job: metrics plus per-job execution accounting.

    ``decision_digest`` is the run's canonical decision-sequence hash
    (see :mod:`repro.experiments.history_index`); it travels with the
    result so engine- and sharding-equivalence checks can compare runs
    without shipping histories between processes.
    """

    spec: JobSpec
    metrics: ExperimentMetrics
    final_placement: dict[int, tuple[str, ...]]
    wall_clock_s: float
    max_rss_kb: int
    pid: int
    decision_digest: str = ""
    #: ``SloReport.as_dict()`` when the config armed SLO rules — plain
    #: JSON so the payload stays cheap to pickle across the pool.
    slo: dict | None = None


def _max_rss_kb() -> int:
    """Peak RSS of this process in KiB (``ru_maxrss`` is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def run_job(spec: JobSpec) -> JobResult:
    """Execute one :class:`JobSpec` (worker-process entry point)."""
    from repro.experiments.runner import run_experiment

    # Host-side accounting, not simulated time: the JobResult reports how
    # long the worker ran on the wall clock.
    start = time.perf_counter()  # repro: noqa DET-TIME
    estimator = get_estimator(
        spec.config.baseline,
        cache_dir=spec.cache_dir,
        repetitions=spec.repetitions,
    )
    result = run_experiment(
        spec.config, estimator=estimator, seed_offset=spec.seed_offset
    )
    return JobResult(
        spec=spec,
        metrics=result.metrics,
        final_placement=result.final_placement,
        wall_clock_s=time.perf_counter() - start,  # repro: noqa DET-TIME
        max_rss_kb=_max_rss_kb(),
        pid=os.getpid(),
        decision_digest=result.decision_digest,
        slo=result.slo.as_dict() if result.slo is not None else None,
    )
