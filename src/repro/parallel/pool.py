"""The process-pool core: order-preserving parallel map over jobs.

:func:`map_jobs` is deliberately generic — it knows nothing about
experiments, only that ``worker(job)`` must be picklable along with its
jobs and results.  Determinism guarantees:

* jobs are submitted in input order and results are reassembled in
  submission order, whatever order workers finish in;
* ``n_jobs=1`` bypasses multiprocessing entirely and runs the jobs
  in-process, in order (the exact pre-parallel code path);
* a failing job surfaces as :class:`~repro.errors.ParallelExecutionError`
  naming the job index, with the original exception chained.

With ``retries > 0`` the map becomes crash-tolerant instead: a job
whose worker process *dies* (SIGKILL, OOM — surfacing as
``BrokenProcessPool``) is resubmitted to a fresh pool up to ``retries``
extra times; a job that exhausts its retries, or raises a regular
exception inside the worker, occupies its result slot with a
:class:`JobFailure` record instead of aborting the whole map.  Because
a dead worker takes the entire pool down, every in-flight job is
charged one attempt when that happens — attempts stay bounded at
``retries + 1`` per job regardless of which job caused the crash.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, ParallelExecutionError

#: Progress callback: ``on_result(index, total, result)``; called as each
#: job finishes (completion order), before results are reassembled.
OnResult = Callable[[int, int, Any], None]


@dataclass(frozen=True)
class JobFailure:
    """A job slot that could not produce a result (``retries > 0`` mode).

    Attributes
    ----------
    index:
        The job's position in the input sequence.
    error:
        Human-readable cause (exception text, or the died-worker note).
    attempts:
        Times the job was submitted before giving up.
    """

    index: int
    error: str
    attempts: int


def effective_n_jobs(n_jobs: int) -> int:
    """Resolve a worker count: ``0``/negative means "all CPUs"."""
    if n_jobs >= 1:
        return n_jobs
    return os.cpu_count() or 1


def map_jobs(
    jobs: Sequence[Any],
    n_jobs: int = 1,
    worker: Callable[[Any], Any] | None = None,
    on_result: OnResult | None = None,
    max_in_flight: int | None = None,
    retries: int = 0,
) -> list[Any]:
    """Run ``worker(job)`` for every job, returning results in job order.

    Parameters
    ----------
    jobs:
        The job descriptors (picklable when ``n_jobs > 1``).
    n_jobs:
        Worker processes; ``1`` runs in-process (serial fallback),
        ``0`` or negative uses every CPU.
    worker:
        The job function (default: :func:`repro.parallel.jobs.run_job`).
        Must be an importable module-level callable for ``n_jobs > 1``.
    on_result:
        Optional ``(index, total, result)`` progress callback, invoked
        in *completion* order.
    max_in_flight:
        Cap on simultaneously submitted jobs (default: ``4 * n_jobs``),
        bounding parent-side memory for very large campaigns.
    retries:
        ``0`` (default): any failure raises
        :class:`~repro.errors.ParallelExecutionError` (the historical
        contract).  ``> 0``: crash-tolerant mode — died-worker jobs are
        resubmitted up to this many extra times, and unrecoverable
        slots come back as :class:`JobFailure` records instead of
        aborting the map (see the module docstring).
    """
    if worker is None:
        from repro.parallel.jobs import run_job

        worker = run_job
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    jobs = list(jobs)
    total = len(jobs)
    if not jobs:
        return []
    n_jobs = effective_n_jobs(n_jobs)
    if n_jobs == 1:
        results = []
        for index, job in enumerate(jobs):
            try:
                result = worker(job)
            except Exception as exc:
                if retries > 0:
                    results.append(
                        JobFailure(
                            index=index,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=1,
                        )
                    )
                    continue
                raise ParallelExecutionError(
                    f"job {index}/{total} failed in-process: {exc}"
                ) from exc
            if on_result is not None:
                on_result(index, total, result)
            results.append(result)
        return results

    window = max_in_flight if max_in_flight is not None else 4 * n_jobs
    if window < 1:
        raise ConfigurationError(f"max_in_flight must be >= 1, got {window}")
    results: dict[int, Any] = {}
    failures: dict[int, JobFailure] = {}
    attempts = [0] * total
    queue: deque[int] = deque(range(total))

    def give_up(index: int, error: str) -> None:
        if retries == 0:
            raise ParallelExecutionError(f"job {index}/{total} {error}")
        failures[index] = JobFailure(
            index=index, error=error, attempts=attempts[index]
        )

    def requeue_or_fail(index: int) -> None:
        # The worker died under this job (or its pool-mate's): charge
        # one attempt; resubmit while the budget lasts.
        if attempts[index] <= retries:
            queue.append(index)
        else:
            give_up(index, "worker process died (BrokenProcessPool)")

    pool = ProcessPoolExecutor(max_workers=min(n_jobs, total))
    in_flight: dict[Any, int] = {}
    try:
        while len(results) + len(failures) < total:
            while queue and len(in_flight) < window:
                index = queue.popleft()
                attempts[index] += 1
                future = pool.submit(worker, jobs[index])
                in_flight[future] = index
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index = in_flight.pop(future)
                exc = future.exception()
                if exc is None:
                    result = future.result()
                    if on_result is not None:
                        on_result(index, total, result)
                    results[index] = result
                elif isinstance(exc, BrokenProcessPool):
                    broken = True
                    requeue_or_fail(index)
                else:
                    # The job raised inside a healthy worker: it would
                    # fail identically on retry, so record it as-is.
                    if retries == 0:
                        raise ParallelExecutionError(
                            f"job {index}/{total} failed in worker: {exc}"
                        ) from exc
                    give_up(index, f"{type(exc).__name__}: {exc}")
            if broken:
                # A dead worker poisons the whole executor: every other
                # in-flight future is doomed too.  Recycle them and the
                # pool together.
                for index in in_flight.values():
                    requeue_or_fail(index)
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=min(n_jobs, total))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return [
        results[i] if i in results else failures[i] for i in range(total)
    ]
