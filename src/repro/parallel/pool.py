"""The process-pool core: order-preserving parallel map over jobs.

:func:`map_jobs` is deliberately generic — it knows nothing about
experiments, only that ``worker(job)`` must be picklable along with its
jobs and results.  Determinism guarantees:

* jobs are submitted in input order and results are reassembled in
  submission order, whatever order workers finish in;
* ``n_jobs=1`` bypasses multiprocessing entirely and runs the jobs
  in-process, in order (the exact pre-parallel code path);
* a failing job surfaces as :class:`~repro.errors.ParallelExecutionError`
  naming the job index, with the original exception chained.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, ParallelExecutionError

#: Progress callback: ``on_result(index, total, result)``; called as each
#: job finishes (completion order), before results are reassembled.
OnResult = Callable[[int, int, Any], None]


def effective_n_jobs(n_jobs: int) -> int:
    """Resolve a worker count: ``0``/negative means "all CPUs"."""
    if n_jobs >= 1:
        return n_jobs
    return os.cpu_count() or 1


def map_jobs(
    jobs: Sequence[Any],
    n_jobs: int = 1,
    worker: Callable[[Any], Any] | None = None,
    on_result: OnResult | None = None,
    max_in_flight: int | None = None,
) -> list[Any]:
    """Run ``worker(job)`` for every job, returning results in job order.

    Parameters
    ----------
    jobs:
        The job descriptors (picklable when ``n_jobs > 1``).
    n_jobs:
        Worker processes; ``1`` runs in-process (serial fallback),
        ``0`` or negative uses every CPU.
    worker:
        The job function (default: :func:`repro.parallel.jobs.run_job`).
        Must be an importable module-level callable for ``n_jobs > 1``.
    on_result:
        Optional ``(index, total, result)`` progress callback, invoked
        in *completion* order.
    max_in_flight:
        Cap on simultaneously submitted jobs (default: ``4 * n_jobs``),
        bounding parent-side memory for very large campaigns.
    """
    if worker is None:
        from repro.parallel.jobs import run_job

        worker = run_job
    jobs = list(jobs)
    total = len(jobs)
    if not jobs:
        return []
    n_jobs = effective_n_jobs(n_jobs)
    if n_jobs == 1:
        results = []
        for index, job in enumerate(jobs):
            try:
                result = worker(job)
            except Exception as exc:
                raise ParallelExecutionError(
                    f"job {index}/{total} failed in-process: {exc}"
                ) from exc
            if on_result is not None:
                on_result(index, total, result)
            results.append(result)
        return results

    window = max_in_flight if max_in_flight is not None else 4 * n_jobs
    if window < 1:
        raise ConfigurationError(f"max_in_flight must be >= 1, got {window}")
    results: dict[int, Any] = {}
    with ProcessPoolExecutor(max_workers=min(n_jobs, total)) as pool:
        index_of = {}
        pending = set()
        next_index = 0
        while len(results) < total:
            while next_index < total and len(pending) < window:
                future = pool.submit(worker, jobs[next_index])
                index_of[future] = next_index
                pending.add(future)
                next_index += 1
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = index_of.pop(future)
                exc = future.exception()
                if exc is not None:
                    raise ParallelExecutionError(
                        f"job {index}/{total} failed in worker: {exc}"
                    ) from exc
                result = future.result()
                if on_result is not None:
                    on_result(index, total, result)
                results[index] = result
    return [results[i] for i in range(total)]
