"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table {1,2,3}``
    Regenerate a paper table.
``figure {8,9,10,11,12,13}``
    Regenerate a paper figure's series (optionally reduced ``--units``).
``run``
    One experiment: ``--policy``, ``--pattern``, ``--max-units`` etc.,
    with optional ``--tasks N`` (multi-task) and ``--seeds N``
    (replication statistics) and ``--csv/--json`` export.
    ``--telemetry-dir DIR`` streams a JSONL trace and writes metrics
    snapshots (JSON + Prometheus text) into ``DIR``.
``trace``
    Summarize a telemetry JSONL trace (per-processor utilization,
    replica counts, forecast calibration) and convert it to the Chrome
    trace-event format for chrome://tracing / Perfetto.
``profile``
    Profile one subtask and print the fitted eq. 3 coefficients.
``patterns``
    Print the Figure 8 workload series.
``capacity``
    Offline capacity plan from the fitted models.
``validate``
    Run the paper-claims validation suite (exit code 1 on any FAIL).
``report``
    Regenerate the whole evaluation as one Markdown document, or — with
    ``--health`` — render one run's self-contained HTML health report
    (metrics, SLO verdicts with burn-rate sparklines, profiler
    breakdown, forecast calibration).
``slo``
    Run one experiment against a set of service-level objectives and
    print the verdicts; ``--check`` turns breaches into exit code 1
    for CI gates, ``--rules`` loads a ``[[slo.rules]]`` TOML file.
``campaign``
    A whole policy × pattern × workload × seed grid in one shot, with
    ``--jobs N`` process-pool parallelism and per-run accounting;
    ``--scenarios`` / ``--hardened-axis`` extend the grid along the
    chaos axes, ``--slo`` evaluates rules per cell and ``--rollup``
    writes the order-independent campaign rollup JSON.
    ``--journal PATH`` appends every finished cell durably;
    ``--resume`` re-runs only the missing cells after a crash and
    ``--retries N`` survives dying worker processes.
``chaos``
    One experiment under a named fault-injection scenario, reporting
    the resilience scorecard; ``--compare`` runs the hardened and
    unhardened RM side by side, ``--failover`` arms the standby
    controller for the ``rm_crash*`` scenarios, ``--list`` prints the
    scenario catalogue.
``lint``
    Static-analysis suite over a source tree (determinism, unit-safety,
    layering, pickling rules); exit code 1 on violations.

Global options (``--periods``, ``--seed``, ``--nodes``,
``--network-mode``, ``--jobs``, ``--cache-dir``, ``--engine``,
``--shards``) precede the subcommand.  ``--engine vectorized`` swaps in
the array-backed calendar (bit-identical decisions); ``--shards N``
splits a campaign round-robin across ``N`` worker processes.  Every
command is importable and testable via :func:`main(argv)`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.experiments.config import (
    DEFAULT_SWEEP_UNITS,
    BaselineConfig,
    ExperimentConfig,
)
from repro.experiments.report import format_table


def _baseline_from_args(args: argparse.Namespace) -> BaselineConfig:
    overrides = {}
    if getattr(args, "periods", None) is not None:
        overrides["n_periods"] = args.periods
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "nodes", None) is not None:
        overrides["n_nodes"] = args.nodes
    if getattr(args, "network_mode", None):
        overrides["network_mode"] = args.network_mode
    return BaselineConfig(**overrides)


def _units_from_args(args: argparse.Namespace) -> tuple[float, ...]:
    if getattr(args, "units", None):
        return tuple(args.units)
    return DEFAULT_SWEEP_UNITS


def _jobs_from_args(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", None)
    # 0 / negative means "all CPUs" (resolved by the pool).
    return 1 if jobs is None else jobs


def _cache_dir_from_args(args: argparse.Namespace):
    return getattr(args, "cache_dir", None)


def _engine_from_args(args: argparse.Namespace) -> str:
    return getattr(args, "engine", None) or "scalar"


def _shards_from_args(args: argparse.Namespace) -> int:
    shards = getattr(args, "shards", None)
    # 0 = no sharding (dispatch one job per worker task as before).
    return 0 if shards is None else shards


def _slo_rules_from_args(args: argparse.Namespace):
    """The rule set for ``repro slo`` / ``repro report --health``."""
    from repro.telemetry.slo import DEFAULT_SLO_RULES, load_slo_rules

    rules = getattr(args, "rules", None)
    if rules:
        from pathlib import Path

        return load_slo_rules(Path(rules))
    return DEFAULT_SLO_RULES


def _run_observed(args: argparse.Namespace):
    """One fully-observed run: SLO rules + profiler armed on a hub.

    Returns ``(config, result, hub, profiler)``; the hub is closed (no
    sink attached, so this only settles dangling spans).
    """
    from repro.experiments.estimator_cache import get_estimator
    from repro.experiments.runner import run_experiment
    from repro.telemetry import TelemetryHub

    baseline = _baseline_from_args(args)
    config = ExperimentConfig(
        policy=args.policy,
        pattern=args.pattern,
        max_workload_units=args.max_units,
        baseline=baseline,
        engine=_engine_from_args(args),
        chaos_scenario=getattr(args, "scenario", None),
        hardened=bool(getattr(args, "hardened", False)),
        slo=_slo_rules_from_args(args),
    )
    estimator = get_estimator(baseline, cache_dir=_cache_dir_from_args(args))
    hub = TelemetryHub()
    profiler = hub.arm_profiler()
    try:
        result = run_experiment(config, estimator=estimator, telemetry=hub)
    finally:
        hub.close()
    return config, result, hub, profiler


# -- command handlers -----------------------------------------------------------


def cmd_table(args: argparse.Namespace) -> int:
    """Handle ``repro table {1,2,3}``."""
    from repro.experiments import tables

    baseline = _baseline_from_args(args)
    if args.number == 1:
        print(tables.render_table1(baseline))
    elif args.number == 2:
        print(tables.render_table2(tables.reproduce_table2(baseline)))
    else:
        print(tables.render_table3(tables.reproduce_table3(baseline)))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Handle ``repro figure {8..13}`` (optionally exporting CSV)."""
    from repro.experiments import figures
    from repro.experiments.estimator_cache import get_estimator

    baseline = _baseline_from_args(args)
    units = _units_from_args(args)
    if args.number == 8:
        print(figures.fig8_workload_patterns(baseline=baseline).render())
        return 0
    estimator = get_estimator(baseline, cache_dir=_cache_dir_from_args(args))
    kwargs = dict(
        units=units,
        baseline=baseline,
        estimator=estimator,
        n_jobs=_jobs_from_args(args),
    )
    produced: list = []
    if args.number == 9:
        panels = figures.fig9_triangular_panels(**kwargs)
        produced = [panels[letter] for letter in "abcd"]
    elif args.number == 10:
        produced = [figures.fig10_triangular_combined(**kwargs)]
    elif args.number == 11:
        panels = figures.fig11_increasing_panels(**kwargs)
        produced = [panels[letter] for letter in "abcd"]
    elif args.number == 12:
        panels = figures.fig12_decreasing_panels(**kwargs)
        produced = [panels[letter] for letter in "abcd"]
    else:
        parts = figures.fig13_ramp_combined(**kwargs)
        produced = [parts["a"], parts["b"]]
    print("\n\n".join(data.render() for data in produced))
    if args.csv:
        from pathlib import Path

        from repro.experiments.export import figure_to_csv

        base = Path(args.csv)
        for i, data in enumerate(produced):
            target = (
                base
                if len(produced) == 1
                else base.with_name(f"{base.stem}_{i + 1}{base.suffix}")
            )
            figure_to_csv(data, target)
            print(f"series written to {target}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Handle ``repro run`` (single, multi-task or replicated)."""
    from repro.experiments.estimator_cache import get_estimator

    baseline = _baseline_from_args(args)
    config = ExperimentConfig(
        policy=args.policy,
        pattern=args.pattern,
        max_workload_units=args.max_units,
        baseline=baseline,
        engine=_engine_from_args(args),
        checkpoint=args.checkpoint,
    )
    estimator = get_estimator(baseline, cache_dir=_cache_dir_from_args(args))

    hub = None
    tracer = None
    telemetry_dir = getattr(args, "telemetry_dir", None)
    if telemetry_dir:
        if args.tasks > 1 or args.seeds > 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--telemetry-dir instruments a single run; "
                "drop --tasks/--seeds or run them separately"
            )
        from pathlib import Path

        from repro.sim.trace import StreamingTracer
        from repro.telemetry import JsonlTraceSink, TelemetryHub

        sink = JsonlTraceSink(Path(telemetry_dir) / "trace.jsonl")
        hub = TelemetryHub(sink=sink)
        tracer = StreamingTracer(sink)

    try:
        metrics, forecast_report = _run_cmd_run_body(
            args, config, estimator, tracer, hub
        )
    finally:
        # Close (and so flush) the trace sink even when the run dies
        # mid-flight — the buffered records up to the failure point are
        # exactly what a post-mortem needs.
        if hub is not None:
            hub.close()

    if hub is not None:
        from pathlib import Path

        out = Path(telemetry_dir)
        (out / "metrics.json").write_text(hub.registry.to_json(hub.now))
        (out / "metrics.prom").write_text(hub.registry.to_prometheus(hub.now))
        print(
            f"telemetry written to {out} "
            "(trace.jsonl, metrics.json, metrics.prom)"
        )

    if args.json:
        from repro.experiments.export import metrics_to_json

        metrics_to_json(
            metrics,
            args.json,
            extra={
                "policy": args.policy,
                "pattern": args.pattern,
                "max_units": args.max_units,
                "forecasts": (
                    None
                    if forecast_report is None
                    else {
                        "n": forecast_report.n,
                        "mape": forecast_report.mape,
                        "mean_error_s": forecast_report.mean_error_s,
                        "pessimism_rate": forecast_report.pessimism_rate,
                        "missed_deadline_ratio": (
                            forecast_report.missed_deadline_ratio
                        ),
                    }
                ),
            },
        )
        print(f"metrics written to {args.json}")
    return 0


def _run_cmd_run_body(args, config, estimator, tracer, hub):
    """The run/print phase of ``repro run`` (split out so the caller can
    guarantee the telemetry sink is flushed on any exit path)."""
    from repro.experiments.runner import run_experiment

    forecast_report = None
    if args.tasks > 1:
        from repro.experiments.multitask import run_multi_task_experiment

        result = run_multi_task_experiment(
            config, n_tasks=args.tasks, estimator=estimator
        )
        metrics = result.aggregate
        rows = [
            [name, m.missed_deadline_ratio, m.avg_replicas, m.rm_actions]
            for name, m in sorted(result.per_task_metrics.items())
        ]
        print(
            format_table(
                ["task", "missed", "avg replicas", "rm actions"],
                rows,
                title=f"{args.tasks} tasks, {args.policy}, {args.pattern}, "
                f"{args.max_units:g} units",
            )
        )
    elif args.seeds > 1:
        from repro.experiments.replication import replicate_experiment

        replicated = replicate_experiment(
            config,
            n_seeds=args.seeds,
            estimator=estimator,
            n_jobs=_jobs_from_args(args),
            cache_dir=_cache_dir_from_args(args),
        )
        rows = [
            [s.name, s.mean, s.std, f"[{s.ci_low:.3f}, {s.ci_high:.3f}]"]
            for s in replicated.summaries.values()
        ]
        print(
            format_table(
                ["metric", "mean", "sd", "95% CI"],
                rows,
                title=f"{args.seeds} seeds, {args.policy}, {args.pattern}, "
                f"{args.max_units:g} units",
            )
        )
        metrics = replicated.runs[0]
    else:
        result = run_experiment(
            config, estimator=estimator, tracer=tracer, telemetry=hub
        )
        metrics = result.metrics
        forecast_report = result.forecasts
        rows = [[k, v] for k, v in metrics.as_dict().items()]
        rows.append(["rm_actions", metrics.rm_actions])
        rows.append(["periods", metrics.periods_released])
        print(
            format_table(
                ["metric", "value"],
                rows,
                title=f"{args.policy}, {args.pattern}, {args.max_units:g} units",
            )
        )
    return metrics, forecast_report


def cmd_trace(args: argparse.Namespace) -> int:
    """Handle ``repro trace``: summarize + convert a JSONL trace."""
    from pathlib import Path

    from repro.telemetry import read_jsonl, summarize_trace, write_chrome_trace

    records = read_jsonl(args.trace)
    print(summarize_trace(records))
    if not args.no_chrome:
        target = (
            Path(args.chrome)
            if args.chrome
            else Path(args.trace).with_suffix(".chrome.json")
        )
        write_chrome_trace(records, target)
        print(f"\nchrome trace ({len(records)} records) written to {target}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Handle ``repro profile``: fit eq. 3 for one subtask."""
    from repro.bench.app import aaw_task
    from repro.bench.profiler import profile_subtask

    baseline = _baseline_from_args(args)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    result = profile_subtask(
        task.subtask(args.subtask), repetitions=args.repetitions,
        seed=baseline.seed,
    )
    model = result.model
    rows = [[k, v] for k, v in model.coefficients().items()]
    rows.append(["R^2", model.r_squared])
    rows.append(["samples", model.n_samples])
    print(
        format_table(
            ["coefficient", "value"],
            rows,
            title=f"eq. 3 fit for subtask {args.subtask} ({model.subtask_name})",
        )
    )
    return 0


def cmd_patterns(args: argparse.Namespace) -> int:
    """Handle ``repro patterns``: print the Figure 8 series."""
    from repro.experiments.figures import fig8_workload_patterns

    baseline = _baseline_from_args(args)
    print(
        fig8_workload_patterns(
            max_workload_units=args.max_units,
            n_periods=baseline.n_periods,
            baseline=baseline,
        ).render()
    )
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    """Handle ``repro capacity``: the offline capacity plan."""
    from repro.experiments.capacity import plan_capacity
    from repro.experiments.estimator_cache import get_estimator

    baseline = _baseline_from_args(args)
    estimator = get_estimator(baseline)
    grid = tuple(
        sorted(float(u) * 500.0 for u in (args.units or (2, 5, 10, 20, 30, 35)))
    )
    plan = plan_capacity(
        estimator,
        grid,
        n_processors=baseline.n_nodes,
        utilization=args.utilization,
        slack_fraction=baseline.slack_fraction,
    )
    print(plan.render())
    saturation = plan.saturation_tracks()
    if saturation is not None:
        print(f"\nsaturation: infeasible from {saturation:.0f} tracks/period")
    else:
        print("\nall planned workloads are feasible")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """Handle ``repro slo``: evaluate one run against its SLO rules."""
    if args.list:
        rules = _slo_rules_from_args(args)
        rows = [
            [
                rule.name,
                rule.signal,
                rule.objective,
                f"{rule.windows[0]:g}/{rule.windows[1]:g}",
                rule.burn_rate_threshold,
                rule.description,
            ]
            for rule in rules
        ]
        print(
            format_table(
                ["rule", "signal", "objective", "windows (s)",
                 "burn", "description"],
                rows,
                title="SLO rules",
            )
        )
        return 0

    _, result, _, _ = _run_observed(args)
    report = result.slo
    if report is None:  # pragma: no cover - _run_observed always arms rules
        raise ReproError("the run produced no SLO report")
    print(report.render())
    if args.json:
        import json as _json
        from pathlib import Path

        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            _json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"SLO report written to {target}")
    return report.exit_code if args.check else 0


def _cmd_report_health(args: argparse.Namespace) -> int:
    """``repro report --health``: the self-contained HTML health report."""
    from repro.telemetry.report import render_report

    config, result, _, profiler = _run_observed(args)
    baseline = config.baseline
    meta = {
        "policy": config.policy,
        "pattern": config.pattern,
        "max_units": config.max_workload_units,
        "periods": baseline.n_periods,
        "nodes": baseline.n_nodes,
        "seed": baseline.seed,
        "engine": config.engine,
        "scenario": config.chaos_scenario or "-",
        "hardened": config.hardened,
    }
    calibration = None
    if result.forecasts is not None:
        forecasts = result.forecasts
        calibration = {
            "n": forecasts.n,
            "mape": forecasts.mape,
            "mean_error_s": forecasts.mean_error_s,
            "pessimism_rate": forecasts.pessimism_rate,
            "missed_deadline_ratio": forecasts.missed_deadline_ratio,
        }
    rollup = None
    if getattr(args, "rollup", None):
        from repro.telemetry.rollup import CampaignRollup

        rollup = CampaignRollup.load(args.rollup).to_dict()
    html = render_report(
        meta=meta,
        metrics=result.metrics.as_dict(),
        slo=result.slo.as_dict() if result.slo is not None else None,
        profile=profiler.summary(deterministic=not args.wall),
        calibration=calibration,
        scorecard=(
            result.scorecard.as_dict() if result.scorecard is not None else None
        ),
        rollup=rollup,
    )
    if args.out:
        from pathlib import Path

        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(html, encoding="utf-8")
        print(f"health report written to {target}")
    else:
        print(html, end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Handle ``repro report``: Markdown evaluation or HTML health view."""
    if args.health:
        return _cmd_report_health(args)
    from repro.experiments.paper_report import generate_report

    baseline = _baseline_from_args(args)
    report = generate_report(
        baseline=baseline,
        units=_units_from_args(args),
        include_tables=not args.skip_tables,
        include_figures=not args.skip_figures,
        include_validation=not args.skip_validation,
    )
    if args.out:
        path = report.write(args.out)
        print(f"report ({len(report.sections)} sections, "
              f"{report.elapsed_s:.1f} s) written to {path}")
    else:
        print(report.to_markdown())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Handle ``repro campaign``: a full grid, optionally in parallel."""
    from repro.experiments.campaign import CampaignSpec, run_campaign

    scenarios: tuple[str | None, ...] = (None,)
    if args.scenarios:
        scenarios = tuple(
            None if name == "off" else name for name in args.scenarios
        )
    hardened: tuple[bool, ...] = {
        "off": (False,), "on": (True,), "both": (False, True),
    }[args.hardened_axis]
    slo_rules = None
    if args.slo:
        if args.slo == "default":
            from repro.telemetry.slo import DEFAULT_SLO_RULES

            slo_rules = DEFAULT_SLO_RULES
        else:
            from pathlib import Path

            from repro.telemetry.slo import load_slo_rules

            slo_rules = load_slo_rules(Path(args.slo))
    spec = CampaignSpec(
        policies=tuple(args.policies),
        patterns=tuple(args.patterns),
        units=_units_from_args(args),
        n_seeds=args.seeds,
        baseline=_baseline_from_args(args),
        scenarios=scenarios,
        hardened=hardened,
        engine=_engine_from_args(args),
        slo=slo_rules,
    )
    result = run_campaign(
        spec,
        n_jobs=_jobs_from_args(args),
        cache_dir=_cache_dir_from_args(args),
        progress=None if args.quiet else print,
        shards=_shards_from_args(args),
        journal=args.journal,
        resume=args.resume,
        retries=args.retries,
    )
    if result.failed:
        for failure in result.failed:
            print(
                f"FAILED cell {failure.index} ({failure.tag}): "
                f"{failure.error} [{failure.attempts} attempt(s)]",
                file=sys.stderr,
            )
    print(result.render(metric=args.metric))
    if args.json:
        target = result.write_json(args.json)
        print(f"campaign written to {target}")
    if args.rollup:
        from repro.experiments.campaign import rollup_campaign

        target = rollup_campaign(result).write(args.rollup)
        print(f"campaign rollup written to {target}")
    return 1 if result.failed else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Handle ``repro chaos``: one run under a fault scenario."""
    from repro.chaos import SCENARIOS, run_chaos_experiment, scenario_names
    from repro.experiments.estimator_cache import get_estimator

    if args.list:
        rows = [
            [name, len(SCENARIOS[name].faults), SCENARIOS[name].description]
            for name in scenario_names()
        ]
        print(format_table(["scenario", "faults", "description"], rows,
                           title="chaos scenarios"))
        return 0

    baseline = _baseline_from_args(args)
    estimator = get_estimator(baseline, cache_dir=_cache_dir_from_args(args))
    modes = (True, False) if args.compare else (args.hardened,)
    scorecards = {}
    crashed: dict[str, str] = {}
    for hardened in modes:
        label = "hardened" if hardened else "unhardened"
        try:
            result = run_chaos_experiment(
                scenario=args.scenario,
                policy=args.policy,
                pattern=args.pattern,
                max_workload_units=args.max_units,
                baseline=baseline,
                hardened=hardened,
                estimator=estimator,
                failover=args.failover,
            )
        except ReproError as exc:
            if not args.compare:
                raise
            # In compare mode, a controller crash on faulty input IS
            # the unhardened result — show it instead of aborting.
            crashed[label] = f"{type(exc).__name__}: {exc}"
            continue
        scorecards[label] = (result.scorecard, result.metrics)

    def fmt(value):
        return "-" if value is None else value

    rows = []
    for label, (scorecard, metrics) in scorecards.items():
        data = scorecard.as_dict()
        rows.append(
            [
                label,
                data["faults_injected"],
                data["availability"],
                fmt(data["mttr_s"]),
                data["miss_window_ratio"],
                data["actions_per_fault"],
                metrics.missed_deadline_ratio,
            ]
        )
    for label in crashed:
        rows.append([label, "-", "CRASHED", "-", "-", "-", "-"])
    print(
        format_table(
            ["rm", "faults", "availability", "mttr (s)",
             "miss-window ratio", "actions/fault", "missed ratio"],
            rows,
            title=f"chaos: {args.scenario}, {args.policy}, {args.pattern}, "
            f"{args.max_units:g} units",
        )
    )
    for label, (scorecard, _) in scorecards.items():
        if scorecard.rm_crashes:
            latency = (
                "-"
                if scorecard.takeover_latency_s is None
                else f"{scorecard.takeover_latency_s:.3f} s"
            )
            print(
                f"{label}: {scorecard.rm_crashes} controller crash(es), "
                f"takeover latency {latency}, "
                f"{scorecard.missed_rm_cycles} missed monitoring cycle(s)"
            )
    if args.json:
        import json as _json
        from pathlib import Path

        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            label: scorecard.as_dict()
            for label, (scorecard, _) in scorecards.items()
        }
        for label, error in crashed.items():
            payload[label] = {"crashed": True, "error": error}
        payload["scenario"] = args.scenario
        payload["policy"] = args.policy
        target.write_text(_json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"scorecard written to {target}")
    return 0


def _changed_python_files(ref: str) -> list[str]:
    """Tracked-changed plus untracked ``.py`` files vs. ``ref``."""
    import subprocess

    out: list[str] = []
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"repro lint --changed: {' '.join(cmd)} failed: "
                f"{proc.stderr.strip()}"
            )
        out.extend(
            line for line in proc.stdout.splitlines()
            if line.endswith(".py")
        )
    import os

    return sorted({path for path in out if os.path.exists(path)})


def cmd_lint(args: argparse.Namespace) -> int:
    """Handle ``repro lint``: run the static-analysis suite."""
    from pathlib import Path

    from repro.analysis import (
        lint_paths,
        render_json,
        render_rules,
        render_sarif,
        render_text,
    )

    if args.list_rules:
        print(render_rules())
        return 0
    project_rules = True
    if args.changed is not None:
        paths = _changed_python_files(args.changed)
        if not paths:
            print("clean: 0 changed files")
            return 0
        # A partial file set cannot support whole-project conclusions
        # (reachability, facade drift) - CI's full run covers those.
        project_rules = False
    else:
        paths = args.paths or ["src/repro"]
    violations, n_files = lint_paths(
        paths,
        contract_path=Path(args.contract) if args.contract else None,
        select=args.select,
        cache_path=None if args.no_cache else args.cache,
        project_rules=project_rules,
    )
    if args.format == "json":
        print(render_json(violations, n_files))
    elif args.format == "sarif":
        print(render_sarif(violations, n_files))
    else:
        print(render_text(violations, n_files))
    return 1 if violations else 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Handle ``repro validate``: paper-claims checks (exit 1 on FAIL)."""
    from repro.experiments.validation import render_checks, validate_reproduction

    baseline = _baseline_from_args(args)
    checks = validate_reproduction(baseline=baseline)
    print(render_checks(checks))
    return 0 if all(check.passed for check in checks) else 1


# -- parser ---------------------------------------------------------------------


def _policy_name(value: str) -> str:
    """Argparse type for ``--policy``: validate against the registry.

    Unknown names fail at parse time with the full registry in the
    message, instead of surfacing as an :class:`AllocationError` from
    deep inside an experiment run.  The import is lazy so ``--help``
    and unrelated subcommands stay fast.
    """
    from repro.core.allocation import registered_policies

    if value not in registered_policies():
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; registered: "
            f"{', '.join(registered_policies())}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predictive adaptive resource management "
        "(Ravindran & Hegazy 2001) - reproduction toolkit",
    )
    parser.add_argument("--periods", type=int, help="periods per experiment")
    parser.add_argument("--seed", type=int, help="master random seed")
    parser.add_argument("--nodes", type=int, help="number of processors")
    parser.add_argument(
        "--network-mode", choices=("shared", "switched"), help="medium model"
    )
    parser.add_argument(
        "--jobs", type=int,
        help="worker processes for sweeps/replications/campaigns "
        "(1 = serial, 0 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the disk-backed estimator cache "
        "(fits are reused across processes and invocations)",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "vectorized"),
        help="simulation core: the classic per-event heap or the "
        "array-backed calendar (bit-identical decisions, faster at scale)",
    )
    parser.add_argument(
        "--shards", type=int,
        help="split campaign runs round-robin across this many worker "
        "processes, each running its slice serially (0 = one job per "
        "worker task; overrides --jobs for dispatch)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3))
    p_table.set_defaults(func=cmd_table)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("number", type=int, choices=(8, 9, 10, 11, 12, 13))
    p_figure.add_argument(
        "--units", type=float, nargs="+", help="max-workload sweep points"
    )
    p_figure.add_argument("--csv", help="also write the series as CSV here")
    p_figure.set_defaults(func=cmd_figure)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--policy", type=_policy_name, default="predictive")
    p_run.add_argument("--pattern", default="triangular")
    p_run.add_argument("--max-units", type=float, default=20.0)
    p_run.add_argument("--tasks", type=int, default=1, help="number of tasks")
    p_run.add_argument("--seeds", type=int, default=1, help="replication seeds")
    p_run.add_argument("--json", help="write metrics JSON here")
    p_run.add_argument(
        "--telemetry-dir",
        help="stream a JSONL trace and metrics snapshots (JSON + "
        "Prometheus text) into this directory (single runs only)",
    )
    p_run.add_argument(
        "--checkpoint", type=float, metavar="SECONDS",
        help="arm periodic in-run snapshots at this sim-time interval "
        "(see repro.recovery; decisions are unchanged)",
    )
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="summarize/convert a telemetry JSONL trace"
    )
    p_trace.add_argument("trace", help="path to a trace.jsonl file")
    p_trace.add_argument(
        "--chrome",
        help="write the Chrome trace-event JSON here "
        "(default: <trace>.chrome.json next to the input)",
    )
    p_trace.add_argument(
        "--no-chrome", action="store_true",
        help="print the summary tables only, skip the Chrome export",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_profile = sub.add_parser("profile", help="profile one subtask, fit eq. 3")
    p_profile.add_argument("--subtask", type=int, default=3, choices=range(1, 6))
    p_profile.add_argument("--repetitions", type=int, default=2)
    p_profile.set_defaults(func=cmd_profile)

    p_patterns = sub.add_parser("patterns", help="print the Figure 8 series")
    p_patterns.add_argument("--max-units", type=float, default=20.0)
    p_patterns.set_defaults(func=cmd_patterns)

    p_validate = sub.add_parser("validate", help="check the paper's claims")
    p_validate.set_defaults(func=cmd_validate)

    p_campaign = sub.add_parser(
        "campaign", help="run a policy x pattern x workload x seed grid"
    )
    p_campaign.add_argument(
        "--policies", nargs="+", type=_policy_name,
        default=["predictive", "nonpredictive"],
    )
    p_campaign.add_argument("--patterns", nargs="+", default=["triangular"])
    p_campaign.add_argument(
        "--units", type=float, nargs="+", help="max-workload sweep points"
    )
    p_campaign.add_argument("--seeds", type=int, default=1, help="seeds per cell")
    p_campaign.add_argument(
        "--metric", default="combined", help="metric shown in the summary table"
    )
    p_campaign.add_argument("--json", help="write the full campaign JSON here")
    p_campaign.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    p_campaign.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        help="chaos-scenario axis ('off' = fault-free cell)",
    )
    p_campaign.add_argument(
        "--hardened-axis", choices=("off", "on", "both"), default="off",
        help="RM-hardening axis of the grid",
    )
    p_campaign.add_argument(
        "--slo", nargs="?", const="default", metavar="RULES.toml",
        help="evaluate SLO rules on every run (bare flag = the default "
        "rule set, or give a [[slo.rules]] TOML file)",
    )
    p_campaign.add_argument(
        "--rollup",
        help="write the order-independent campaign rollup JSON here",
    )
    p_campaign.add_argument(
        "--journal", metavar="PATH",
        help="crash-tolerant cell journal (JSONL): every finished cell "
        "is durably appended here as the campaign runs",
    )
    p_campaign.add_argument(
        "--resume", action="store_true",
        help="reload completed cells from --journal and run only the "
        "missing ones (merged result is byte-identical to an "
        "uninterrupted campaign)",
    )
    p_campaign.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="resubmit jobs whose worker process died up to N extra "
        "times; unrecoverable cells are recorded instead of aborting "
        "(exit code 1 if any remain)",
    )
    p_campaign.set_defaults(func=cmd_campaign)

    p_slo = sub.add_parser(
        "slo", help="run one experiment and evaluate it against SLO rules"
    )
    p_slo.add_argument("--policy", type=_policy_name, default="predictive")
    p_slo.add_argument("--pattern", default="triangular")
    p_slo.add_argument("--max-units", type=float, default=20.0)
    p_slo.add_argument(
        "--scenario", help="optional chaos scenario to run under"
    )
    p_slo.add_argument(
        "--hardened", action=argparse.BooleanOptionalAction, default=False,
        help="enable the RM hardening defenses for the run",
    )
    p_slo.add_argument(
        "--rules", metavar="RULES.toml",
        help="load rules from a [[slo.rules]] TOML file "
        "(default: the built-in rule set)",
    )
    p_slo.add_argument(
        "--check", action="store_true",
        help="CI gate: exit 1 when any SLO is breached, 0 otherwise",
    )
    p_slo.add_argument("--json", help="write the SLO report JSON here")
    p_slo.add_argument(
        "--list", action="store_true",
        help="print the effective rule set and exit (no run)",
    )
    p_slo.set_defaults(func=cmd_slo)

    p_chaos = sub.add_parser(
        "chaos", help="run one experiment under a fault-injection scenario"
    )
    p_chaos.add_argument("--scenario", default="crashes")
    p_chaos.add_argument("--policy", type=_policy_name, default="predictive")
    p_chaos.add_argument("--pattern", default="triangular")
    p_chaos.add_argument("--max-units", type=float, default=20.0)
    p_chaos.add_argument(
        "--hardened", action=argparse.BooleanOptionalAction, default=True,
        help="enable the RM hardening defenses (--no-hardened disables)",
    )
    p_chaos.add_argument(
        "--compare", action="store_true",
        help="run hardened and unhardened back to back",
    )
    p_chaos.add_argument(
        "--failover", action="store_true",
        help="arm the standby controller (takes over after an rm_crash "
        "fault kills the primary; see repro.recovery)",
    )
    p_chaos.add_argument("--json", help="write the scorecard JSON here")
    p_chaos.add_argument(
        "--list", action="store_true", help="print the scenario catalogue"
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_lint = sub.add_parser(
        "lint", help="run the static-analysis suite over a source tree"
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/repro)"
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    p_lint.add_argument(
        "--select", nargs="+", metavar="RULE-ID",
        help="report only these rule ids (e.g. DET-TIME CONC-GLOBAL-MUT)",
    )
    p_lint.add_argument(
        "--contract",
        help="layering contract TOML (default: the packaged layering.toml)",
    )
    p_lint.add_argument(
        "--cache", metavar="PATH", default=".repro-lint-cache.json",
        help="persistent result cache for incremental runs "
        "(default: .repro-lint-cache.json)",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    p_lint.add_argument(
        "--changed", nargs="?", const="HEAD", metavar="GIT-REF",
        help="lint only files changed vs. GIT-REF (default HEAD); "
        "skips the project-wide passes",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_capacity = sub.add_parser(
        "capacity", help="offline capacity plan from the fitted models"
    )
    p_capacity.add_argument(
        "--units", type=float, nargs="+",
        help="workload points (1 unit = 500 tracks)",
    )
    p_capacity.add_argument(
        "--utilization", type=float, default=0.3,
        help="assumed background utilization",
    )
    p_capacity.set_defaults(func=cmd_capacity)

    p_report = sub.add_parser(
        "report",
        help="regenerate the evaluation (Markdown) or, with --health, "
        "render one run's HTML health report",
    )
    p_report.add_argument("--out", help="write the report here (else stdout)")
    p_report.add_argument(
        "--units", type=float, nargs="+", help="max-workload sweep points"
    )
    p_report.add_argument("--skip-tables", action="store_true")
    p_report.add_argument("--skip-figures", action="store_true")
    p_report.add_argument("--skip-validation", action="store_true")
    p_report.add_argument(
        "--health", action="store_true",
        help="render a self-contained HTML health report for one run "
        "(metrics, SLO verdicts with burn-rate sparklines, profiler "
        "breakdown, forecast calibration) instead of the Markdown "
        "evaluation",
    )
    p_report.add_argument("--policy", type=_policy_name, default="predictive")
    p_report.add_argument("--pattern", default="triangular")
    p_report.add_argument("--max-units", type=float, default=20.0)
    p_report.add_argument(
        "--scenario", help="optional chaos scenario (health mode)"
    )
    p_report.add_argument(
        "--hardened", action=argparse.BooleanOptionalAction, default=False,
        help="enable the RM hardening defenses (health mode)",
    )
    p_report.add_argument(
        "--rules", metavar="RULES.toml",
        help="SLO rules TOML for the health report "
        "(default: the built-in rule set)",
    )
    p_report.add_argument(
        "--wall", action="store_true",
        help="include host wall-clock profiler times in the health "
        "report (makes the HTML non-reproducible)",
    )
    p_report.add_argument(
        "--rollup", metavar="ROLLUP.json",
        help="embed a campaign rollup (from 'repro campaign --rollup') "
        "in the health report",
    )
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
