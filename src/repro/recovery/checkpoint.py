"""Periodic in-run checkpoints.

The :class:`Checkpointer` schedules itself on the run's engine and takes
a :class:`~repro.recovery.snapshot.SimSnapshot` every ``interval_s``
simulation seconds.  Two invariants make checkpoints free and resumable:

* **Decisions are unchanged.**  Checkpoint events run at
  :data:`CHECKPOINT_PRIORITY` (after everything else sharing their
  timestamp) and only *read* the world.  They consume engine sequence
  numbers, but sequence numbers only break ties among events that share
  ``(time, priority)`` — and no simulation event shares the checkpoint
  priority — so the relative order of all other events is untouched.
* **Resumed runs keep checkpointing.**  :meth:`take` schedules its
  successor event *before* pickling, so the captured calendar already
  contains the next ``ckpt.take`` — a restored world continues the
  cadence without re-arming.  (The inverse order would capture a
  calendar with no pending checkpoint and the resumed run would never
  checkpoint again.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.recovery.snapshot import SimSnapshot, take_snapshot

#: Checkpoints run strictly after every simulation event sharing their
#: timestamp (RM steps are -10, releases 0): the capture sees the
#: timestamp's final state.
CHECKPOINT_PRIORITY = 100


class Checkpointer:
    """Takes a snapshot of ``world`` every ``interval_s`` sim-seconds.

    Parameters
    ----------
    world:
        The run world (anything :func:`~repro.recovery.snapshot.take_snapshot`
        accepts); the checkpointer itself is part of it, so snapshots
        contain a (snapshot-free) copy of the checkpointer and resumed
        runs keep the cadence.
    interval_s:
        Sim-time between captures.
    keep:
        In-memory snapshots retained (oldest dropped first).
    directory:
        When set, each capture is also persisted atomically as
        ``ckpt_<n>.pkl`` under this directory.
    """

    def __init__(
        self,
        world: Any,
        interval_s: float,
        keep: int = 2,
        directory: str | Path | None = None,
    ) -> None:
        if interval_s <= 0.0:
            raise ConfigurationError(
                f"checkpoint interval must be positive, got {interval_s}"
            )
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.world = world
        self.interval_s = float(interval_s)
        self.keep = int(keep)
        self.directory = Path(directory) if directory is not None else None
        self.snapshots: list[SimSnapshot] = []
        #: Total captures taken across the run (monotonic over resumes).
        self.taken = 0

    def arm(self) -> "Checkpointer":
        """Schedule the first capture ``interval_s`` from now."""
        self.world.system.engine.schedule(
            self.interval_s,
            self.take,
            priority=CHECKPOINT_PRIORITY,
            label="ckpt.take",
        )
        return self

    def take(self) -> SimSnapshot:
        """Capture one snapshot (and schedule the successor first)."""
        engine = self.world.system.engine
        # Successor BEFORE the pickle: the captured calendar must
        # already contain the next ckpt.take (see module docstring).
        engine.schedule(
            self.interval_s,
            self.take,
            priority=CHECKPOINT_PRIORITY,
            label="ckpt.take",
        )
        snapshot = take_snapshot(self.world, label=f"ckpt-{self.taken}")
        self.taken += 1
        self.snapshots.append(snapshot)
        del self.snapshots[: -self.keep]
        if self.directory is not None:
            snapshot.save(self.directory / f"ckpt_{self.taken - 1}.pkl")
        return snapshot

    @property
    def latest(self) -> SimSnapshot | None:
        """The most recent capture (``None`` before the first)."""
        return self.snapshots[-1] if self.snapshots else None

    def __getstate__(self) -> dict[str, Any]:
        # Never nest snapshots inside snapshots: the pickled copy keeps
        # the cadence configuration but starts with an empty buffer.
        state = dict(self.__dict__)
        state["snapshots"] = []
        return state
