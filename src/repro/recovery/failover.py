"""Standby resource-manager failover.

The paper's RM is a single controller process: if it dies, the executor
keeps releasing periods but nothing monitors or adapts — exactly what
the ``rm_crash`` chaos fault injects.  The
:class:`FailoverCoordinator` closes that gap with the classic
lease-based pattern:

* a **watchdog** fires every ``watch_interval_s`` at
  :data:`WATCH_PRIORITY` (after any RM step sharing its timestamp) and
  reads the primary's heartbeat
  (:attr:`~repro.core.manager.AdaptiveResourceManager.last_step_time`);
* each time the heartbeat advances, the coordinator **captures** the
  primary's controller state
  (:meth:`~repro.core.manager.AdaptiveResourceManager.state_dict`) —
  controller state only mutates inside ``step``, so capturing on a
  fresh heartbeat always sees a consistent post-step state;
* when the heartbeat goes silent for longer than ``lease_timeout_s``
  the coordinator **promotes** a standby
  :class:`~repro.core.manager.AdaptiveResourceManager` built against
  the same live system/executor/estimator, restores the last captured
  state into it, and schedules its steps on the remaining period
  boundaries.

Takeover latency (crash to promotion) and the monitoring cycles missed
in between feed the
:class:`~repro.chaos.scorecard.ResilienceScorecard` failover fields.
"""

from __future__ import annotations

from repro.core.manager import RM_PRIORITY, AdaptiveResourceManager
from repro.errors import ConfigurationError

#: Watch events run after RM steps and releases sharing their
#: timestamp, so a boundary-coincident check always sees the fresh
#: heartbeat (no false takeovers), and before checkpoints (priority
#: 100) so captures land inside the same timestamp's snapshot.
WATCH_PRIORITY = 50


class FailoverCoordinator:
    """Heartbeat lease over a primary RM, promoting a standby on expiry.

    Parameters
    ----------
    manager:
        The primary controller (must not have been started yet — arm
        the coordinator right after ``manager.start``).
    lease_timeout_s:
        Silence threshold before takeover.  Default ``1.6`` periods:
        comfortably above the one-period heartbeat cadence of a healthy
        controller, under two periods so at most one boundary is lost
        to detection.
    watch_interval_s:
        Watchdog cadence (default: a quarter period).
    """

    def __init__(
        self,
        manager: AdaptiveResourceManager,
        lease_timeout_s: float | None = None,
        watch_interval_s: float | None = None,
    ) -> None:
        period = manager.task.period
        self.primary = manager
        self.system = manager.system
        self.lease_timeout_s = (
            float(lease_timeout_s) if lease_timeout_s is not None else 1.6 * period
        )
        self.watch_interval_s = (
            float(watch_interval_s)
            if watch_interval_s is not None
            else period / 4.0
        )
        if self.lease_timeout_s <= 0.0:
            raise ConfigurationError(
                f"lease_timeout_s must be positive, got {self.lease_timeout_s}"
            )
        if self.watch_interval_s <= 0.0:
            raise ConfigurationError(
                f"watch_interval_s must be positive, got {self.watch_interval_s}"
            )
        #: The controller currently in charge (primary, then standby).
        self.active: AdaptiveResourceManager = manager
        self.standby: AdaptiveResourceManager | None = None
        self.crash_time: float | None = None
        self.takeover_time: float | None = None
        #: Controller-state captures taken (freshness of the standby).
        self.captures = 0
        self._state: dict[str, object] | None = None
        self._last_heartbeat = float("-inf")
        self._n_periods = 0
        self._first_release = 0.0

    def arm(self, n_periods: int, first_release: float = 0.0) -> "FailoverCoordinator":
        """Start the watchdog (call right after ``primary.start``)."""
        self._n_periods = int(n_periods)
        self._first_release = float(first_release)
        engine = self.system.engine
        self._last_heartbeat = engine.now
        engine.schedule(
            self.watch_interval_s,
            self._watch,
            priority=WATCH_PRIORITY,
            label="failover.watch",
        )
        return self

    def on_rm_crash(self, injection) -> None:
        """Chaos hook: kill the primary; the watchdog detects the rest."""
        self.primary.kill()
        if self.crash_time is None:
            self.crash_time = self.system.engine.now

    def _watch(self) -> None:
        """One lease check (self-chaining until takeover)."""
        engine = self.system.engine
        now = engine.now
        if self.active.last_step_time > self._last_heartbeat:
            # Fresh heartbeat: the controller stepped since last check.
            # Controller state only mutates inside step(), so this
            # capture is the consistent post-step state a standby needs.
            self._last_heartbeat = self.active.last_step_time
            self._state = self.active.state_dict()
            self.captures += 1
        elif (
            self.takeover_time is None
            and now - self._last_heartbeat > self.lease_timeout_s
        ):
            self._takeover(now)
        engine.schedule(
            self.watch_interval_s,
            self._watch,
            priority=WATCH_PRIORITY,
            label="failover.watch",
        )

    def _takeover(self, now: float) -> None:
        """Promote a standby from the last captured controller state."""
        primary = self.primary
        standby = AdaptiveResourceManager(
            primary.system,
            primary.executor,
            primary.estimator,
            primary.policy,
            config=primary.config,
            shutdown_strategy=primary.shutdown_strategy,
            total_workload_fn=primary.total_workload_fn,
            hardening=primary.hardening,
            fallback_policy=primary.fallback_policy,
        )
        if self._state is not None:
            standby.load_state_dict(self._state)
        period = primary.task.period
        remaining = [
            t
            for c in range(self._n_periods)
            if (t := self._first_release + c * period) > now
        ]
        if remaining:
            standby._step_events = self.system.engine.schedule_many(
                remaining, standby.step, priority=RM_PRIORITY, labels="rm.step"
            )
        self.standby = standby
        self.active = standby
        self.takeover_time = now
        self.system.engine.tracer.record(
            now,
            "rm",
            "rm.takeover",
            {
                "crash_time": self.crash_time,
                "latency_s": self.takeover_latency_s,
                "missed_cycles": self.missed_cycles(),
                "remaining_steps": len(remaining),
            },
        )

    # -- scorecard views ------------------------------------------------------

    @property
    def took_over(self) -> bool:
        """Whether the standby was promoted."""
        return self.takeover_time is not None

    @property
    def takeover_latency_s(self) -> float | None:
        """Crash-to-promotion latency (``None`` before both happened)."""
        if self.crash_time is None or self.takeover_time is None:
            return None
        return self.takeover_time - self.crash_time

    def missed_cycles(self) -> int:
        """Period boundaries with no live controller.

        Counts monitoring boundaries in ``(crash_time, takeover_time]``
        — or to the horizon's end when no takeover happened (the
        no-failover baseline's unbounded outage).
        """
        if self.crash_time is None:
            return 0
        end = (
            self.takeover_time
            if self.takeover_time is not None
            else float("inf")
        )
        period = self.primary.task.period
        return sum(
            1
            for c in range(self._n_periods)
            if self.crash_time < self._first_release + c * period <= end
        )
