"""Deterministic whole-run snapshots.

A :class:`SimSnapshot` is one pickle of the run's *world* object (the
:class:`~repro.experiments.runner.RunWorld` assembled by
:func:`~repro.experiments.runner.build_world`) plus the module-level id
counters that live outside it.  Pickling the world as a single object
preserves every shared reference — the engine's calendar, the rng
streams, the cluster, the executor's in-flight bookkeeping and the
controller all reconnect to the *same* restored instances, so a resumed
run replays the exact event sequence the original would have produced.

The capture is versioned (:data:`SNAPSHOT_SCHEMA_VERSION`): loading a
snapshot written by a newer schema fails loudly instead of silently
misinterpreting the payload.

What must hold for this to work (statically checked by the ``CKPT-*``
lint rules): nothing snapshot-reachable may close over locals or hold
OS handles without pickle support.  Every callback on the calendar is a
bound method or a module-level callable class;
:class:`~repro.telemetry.sinks.JsonlTraceSink` reopens its file in
append mode on restore.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: Version stamped into every snapshot.  History: v1 — pickled world
#: payload + ``counters`` (module id counters) + free-form ``meta``.
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SimSnapshot:
    """One versioned, self-contained capture of a run at time ``time``.

    Attributes
    ----------
    schema_version:
        Layout version (see :data:`SNAPSHOT_SCHEMA_VERSION`).
    time:
        Simulation time of the capture (seconds).
    payload:
        The pickled world object.
    counters:
        Module-level id counters (job/message ids) that are *not*
        reachable from the world but are decision-relevant: the
        processor-sharing tie-break orders jobs by ``(remaining,
        job_id)``, so a resumed run must mint the same ids the original
        would have.
    meta:
        Free-form context (label, config repr) for humans and tooling.
    """

    schema_version: int
    time: float
    payload: bytes
    counters: dict[str, int] = field(compare=False, default_factory=dict)
    meta: dict[str, Any] = field(compare=False, default_factory=dict)

    def save(self, path: str | Path) -> Path:
        """Persist the snapshot atomically (tmp sibling + rename)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return target

    @classmethod
    def load(cls, path: str | Path) -> "SimSnapshot":
        """Load a snapshot written by :meth:`save`, checking the schema."""
        path = Path(path)
        try:
            with path.open("rb") as handle:
                snapshot = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise ConfigurationError(
                f"cannot load snapshot from {path}: {exc}"
            ) from exc
        if not isinstance(snapshot, cls):
            raise ConfigurationError(
                f"{path} does not contain a SimSnapshot "
                f"(got {type(snapshot).__name__})"
            )
        _check_schema(snapshot.schema_version, origin=str(path))
        return snapshot


def _check_schema(version: int, origin: str = "<snapshot>") -> None:
    if not isinstance(version, int) or version < 1:
        raise ConfigurationError(
            f"{origin}: snapshot schema_version must be a positive "
            f"integer, got {version!r}"
        )
    if version > SNAPSHOT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{origin}: snapshot schema version {version} is newer than "
            f"this library understands (max {SNAPSHOT_SCHEMA_VERSION})"
        )


def take_snapshot(world: Any, label: str = "") -> SimSnapshot:
    """Capture ``world`` (anything with a ``.system.engine``) at now.

    The world is pickled as one object so shared references survive;
    the module-level job/message id counters ride alongside.
    """
    from repro.cluster import network, processor

    engine = world.system.engine
    return SimSnapshot(
        schema_version=SNAPSHOT_SCHEMA_VERSION,
        time=float(engine.now),
        payload=pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL),
        counters={
            "job_ids": processor._job_ids.value,
            "message_ids": network._message_ids.value,
        },
        meta={"label": label},
    )


def restore_snapshot(snapshot: SimSnapshot) -> Any:
    """Rebuild the captured world and rewind the module id counters.

    The returned world is a fresh object graph: running its engine to
    the original horizon replays the exact continuation the original
    run would have produced (bit-identical decision digest and
    metrics).
    """
    from repro.cluster import network, processor

    _check_schema(snapshot.schema_version)
    world = pickle.loads(snapshot.payload)
    processor._job_ids.reset(snapshot.counters.get("job_ids", 1))
    network._message_ids.reset(snapshot.counters.get("message_ids", 1))
    return world
