"""Crash-safe runs: checkpoint/restore, controller failover, resume.

Three layers, one goal — no run and no campaign loses work to a crash:

* :mod:`repro.recovery.snapshot` — :class:`SimSnapshot`, a versioned,
  deterministic capture of the *whole* run world (event calendar, rng
  streams, cluster/network/runtime state, controller state and module
  id counters).  Restoring one and running to the horizon is
  bit-identical to never having stopped.
* :mod:`repro.recovery.checkpoint` — :class:`Checkpointer`, periodic
  in-run snapshots armed via
  :class:`repro.experiments.config.ExperimentConfig` ``checkpoint=``.
  Checkpoint events never change decisions.
* :mod:`repro.recovery.failover` — :class:`FailoverCoordinator`, a
  standby resource manager with a heartbeat lease over the primary; on
  the ``rm_crash`` chaos fault it promotes the standby from the last
  captured controller state instead of leaving the run without
  adaptation.

Campaign-level resume (crash-tolerant cell journal, ``repro campaign
--resume``) builds on the same guarantees in
:mod:`repro.experiments.campaign`.
"""

from __future__ import annotations

from repro.recovery.checkpoint import CHECKPOINT_PRIORITY, Checkpointer
from repro.recovery.failover import FailoverCoordinator
from repro.recovery.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SimSnapshot,
    restore_snapshot,
    take_snapshot,
)

__all__ = [
    "CHECKPOINT_PRIORITY",
    "Checkpointer",
    "FailoverCoordinator",
    "SNAPSHOT_SCHEMA_VERSION",
    "SimSnapshot",
    "restore_snapshot",
    "resume_experiment",
    "take_snapshot",
]


def resume_experiment(snapshot: "SimSnapshot"):
    """Continue a checkpointed run to its horizon and finalize it.

    Restores the snapshot's world, runs the engine to the original end
    time, and returns the same
    :class:`~repro.experiments.runner.ExperimentResult` an uninterrupted
    :func:`~repro.experiments.runner.run_experiment` would have — bit
    for bit: identical decision digest, identical metrics.
    """
    from repro.experiments.runner import finalize_world

    world = restore_snapshot(snapshot)
    world.system.engine.run_until(world.end_time)
    return finalize_world(world)
