"""The stable public API of the repro distribution.

Everything a script, notebook, or downstream package should need is
re-exported here under one flat namespace::

    from repro.api import BaselineConfig, ExperimentConfig, fit_estimator, run_experiment

    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)
    result = run_experiment(
        ExperimentConfig(
            policy="predictive", pattern="triangular",
            max_workload_units=20.0, baseline=baseline,
        ),
        estimator=estimator,
    )

``__all__`` below *is* the compatibility contract: names listed there
follow deprecation policy (a release of DeprecationWarning before
removal) and are pinned by ``tests/test_public_api.py`` against a
checked-in snapshot.  Deep imports (``repro.core.manager``, ...) keep
working but carry no such promise — the ``repro lint`` LAY-FACADE rule
keeps the shipped examples and scripts off them.

:func:`fit_estimator` is the single estimator entry point, merging the
two historical ones: ``repro.bench.build_estimator(task, ...)`` (fresh
profiling campaign for a custom task) and
``repro.experiments.get_default_estimator(baseline, ...)`` (cached fit
for a baseline configuration).  Both old names still work everywhere
they used to exist, with a DeprecationWarning.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.bench.app import aaw_task, default_initial_placement
from repro.bench.datasets import (
    PAPER_TABLE2_COEFFICIENTS,
    paper_comm_model,
    paper_latency_model,
)
from repro.bench.ground_truth import LinearServiceModel, QuadraticServiceModel
from repro.bench.profiler import (
    profile_buffer_delay,
    profile_subtask,
)
from repro.bench.profiler import (
    build_estimator as _build_estimator,
)
from repro.chaos import (
    ChaosInjector,
    ChaosScenario,
    ResilienceScorecard,
    compute_scorecard,
    get_scenario,
    run_chaos_experiment,
    scenario_names,
)
from repro.cluster.background import BackgroundLoad
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.index import IndexStats, UtilizationIndex
from repro.cluster.processor import Processor
from repro.cluster.topology import System, build_system
from repro.core.allocation import (
    AllocationContext,
    AllocationOutcome,
    AllocationPlan,
    AllocationRequest,
    Allocator,
    CandidatePolicyAdapter,
    as_allocator,
    get_allocator,
    get_policy,
    register_policy,
    registered_policies,
)
from repro.core.deadlines import assign_deadlines
from repro.core.hardening import ForecastCircuitBreaker, HardeningConfig
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import shut_down_a_replica
from repro.core.zoo import (
    FairShareAllocator,
    MarketAllocator,
    OracleAllocator,
)
from repro.errors import ChaosError, ConfigurationError, ReproError
from repro.experiments.breakdown import LatencyBreakdown, compute_breakdown
from repro.experiments.campaign import (
    CampaignFailure,
    CampaignResult,
    CampaignSpec,
    rollup_campaign,
    run_campaign,
)
from repro.experiments.capacity import CapacityPlan, plan_capacity
from repro.experiments.config import (
    DEFAULT_SWEEP_UNITS,
    BaselineConfig,
    ExperimentConfig,
)
from repro.experiments.estimator_cache import get_estimator as _get_estimator
from repro.experiments.export import (
    SCHEMA_VERSION,
    check_schema_version,
    metrics_from_json,
    metrics_to_json,
)
from repro.experiments.forecast_eval import CalibrationReport, evaluate_forecasts
from repro.experiments.history_index import RunHistoryIndex
from repro.experiments.metrics import (
    ExperimentMetrics,
    compute_metrics,
    regret_by_policy,
)
from repro.experiments.replication import ReplicatedResult, replicate_experiment
from repro.experiments.report import format_sparkline, format_table
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    sweep_workloads,
)
from repro.experiments.timeline import Timeline, extract_timeline, render_timeline
from repro.experiments.validation import validate_reproduction
from repro.experiments.journal import CampaignJournal
from repro.parallel import JobFailure, ShardPlan, plan_shards, run_sharded
from repro.recovery import (
    Checkpointer,
    FailoverCoordinator,
    SimSnapshot,
    restore_snapshot,
    resume_experiment,
    take_snapshot,
)
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.serialization import (
    latency_model_from_dict,
    latency_model_to_dict,
)
from repro.runtime.executor import PeriodicTaskExecutor
from repro.sim.engine import Engine
from repro.sim.vector import VectorizedEngine
from repro.tasks.builder import TaskBuilder
from repro.tasks.model import PeriodicTask
from repro.tasks.state import ReplicaAssignment
from repro.telemetry import (
    DEFAULT_SLO_RULES,
    CampaignRollup,
    JsonlTraceSink,
    MetricsRegistry,
    RunProfiler,
    SloEngine,
    SloReport,
    SloRule,
    TelemetryHub,
    load_slo_rules,
    merge_rollups,
    render_report,
    write_report,
)
from repro.workloads.patterns import (
    BurstyPattern,
    StepPattern,
    make_pattern,
    mission_profile,
)
from repro.workloads.sensors import TrackStreamGenerator


def fit_estimator(
    baseline: BaselineConfig | None = None,
    *,
    task: PeriodicTask | None = None,
    cache_dir: str | Path | None = None,
    repetitions: int = 2,
    **profile_kwargs: Any,
) -> TimingEstimator:
    """Profile the benchmark and fit the paper's regression models.

    The one estimator entry point, in two modes:

    * ``fit_estimator(baseline)`` — the fit for a
      :class:`BaselineConfig` (defaults to Table 1), served from the
      in-process cache, then the optional ``cache_dir`` disk cache,
      then a fresh §4.2.1 profiling campaign.
    * ``fit_estimator(task=task, ...)`` — an uncached campaign against
      a custom :class:`PeriodicTask`; extra keywords (``u_grid``,
      ``d_grid_tracks``, ``seed``, ``bandwidth_bps``, ...) go straight
      to the profiler.

    Giving both a baseline and a task — or profiling-grid keywords
    without a task — raises :class:`ConfigurationError`.
    """
    if task is not None:
        if baseline is not None:
            raise ConfigurationError(
                "fit_estimator takes a baseline or a task, not both"
            )
        if cache_dir is not None:
            raise ConfigurationError(
                "cache_dir applies to baseline fits only; custom-task "
                "fits are never cached"
            )
        return _build_estimator(task, repetitions=repetitions, **profile_kwargs)
    if profile_kwargs:
        raise ConfigurationError(
            f"profiling-grid keyword(s) {sorted(profile_kwargs)} require "
            "a task=... fit"
        )
    if baseline is None:
        baseline = BaselineConfig()
    return _get_estimator(baseline, cache_dir=cache_dir, repetitions=repetitions)


__all__ = [
    "AdaptiveResourceManager",
    "AllocationContext",
    "AllocationOutcome",
    "AllocationPlan",
    "AllocationRequest",
    "Allocator",
    "BackgroundLoad",
    "BaselineConfig",
    "BurstyPattern",
    "CalibrationReport",
    "CampaignFailure",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRollup",
    "CampaignSpec",
    "CandidatePolicyAdapter",
    "CapacityPlan",
    "ChaosError",
    "ChaosInjector",
    "ChaosScenario",
    "Checkpointer",
    "ConfigurationError",
    "DEFAULT_SLO_RULES",
    "DEFAULT_SWEEP_UNITS",
    "Engine",
    "ExecutionLatencyModel",
    "ExperimentConfig",
    "ExperimentMetrics",
    "ExperimentResult",
    "FailoverCoordinator",
    "FailureEvent",
    "FailureInjector",
    "FairShareAllocator",
    "ForecastCircuitBreaker",
    "HardeningConfig",
    "IndexStats",
    "JobFailure",
    "JsonlTraceSink",
    "LatencyBreakdown",
    "LinearServiceModel",
    "MarketAllocator",
    "MetricsRegistry",
    "NonPredictivePolicy",
    "OracleAllocator",
    "PAPER_TABLE2_COEFFICIENTS",
    "PeriodicTask",
    "PeriodicTaskExecutor",
    "PredictivePolicy",
    "Processor",
    "QuadraticServiceModel",
    "RMConfig",
    "ReplicaAssignment",
    "ReplicatedResult",
    "ReproError",
    "ResilienceScorecard",
    "RunHistoryIndex",
    "RunProfiler",
    "SCHEMA_VERSION",
    "ShardPlan",
    "SimSnapshot",
    "SloEngine",
    "SloReport",
    "SloRule",
    "StepPattern",
    "System",
    "TaskBuilder",
    "TelemetryHub",
    "Timeline",
    "TimingEstimator",
    "TrackStreamGenerator",
    "UtilizationIndex",
    "VectorizedEngine",
    "aaw_task",
    "as_allocator",
    "assign_deadlines",
    "build_system",
    "check_schema_version",
    "compute_breakdown",
    "compute_metrics",
    "compute_scorecard",
    "default_initial_placement",
    "evaluate_forecasts",
    "extract_timeline",
    "fit_estimator",
    "format_sparkline",
    "format_table",
    "get_allocator",
    "get_policy",
    "get_scenario",
    "latency_model_from_dict",
    "latency_model_to_dict",
    "load_slo_rules",
    "make_pattern",
    "merge_rollups",
    "metrics_from_json",
    "metrics_to_json",
    "mission_profile",
    "paper_comm_model",
    "paper_latency_model",
    "plan_capacity",
    "plan_shards",
    "profile_buffer_delay",
    "profile_subtask",
    "register_policy",
    "registered_policies",
    "regret_by_policy",
    "render_report",
    "render_timeline",
    "replicate_experiment",
    "restore_snapshot",
    "resume_experiment",
    "rollup_campaign",
    "run_campaign",
    "run_chaos_experiment",
    "run_experiment",
    "run_sharded",
    "scenario_names",
    "shut_down_a_replica",
    "sweep_workloads",
    "take_snapshot",
    "validate_reproduction",
    "write_report",
]
