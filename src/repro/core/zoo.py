"""Competing cycle-scoped allocators — the allocator zoo (ROADMAP item 2).

The paper only ever compares two step-2 algorithms, both per-candidate.
The two-level :class:`~repro.core.allocation.Allocator` contract makes
room for designs that must reason over *all* replication candidates and
the whole cluster at once; this module ships three such baselines:

* :class:`MarketAllocator` — price-driven clearing in the spirit of
  utility/price-based distributed resource adaptation (Chasparis et
  al., arXiv:1508.04544): congested processors are expensive,
  candidates bid predicted benefit per unit price, and one trade clears
  per round.
* :class:`FairShareAllocator` — dominant-resource-fairness ordering
  (progressive filling over processor slots and network bytes): the
  candidate with the smallest dominant share gets the next replica.
* :class:`OracleAllocator` — an upper baseline with *perfect* CPU
  forecasts straight from the ground-truth service models (the
  benchmark's ``repro.bench.ground_truth`` instances, reached through
  the :class:`~repro.tasks.model.ServiceModel` contract so the core
  layer never imports bench).  Its combined metric C anchors the
  per-policy *regret* measure
  (:func:`repro.experiments.metrics.regret_by_policy`) — how much C a
  policy gives up to imperfect forecasting, in the spirit of
  replication-count selection against latency tails
  (Wang/Joshi/Wornell, arXiv:1404.1328).

All three consume only the :class:`~repro.core.allocation.AllocationContext`
surface — the one utilization snapshot per cycle, the candidate list,
the hardened loop's exclusions — and are exactly as deterministic as
the paper policies: no RNG, ties broken by candidate order and
processor creation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.processor import Processor
from repro.core.allocation import (
    AllocationContext,
    AllocationOutcome,
    AllocationPlan,
    register_policy,
)
from repro.errors import ConfigurationError

#: Utilizations this close to saturation are clamped when inverting
#: ``1 - u`` (price and stretch denominators stay finite).
_SATURATION_EPS = 0.05


def _forecast_latency(
    context: AllocationContext,
    subtask_index: int,
    snapshot: dict[str, float],
    extra_processor: str | None = None,
) -> float:
    """Worst replica's forecast ``eex + ecd`` against a fixed snapshot.

    Same regression models as Figure 5 (eq. 3 for execution, eqs. 4-6
    for the incoming message), but every utilization reading comes from
    the cycle's one :meth:`AllocationContext.utilization_snapshot` —
    cycle-scoped allocators price and rank from a consistent view
    instead of issuing per-step queries.  ``extra_processor`` evaluates
    a hypothetical placement without mutating the assignment.
    """
    replicas = list(context.assignment.processors_of(subtask_index))
    if extra_processor is not None:
        replicas.append(extra_processor)
    share = context.d_tracks / len(replicas)
    if subtask_index > 1:
        ecd = context.estimator.ecd_seconds(
            subtask_index - 1, share, context.total_periodic_tracks
        )
    else:
        ecd = 0.0
    worst = 0.0
    for name in replicas:
        utilization = snapshot.get(name, 0.0)
        eex = context.estimator.eex_seconds(subtask_index, share, utilization)
        worst = max(worst, eex + ecd)
    return max(0.0, worst)


def _least_utilized(
    processors: list[Processor], snapshot: dict[str, float]
) -> Processor | None:
    """Cheapest-by-utilization processor, ties by creation order."""
    best: Processor | None = None
    best_key: tuple[float, int] | None = None
    for position, processor in enumerate(processors):
        key = (snapshot.get(processor.name, 0.0), position)
        if best_key is None or key < best_key:
            best, best_key = processor, key
    return best


@dataclass
class _CandidateState:
    """Book-keeping for one replication candidate during clearing."""

    subtask_index: int
    threshold: float
    forecast: float
    added: list[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        """Whether the current forecast fits within the slack target."""
        return self.forecast <= self.threshold


def _plan_from_states(
    states: list[_CandidateState], allocator_name: str
) -> AllocationPlan:
    """Freeze clearing state into an :class:`AllocationPlan`."""
    return AllocationPlan(
        outcomes=tuple(
            AllocationOutcome(
                subtask_index=state.subtask_index,
                success=state.satisfied,
                added_processors=tuple(state.added),
                forecast_latency=state.forecast,
            )
            for state in states
        ),
        allocator_name=allocator_name,
    )


@dataclass(frozen=True)
class MarketAllocator:
    """Price-driven iterative clearing over all candidates at once.

    Each cycle every processor is assigned a congestion price
    ``1 / max(price_floor, 1 - u)`` from the utilization snapshot —
    idle processors are cheap, saturated ones prohibitively expensive.
    Unsatisfied candidates bid their predicted benefit per unit price
    (forecast improvement from one more replica, divided by the price
    of their cheapest admissible processor); the highest bid wins one
    trade per round, and the traded processor's price inflates by
    ``congestion_increment`` so later rounds spread load.  Clearing
    stops when every candidate's forecast fits its slack target, no
    admissible processors remain, or no bid is positive.

    Attributes
    ----------
    slack_fraction:
        Figure 5's ``sl``, reused as the acceptance target.
    price_floor:
        Lower clamp on ``1 - u`` when pricing (keeps prices finite).
    congestion_increment:
        Fractional price inflation applied to a processor per trade.
    max_rounds:
        Hard cap on clearing rounds per cycle.
    """

    slack_fraction: float = 0.2
    price_floor: float = _SATURATION_EPS
    congestion_increment: float = 0.25
    max_rounds: int = 64
    name: str = "market"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ConfigurationError(
                f"slack_fraction must be in [0, 1), got {self.slack_fraction}"
            )
        if self.price_floor <= 0.0:
            raise ConfigurationError(
                f"price_floor must be positive, got {self.price_floor}"
            )
        if self.congestion_increment < 0.0:
            raise ConfigurationError(
                "congestion_increment must be non-negative, got "
                f"{self.congestion_increment}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def allocate(self, context: AllocationContext) -> AllocationPlan:
        """Clear the cycle's replication market."""
        snapshot = context.utilization_snapshot()
        prices = {
            name: 1.0 / max(self.price_floor, 1.0 - min(utilization, 1.0))
            for name, utilization in snapshot.items()
        }
        states = [
            _CandidateState(
                subtask_index=subtask_index,
                threshold=context.stage_threshold(
                    subtask_index, self.slack_fraction
                ),
                forecast=_forecast_latency(context, subtask_index, snapshot),
            )
            for subtask_index in context.candidates
        ]
        for _ in range(self.max_rounds):
            bids: list[tuple[float, int, _CandidateState, Processor, float]] = []
            for order, state in enumerate(states):
                if state.satisfied:
                    continue
                available = context.available_processors(state.subtask_index)
                cheapest = None
                cheapest_key: tuple[float, int] | None = None
                for position, processor in enumerate(available):
                    key = (prices.get(processor.name, 1.0), position)
                    if cheapest_key is None or key < cheapest_key:
                        cheapest, cheapest_key = processor, key
                if cheapest is None:
                    continue
                trial = _forecast_latency(
                    context, state.subtask_index, snapshot, cheapest.name
                )
                benefit = max(0.0, state.forecast - trial)
                price = prices.get(cheapest.name, 1.0)
                bids.append((benefit / price, -order, state, cheapest, trial))
            if not bids:
                break
            bid, _, state, processor, trial = max(bids, key=lambda b: b[:2])
            if bid <= 0.0:
                break
            context.assignment.add_replica(state.subtask_index, processor.name)
            state.added.append(processor.name)
            state.forecast = trial
            prices[processor.name] = prices.get(processor.name, 1.0) * (
                1.0 + self.congestion_increment
            )
            if all(s.satisfied for s in states):
                break
        return _plan_from_states(states, self.name)


@dataclass(frozen=True)
class FairShareAllocator:
    """DRF-style progressive filling across the cycle's candidates.

    Each candidate's *dominant share* is the larger of its two resource
    shares: processor slots (its replica count over the live cluster
    size) and network bytes (its incoming message's per-period wire
    payload over the whole task's wire payload at the current
    placement).  Progressive filling repeatedly grants the candidate
    with the smallest dominant share one replica on the least-utilized
    admissible processor, until every candidate's forecast fits its
    slack target or nothing admissible remains — so a replica-hungry
    stage cannot starve the others of placement opportunities.

    Attributes
    ----------
    slack_fraction:
        Figure 5's ``sl``, reused as the acceptance target.
    max_rounds:
        Hard cap on filling rounds per cycle.
    """

    slack_fraction: float = 0.2
    max_rounds: int = 64
    name: str = "fairshare"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ConfigurationError(
                f"slack_fraction must be in [0, 1), got {self.slack_fraction}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def _wire_bytes(self, context: AllocationContext, subtask_index: int) -> float:
        """Per-period wire bytes of a subtask's incoming replica messages."""
        if subtask_index <= 1:
            return 0.0
        message = context.task.message(subtask_index - 1)
        replicas = context.assignment.replica_count(subtask_index)
        share = context.d_tracks / replicas
        return replicas * message.wire_payload_bytes(share, context.d_tracks)

    def _dominant_share(
        self, context: AllocationContext, subtask_index: int, live_count: int
    ) -> float:
        """The DRF dominant share: max of CPU-slot and network share."""
        cpu_share = context.assignment.replica_count(subtask_index) / max(
            live_count, 1
        )
        total_bytes = sum(
            self._wire_bytes(context, subtask.index)
            for subtask in context.task.subtasks
        )
        if total_bytes <= 0.0:
            return cpu_share
        net_share = self._wire_bytes(context, subtask_index) / total_bytes
        return max(cpu_share, net_share)

    def allocate(self, context: AllocationContext) -> AllocationPlan:
        """Progressive filling in dominant-share order."""
        snapshot = context.utilization_snapshot()
        live_count = len(context.system.live_processors())
        states = [
            _CandidateState(
                subtask_index=subtask_index,
                threshold=context.stage_threshold(
                    subtask_index, self.slack_fraction
                ),
                forecast=_forecast_latency(context, subtask_index, snapshot),
            )
            for subtask_index in context.candidates
        ]
        for _ in range(self.max_rounds):
            grantable = [
                (order, state)
                for order, state in enumerate(states)
                if not state.satisfied
                and context.available_processors(state.subtask_index)
            ]
            if not grantable:
                break
            _, state = min(
                grantable,
                key=lambda pair: (
                    self._dominant_share(
                        context, pair[1].subtask_index, live_count
                    ),
                    pair[0],
                ),
            )
            available = context.available_processors(state.subtask_index)
            target = _least_utilized(available, snapshot)
            assert target is not None  # grantable guarantees availability
            context.assignment.add_replica(state.subtask_index, target.name)
            state.added.append(target.name)
            state.forecast = _forecast_latency(
                context, state.subtask_index, snapshot
            )
        return _plan_from_states(states, self.name)


@dataclass(frozen=True)
class OracleAllocator:
    """Upper baseline: Figure 5's growth loop with perfect CPU forecasts.

    Where the predictive policy forecasts execution latency through the
    profiled regression fit (eq. 3), the oracle reads the *ground
    truth*: each subtask's :class:`~repro.tasks.model.ServiceModel`
    evaluated at the per-replica share with ``rng=None`` (the
    contract's noise-free mean — the benchmark's
    ``repro.bench.ground_truth`` models), stretched by the hosting
    processor's utilization headroom ``demand / max(eps, 1 - u)`` — the
    processor-sharing slowdown the simulator actually applies.
    Communication still goes through the estimator's eqs. 4-6: the
    oracle is an oracle for CPU demand, the quantity the paper's
    regression chases.  Its combined metric C is the reference point of
    :func:`repro.experiments.metrics.regret_by_policy`.

    Attributes
    ----------
    slack_fraction:
        Figure 5's ``sl``, reused as the acceptance target.
    max_rounds:
        Hard cap on growth steps per candidate per cycle.
    """

    slack_fraction: float = 0.2
    max_rounds: int = 64
    name: str = "oracle"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ConfigurationError(
                f"slack_fraction must be in [0, 1), got {self.slack_fraction}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def _true_latency(
        self,
        context: AllocationContext,
        subtask_index: int,
        snapshot: dict[str, float],
    ) -> float:
        """Ground-truth worst replica latency at the current placement."""
        replicas = context.assignment.processors_of(subtask_index)
        share = context.d_tracks / len(replicas)
        service = context.task.subtask(subtask_index).service
        demand = service.demand(share, None)
        if subtask_index > 1:
            ecd = context.estimator.ecd_seconds(
                subtask_index - 1, share, context.total_periodic_tracks
            )
        else:
            ecd = 0.0
        worst = 0.0
        for name in replicas:
            utilization = min(snapshot.get(name, 0.0), 1.0)
            stretch = demand / max(_SATURATION_EPS, 1.0 - utilization)
            worst = max(worst, stretch + ecd)
        return max(0.0, worst)

    def allocate(self, context: AllocationContext) -> AllocationPlan:
        """Grow each candidate until the true forecast fits the budget."""
        snapshot = context.utilization_snapshot()
        states: list[_CandidateState] = []
        for subtask_index in context.candidates:
            state = _CandidateState(
                subtask_index=subtask_index,
                threshold=context.stage_threshold(
                    subtask_index, self.slack_fraction
                ),
                forecast=self._true_latency(context, subtask_index, snapshot),
            )
            for _ in range(self.max_rounds):
                if state.satisfied:
                    break
                available = context.available_processors(subtask_index)
                target = _least_utilized(available, snapshot)
                if target is None:
                    break
                context.assignment.add_replica(subtask_index, target.name)
                state.added.append(target.name)
                state.forecast = self._true_latency(
                    context, subtask_index, snapshot
                )
            states.append(state)
        return _plan_from_states(states, self.name)


register_policy("market", MarketAllocator)
register_policy("fairshare", FairShareAllocator)
register_policy("oracle", OracleAllocator)
