"""Degraded-input defenses for the RM control loop.

The paper's controller assumes its inputs are trustworthy: utilization
readings are current and within [0, 1], placements succeed, and the
regression forecasts stay calibrated.  Under the fault processes of
:mod:`repro.chaos` every one of those assumptions breaks, and a naive
predictive controller fails ungracefully — it concentrates replicas on
a processor whose reading is corrupted, re-places work on a flapping
node the instant it recovers, and keeps trusting eq. 3 forecasts long
after interference has invalidated them.

This module holds the three defenses the
:class:`~repro.core.manager.AdaptiveResourceManager` activates when
constructed with a :class:`HardeningConfig` (the default, ``None``,
leaves every decision sequence bit-identical to the unhardened loop):

* :class:`PlacementGuard` — excludes repeat-offender processors
  (several crashes inside a sliding window) and processors whose
  utilization reading is non-finite or outside [0, 1] from placement
  for the current cycle;
* :class:`AllocationBackoff` — bounded exponential backoff per subtask
  after FAILED replication attempts, so a hopeless candidate is not
  retried every single period;
* :class:`ForecastCircuitBreaker` — tracks predicted-vs-realized stage
  latency and, when mispredictions exceed a threshold, falls back from
  the predictive policy (Figure 5) to the non-predictive one
  (Figure 7), re-arming after a quiet cooldown window.

:func:`sanitize_reading` is the last line of defense: the hardened
manager installs it as the
:attr:`~repro.core.allocation.AllocationRequest.reading_guard`, so a
corrupted reading that slips past the placement guard (e.g. on a
processor that already hosts a replica) is clamped before it can reach
the regression models.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.cluster.topology import System
from repro.errors import ConfigurationError


def sanitize_reading(reading: float, fallback: float) -> float:
    """A utilization reading forced into the plausible range.

    Non-finite readings (NaN, inf) become ``fallback``; finite readings
    are clamped into [0, 1].  The unhardened loop never calls this —
    feeding eq. 3 an implausible utilization raises
    :class:`~repro.errors.RegressionError` there, which *is* the
    controller crashing on faulty input.
    """
    if not math.isfinite(reading):
        return fallback
    return min(1.0, max(0.0, reading))


@dataclass(frozen=True, kw_only=True)
class HardeningConfig:
    """Tunables of the hardened control loop.

    Attributes
    ----------
    max_record_age_s:
        Monitor input hygiene: finished-period records whose resolution
        time is older than this are ignored by the monitor instead of
        silently averaged (``None`` keeps every record, the unhardened
        behavior).
    offender_failure_threshold / offender_window_s:
        A processor with at least ``offender_failure_threshold`` crashes
        inside the trailing ``offender_window_s`` seconds is excluded
        from placement until the window drains.  The defaults only trip
        for genuinely *flapping* nodes; ordinary crash/recovery churn
        (one failure per window) must keep its capacity schedulable.
    guard_min_available:
        Capacity floor: the guard never excludes live processors below
        this fraction of the live cluster (rounded up).  Shedding
        untrustworthy targets must not starve placement — with a
        too-eager guard the cure is worse than the fault.
    backoff_initial_cycles / backoff_max_cycles:
        After a FAILED replication attempt the subtask is skipped for
        ``initial * 2**(consecutive_failures - 1)`` RM cycles, capped at
        ``backoff_max_cycles``.
    breaker_error_ratio:
        Relative forecast error ``|realized - forecast| / forecast``
        above which one realization counts as a misprediction.
    breaker_trip_count / breaker_window:
        The breaker opens when at least ``breaker_trip_count`` of the
        last ``breaker_window`` realizations were mispredictions.
    breaker_cooldown_s:
        Seconds the breaker stays open before re-arming (half-open: the
        next misprediction re-opens it immediately).
    """

    max_record_age_s: float | None = 4.0
    offender_failure_threshold: int = 3
    offender_window_s: float = 20.0
    guard_min_available: float = 0.5
    backoff_initial_cycles: int = 1
    backoff_max_cycles: int = 8
    breaker_error_ratio: float = 0.5
    breaker_trip_count: int = 3
    breaker_window: int = 8
    breaker_cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_record_age_s is not None and self.max_record_age_s <= 0.0:
            raise ConfigurationError(
                f"max_record_age_s must be positive, got {self.max_record_age_s}"
            )
        if self.offender_failure_threshold < 1:
            raise ConfigurationError(
                "offender_failure_threshold must be >= 1, got "
                f"{self.offender_failure_threshold}"
            )
        if self.offender_window_s <= 0.0:
            raise ConfigurationError(
                f"offender_window_s must be positive, got {self.offender_window_s}"
            )
        if not 0.0 <= self.guard_min_available <= 1.0:
            raise ConfigurationError(
                "guard_min_available must be in [0, 1], got "
                f"{self.guard_min_available}"
            )
        if self.backoff_initial_cycles < 1:
            raise ConfigurationError(
                "backoff_initial_cycles must be >= 1, got "
                f"{self.backoff_initial_cycles}"
            )
        if self.backoff_max_cycles < self.backoff_initial_cycles:
            raise ConfigurationError(
                "backoff_max_cycles must be >= backoff_initial_cycles, got "
                f"{self.backoff_max_cycles}"
            )
        if self.breaker_error_ratio <= 0.0:
            raise ConfigurationError(
                f"breaker_error_ratio must be positive, got {self.breaker_error_ratio}"
            )
        if not 1 <= self.breaker_trip_count <= self.breaker_window:
            raise ConfigurationError(
                "breaker_trip_count must be in [1, breaker_window], got "
                f"{self.breaker_trip_count} (window {self.breaker_window})"
            )
        if self.breaker_cooldown_s <= 0.0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be positive, got {self.breaker_cooldown_s}"
            )


class PlacementGuard:
    """Per-cycle exclusion of untrustworthy placement targets.

    Two independent signals feed the exclusion set:

    * **repeat offenders** — :meth:`observe` diffs every processor's
      cumulative ``failure_count`` and timestamps each new crash; a
      processor with ``offender_failure_threshold`` or more crashes in
      the trailing ``offender_window_s`` is excluded, so a flapping
      node stops being the "least utilized" target the moment it
      recovers (its meter is idle precisely *because* it keeps dying);
    * **implausible readings** — a utilization reading that is NaN,
      infinite, or outside [0, 1] cannot come from a healthy busy
      fraction; the processor is excluded rather than trusted (a
      corrupted reading of -1 would otherwise *win* every
      least-utilized query).
    """

    def __init__(self, system: System, config: HardeningConfig) -> None:
        self.system = system
        self.config = config
        self._last_counts: dict[str, int] = {
            p.name: p.failure_count for p in system.processors
        }
        self._crash_times: dict[str, deque[float]] = {
            p.name: deque() for p in system.processors
        }
        #: Cumulative exclusions by reason, for the scorecard/telemetry.
        self.exclusions: dict[str, int] = {"offender": 0, "reading": 0}

    def observe(self, now: float) -> None:
        """Record any crashes since the previous cycle."""
        for processor in self.system.processors:
            seen = self._last_counts[processor.name]
            if processor.failure_count > seen:
                times = self._crash_times[processor.name]
                times.extend([now] * (processor.failure_count - seen))
                self._last_counts[processor.name] = processor.failure_count

    def excluded(self, now: float) -> frozenset[str]:
        """Processors to keep out of placement this cycle.

        Candidates are ranked worst-first (implausible readings, then
        offenders by crash count) and applied only while the
        ``guard_min_available`` capacity floor holds: at least that
        fraction of the *live* cluster stays schedulable no matter how
        many processors look untrustworthy.
        """
        horizon = now - self.config.offender_window_s
        bad_readings: list[str] = []
        offenders: list[tuple[int, str]] = []
        for processor in self.system.processors:
            times = self._crash_times[processor.name]
            while times and times[0] < horizon:
                times.popleft()
            reading = processor.utilization()
            if not math.isfinite(reading) or not 0.0 <= reading <= 1.0:
                bad_readings.append(processor.name)
            elif len(times) >= self.config.offender_failure_threshold:
                offenders.append((len(times), processor.name))
        offenders.sort(key=lambda item: (-item[0], item[1]))
        live = {p.name for p in self.system.processors if not p.failed}
        min_available = math.ceil(len(live) * self.config.guard_min_available)
        budget = max(0, len(live) - min_available)
        names: set[str] = set()
        live_excluded = 0
        for reason, name in [("reading", n) for n in bad_readings] + [
            ("offender", n) for _, n in offenders
        ]:
            if name in live:
                if live_excluded >= budget:
                    continue
                live_excluded += 1
            names.add(name)
            self.exclusions[reason] += 1
        return frozenset(names)


class AllocationBackoff:
    """Bounded exponential backoff for failed replication attempts.

    Cycles are RM step indices, not seconds: the manager runs once per
    period, so "skip 4 cycles" is four periods of not hammering a
    candidate that Figure 5 just declared unsatisfiable.
    """

    def __init__(self, config: HardeningConfig) -> None:
        self.config = config
        self._consecutive: dict[int, int] = {}
        self._next_allowed: dict[int, int] = {}
        #: Replication attempts suppressed, for the scorecard.
        self.suppressed = 0

    def should_attempt(self, subtask_index: int, cycle: int) -> bool:
        """Whether this cycle may try to replicate ``subtask_index``."""
        allowed = cycle >= self._next_allowed.get(subtask_index, 0)
        if not allowed:
            self.suppressed += 1
        return allowed

    def record_failure(self, subtask_index: int, cycle: int) -> None:
        """Note a FAILED outcome and push out the next attempt."""
        consecutive = self._consecutive.get(subtask_index, 0) + 1
        self._consecutive[subtask_index] = consecutive
        delay = min(
            self.config.backoff_initial_cycles * 2 ** (consecutive - 1),
            self.config.backoff_max_cycles,
        )
        self._next_allowed[subtask_index] = cycle + delay

    def record_success(self, subtask_index: int) -> None:
        """A successful attempt clears the subtask's backoff state."""
        self._consecutive.pop(subtask_index, None)
        self._next_allowed.pop(subtask_index, None)


class ForecastCircuitBreaker:
    """Fall back to the non-predictive policy when forecasts go bad.

    States follow the classic pattern: **closed** (predictive policy
    active, realizations monitored), **open** (non-predictive fallback,
    waiting out the cooldown), **half-open** (predictive again, but one
    more misprediction re-opens immediately).  The error history is
    cleared on every transition so stale samples cannot re-trip a
    freshly re-armed breaker.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: HardeningConfig) -> None:
        self.config = config
        self.state = self.CLOSED
        self.trips = 0
        self.observations = 0
        self.mispredictions = 0
        self._errors: deque[bool] = deque(maxlen=config.breaker_window)
        self._opened_at = 0.0

    def observe(self, now: float, forecast_s: float, realized_s: float) -> None:
        """Feed one predicted-vs-realized stage latency pair."""
        if self.state == self.OPEN:
            return
        error_ratio = abs(realized_s - forecast_s) / max(forecast_s, 1e-9)
        bad = error_ratio > self.config.breaker_error_ratio
        self.observations += 1
        if bad:
            self.mispredictions += 1
        if self.state == self.HALF_OPEN:
            if bad:
                self._trip(now)
            else:
                self.state = self.CLOSED
            return
        self._errors.append(bad)
        if sum(self._errors) >= self.config.breaker_trip_count:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = self.OPEN
        self.trips += 1
        self._opened_at = now
        self._errors.clear()

    def allow_predictive(self, now: float) -> bool:
        """Whether the predictive policy may run this cycle."""
        if self.state == self.OPEN:
            if now - self._opened_at >= self.config.breaker_cooldown_s:
                self.state = self.HALF_OPEN
                self._errors.clear()
                return True
            return False
        return True
