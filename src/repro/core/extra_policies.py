"""Additional allocation policies beyond the paper's two.

These bracket the design space and serve the extension studies:

* :class:`NoAdaptationPolicy` — never replicates.  The lower bound on
  resource usage and the upper bound on misses; shows what the
  monitoring/adaptation machinery buys at all.
* :class:`StaticMaxPolicy` — replicates a candidate onto *every*
  remaining processor unconditionally (the non-predictive baseline with
  ``UT = 100 %``).  The upper bound on resource usage.
* :class:`HybridPolicy` — the predictive Figure 5 loop, but falling
  back to the non-predictive heuristic when the forecast cannot be
  satisfied (Figure 5 returns FAILURE).  A natural "belt and braces"
  variant: forecasting when it can help, greed when the model says the
  budget is unreachable anyway.

All are registered in the policy registry, so experiment configs can
select them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import (
    AllocationOutcome,
    AllocationRequest,
    register_policy,
)
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy


@dataclass(frozen=True)
class NoAdaptationPolicy:
    """Never replicate; candidates are acknowledged and ignored."""

    name: str = "noadapt"

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Report FAILURE without touching the placement."""
        return AllocationOutcome(
            subtask_index=request.subtask_index, success=False
        )


@dataclass(frozen=True)
class StaticMaxPolicy:
    """Replicate a candidate onto every remaining processor."""

    name: str = "staticmax"

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Grab the whole machine for the candidate subtask."""
        hosting = set(request.assignment.processors_of(request.subtask_index))
        added: list[str] = []
        for processor in request.system.live_processors():
            if processor.name not in hosting:
                request.assignment.add_replica(
                    request.subtask_index, processor.name
                )
                added.append(processor.name)
        return AllocationOutcome(
            subtask_index=request.subtask_index,
            success=True,
            added_processors=tuple(added),
        )


@dataclass(frozen=True)
class HybridPolicy:
    """Figure 5 first; Figure 7 to mop up if the forecast is unreachable.

    When the predictive loop exhausts the machine without satisfying the
    budget (FAILURE), the placement already holds every processor, so
    the fallback's only effect is bookkeeping: the outcome is reported
    as the heuristic's.  The interesting behaviour is earlier: on
    *partial* machines (some processors over the utilization threshold)
    the fallback can still pick up sub-threshold processors the
    predictive loop would have taken next anyway.
    """

    predictive: PredictivePolicy = field(default_factory=PredictivePolicy)
    fallback: NonPredictivePolicy = field(default_factory=NonPredictivePolicy)
    name: str = "hybrid"

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Forecast-driven growth with a heuristic fallback."""
        outcome = self.predictive.replicate(request)
        if outcome.success:
            return outcome
        fallback_outcome = self.fallback.replicate(request)
        return AllocationOutcome(
            subtask_index=request.subtask_index,
            success=fallback_outcome.success,
            added_processors=outcome.added_processors
            + fallback_outcome.added_processors,
            forecast_latency=outcome.forecast_latency,
        )


register_policy("noadapt", NoAdaptationPolicy)
register_policy("staticmax", StaticMaxPolicy)
register_policy("hybrid", HybridPolicy)
