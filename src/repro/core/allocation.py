"""The two-level allocation contract (redesign of Figure 1, box 2).

The paper's step-2 algorithms are strictly *per-candidate*: given one
replication candidate, decide how many replicas and on which
processors.  That shape — :class:`AllocationPolicy` with
``replicate(AllocationRequest) -> AllocationOutcome`` — cannot express
allocators that must reason over **all** candidates and the whole
cluster at once (market clearing, dominant-resource fairness, oracle
planning).  This module layers the contract in two levels:

**Level 1 — per-candidate** (the paper's shape, unchanged):
:class:`AllocationRequest` / :class:`AllocationOutcome` /
:class:`AllocationPolicy`.  Figure 5 and Figure 7 live here, as do all
user-registered policies written against the historical API.

**Level 2 — per-cycle**: an :class:`Allocator` receives one
:class:`AllocationContext` per monitoring cycle — every replication
candidate the monitor flagged, the full utilization snapshot (served by
the :class:`~repro.cluster.index.UtilizationIndex` when armed), the
estimator, the stage budgets, and the hardened loop's exclusions — and
returns an :class:`AllocationPlan`.  The
:class:`~repro.core.manager.AdaptiveResourceManager` drives level 2
exclusively.

:class:`CandidatePolicyAdapter` lifts any level-1 policy into level 2
by replaying the manager's historical candidate loop, so predictive and
non-predictive runs keep **bit-identical decision digests** through the
redesign (pinned by ``tests/integration/test_allocator_digest_equivalence.py``).

A registry maps names (``"predictive"``, ``"market"``, ...) to
factories so experiment configs select allocators by string;
:func:`get_allocator` instantiates and lifts in one step.

This module is the canonical home of every name that used to live in
``repro.core.allocator``; the old module path keeps working behind
:class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Protocol, Union, runtime_checkable

from repro.cluster.processor import Processor
from repro.cluster.topology import System
from repro.core.deadlines import DeadlineAssignment
from repro.errors import AllocationError
from repro.regression.estimator import TimingEstimator
from repro.tasks.model import PeriodicTask
from repro.tasks.state import ReplicaAssignment


# -- level 1: the per-candidate contract (the paper's shape) ---------------------


@dataclass(frozen=True)
class AllocationRequest:
    """Everything a policy may consult when handling one candidate.

    Attributes
    ----------
    task / subtask_index:
        The replication candidate.
    assignment:
        Live placement; policies mutate it via its invariant-checked API.
    system:
        The cluster (source of ``ut(p, t)`` readings).
    estimator:
        Regression-backed ``eex``/``ecd`` (the predictive policy's
        forecasting oracle; the non-predictive policy ignores it).
    deadlines:
        Current per-stage budgets.
    d_tracks:
        ``ds(T, c)``: data items in the current period.
    total_periodic_tracks:
        Total workload across all tasks this period (drives eq. 5).
    excluded_processors:
        Processors the hardened loop has ruled out this cycle (repeat
        offenders, implausible readings — see
        :class:`repro.core.hardening.PlacementGuard`).  Policies must
        not place replicas there; empty in the unhardened loop.
    reading_guard:
        Optional sanitizer applied to every utilization reading a
        policy feeds into the regression models (the hardened loop
        installs :func:`repro.core.hardening.sanitize_reading`;
        ``None`` — the unhardened default — uses readings verbatim).
    """

    task: PeriodicTask
    subtask_index: int
    assignment: ReplicaAssignment
    system: System
    estimator: TimingEstimator
    deadlines: DeadlineAssignment
    d_tracks: float
    total_periodic_tracks: float
    excluded_processors: frozenset[str] = frozenset()
    reading_guard: Callable[[float], float] | None = None


@dataclass(frozen=True)
class AllocationOutcome:
    """What an allocator did with one candidate.

    ``success`` mirrors Figure 5's SUCCESS/FAILURE: the predictive
    policy reports FAILURE when it ran out of processors before the
    forecast satisfied the budget (replicas added along the way are
    kept, as in the paper's pseudo-code, which never rolls back).
    """

    subtask_index: int
    success: bool
    added_processors: tuple[str, ...] = field(default_factory=tuple)
    forecast_latency: float | None = None

    @property
    def changed(self) -> bool:
        """Whether the placement was modified."""
        return bool(self.added_processors)


class AllocationPolicy(Protocol):
    """Level-1 (per-candidate) step-2 algorithm interface."""

    name: str

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Handle one replication candidate (Figure 5 / Figure 7)."""
        ...


# -- level 2: the per-cycle contract ---------------------------------------------


@dataclass(frozen=True)
class AllocationContext:
    """One monitoring cycle's whole allocation problem.

    Everything a cycle-scoped allocator may consult: the candidates the
    monitor flagged REPLICATE (in verdict order, post backoff filter),
    the live placement, the cluster, the estimator, the stage budgets,
    the current workload, and the hardened loop's exclusions.

    Attributes
    ----------
    candidates:
        Subtask indices flagged REPLICATE this cycle, in monitor
        verdict order.  Per-candidate adapters consume them in exactly
        this order — that is what keeps the historical policies
        bit-identical.
    cycle:
        The RM step index (``len(manager.history)`` at step time).
    now:
        Simulation time of the step.

    The remaining fields carry the same payload as
    :class:`AllocationRequest` (which :meth:`request_for` derives per
    candidate).
    """

    task: PeriodicTask
    assignment: ReplicaAssignment
    system: System
    estimator: TimingEstimator
    deadlines: DeadlineAssignment
    d_tracks: float
    total_periodic_tracks: float
    candidates: tuple[int, ...] = ()
    excluded_processors: frozenset[str] = frozenset()
    reading_guard: Callable[[float], float] | None = None
    cycle: int = 0
    now: float = 0.0

    def request_for(self, subtask_index: int) -> AllocationRequest:
        """The level-1 request for one candidate of this cycle."""
        return AllocationRequest(
            task=self.task,
            subtask_index=subtask_index,
            assignment=self.assignment,
            system=self.system,
            estimator=self.estimator,
            deadlines=self.deadlines,
            d_tracks=self.d_tracks,
            total_periodic_tracks=self.total_periodic_tracks,
            excluded_processors=self.excluded_processors,
            reading_guard=self.reading_guard,
        )

    def utilization_snapshot(
        self, window: float | None = None
    ) -> dict[str, float]:
        """``ut(p, t)`` for every processor, reading-guard applied.

        With the default window the snapshot is served through the
        incremental :class:`~repro.cluster.index.UtilizationIndex`-backed
        readings the paper policies see; cycle-scoped allocators price
        or rank the whole cluster from this one dict instead of issuing
        per-candidate queries.
        """
        raw = self.system.utilizations(window=window)
        if self.reading_guard is None:
            return raw
        guard = self.reading_guard
        return {name: guard(value) for name, value in raw.items()}

    def available_processors(self, subtask_index: int) -> list[Processor]:
        """Live processors a candidate may still be replicated onto.

        Excludes failed processors, the candidate's current hosts
        (replicas of one subtask must sit on distinct processors), and
        the hardened loop's ``excluded_processors`` — in creation
        order, so every allocator sees the same deterministic sweep.
        """
        hosting = set(self.assignment.processors_of(subtask_index))
        blocked = hosting | self.excluded_processors
        return [
            processor
            for processor in self.system.live_processors()
            if processor.name not in blocked
        ]

    def stage_threshold(
        self, subtask_index: int, slack_fraction: float
    ) -> float:
        """Figure 5's acceptance bound: budget minus the desired slack."""
        budget = self.deadlines.stage_budget(subtask_index)
        return budget - slack_fraction * budget


@dataclass(frozen=True)
class AllocationPlan:
    """A cycle-scoped allocator's answer: one outcome per candidate.

    Outcomes keep candidate order.  ``allocator_name`` records which
    allocator actually produced the plan (the hardened loop's circuit
    breaker may have substituted the fallback).
    """

    outcomes: tuple[AllocationOutcome, ...] = ()
    allocator_name: str = ""

    @property
    def changed(self) -> bool:
        """Whether any outcome modified the placement."""
        return any(outcome.changed for outcome in self.outcomes)

    def outcome_for(self, subtask_index: int) -> AllocationOutcome | None:
        """The outcome recorded for one candidate, if any."""
        for outcome in self.outcomes:
            if outcome.subtask_index == subtask_index:
                return outcome
        return None


@runtime_checkable
class Allocator(Protocol):
    """Level-2 (cycle-scoped) step-2 algorithm interface."""

    name: str

    def allocate(self, context: AllocationContext) -> AllocationPlan:
        """Resolve every replication candidate of one cycle."""
        ...


@dataclass(frozen=True)
class CandidatePolicyAdapter:
    """Lift a level-1 :class:`AllocationPolicy` into the level-2 contract.

    Replays the manager's historical loop — one
    ``policy.replicate(request)`` call per candidate, in candidate
    order — so adapted policies take bit-identical decisions to the
    pre-redesign control loop.
    """

    policy: AllocationPolicy

    @property
    def name(self) -> str:
        """The adapted policy's registry name."""
        return self.policy.name

    def allocate(self, context: AllocationContext) -> AllocationPlan:
        """One ``replicate`` call per candidate, in candidate order."""
        outcomes = tuple(
            self.policy.replicate(context.request_for(subtask_index))
            for subtask_index in context.candidates
        )
        return AllocationPlan(outcomes=outcomes, allocator_name=self.name)


#: Anything the registry may hand back: either contract level.
AnyAllocator = Union[Allocator, AllocationPolicy]


def as_allocator(candidate: AnyAllocator) -> Allocator:
    """Coerce either contract level to a cycle-scoped :class:`Allocator`.

    Level-2 allocators pass through untouched; level-1 policies are
    wrapped in a :class:`CandidatePolicyAdapter`.  Objects exposing
    neither ``allocate`` nor ``replicate`` raise
    :class:`~repro.errors.AllocationError`.
    """
    if hasattr(candidate, "allocate"):
        return candidate  # type: ignore[return-value]
    if hasattr(candidate, "replicate"):
        return CandidatePolicyAdapter(candidate)  # type: ignore[arg-type]
    raise AllocationError(
        f"{type(candidate).__name__} implements neither the Allocator nor "
        "the AllocationPolicy contract (no allocate()/replicate() method)"
    )


# -- the registry -----------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., AnyAllocator]] = {}


def register_policy(name: str, factory: Callable[..., AnyAllocator]) -> None:
    """Register an allocator factory under ``name``.

    Factories may build either contract level; :func:`get_allocator`
    lifts level-1 products automatically.  Re-registering the same
    factory under the same name is a no-op; a different factory raises.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise AllocationError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def _accepted_kwargs(factory: Callable[..., AnyAllocator]) -> list[str]:
    """The keyword parameters a factory's signature accepts."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables only
        return []
    return [
        parameter.name
        for parameter in signature.parameters.values()
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    ]


def get_policy(name: str, **kwargs: object) -> AnyAllocator:
    """Instantiate a registered allocator factory by name.

    Returns whatever the factory builds (either contract level); use
    :func:`get_allocator` for a ready-to-run level-2 allocator.  A
    factory rejecting the keyword arguments surfaces as
    :class:`~repro.errors.AllocationError` naming the policy and the
    keywords its factory accepts, instead of a bare ``TypeError``
    traceback from deep inside the constructor.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise AllocationError(
            f"unknown policy {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    try:
        return factory(**kwargs)
    except TypeError as exc:
        accepted = _accepted_kwargs(factory)
        raise AllocationError(
            f"policy {name!r} rejected keyword(s) {sorted(kwargs)}: {exc}; "
            f"accepted keyword(s): {accepted}"
        ) from exc


def get_allocator(name: str, **kwargs: object) -> Allocator:
    """Instantiate a registered allocator, lifted to the level-2 contract.

    ``get_allocator("predictive")`` returns the Figure 5 policy wrapped
    in a :class:`CandidatePolicyAdapter`; ``get_allocator("market")``
    returns the cycle-scoped market allocator directly.
    """
    return as_allocator(get_policy(name, **kwargs))


def registered_policies() -> tuple[str, ...]:
    """Names of all registered allocators (sorted)."""
    return tuple(sorted(_REGISTRY))
