"""Subtask/message deadline assignment (paper §4.1, eqs. 1-2).

The end-to-end task deadline is decomposed into per-stage *budgets* so
the monitor can judge each subtask and message individually.  The paper
uses "a variant of the equal flexibility (EQF) strategy proposed in
[KG97]"; its eqs. 1-2 simplify algebraically to

``dl(x_i) = est(x_i) * dl(T) / RemainingWork(x_i)``

where ``RemainingWork(x_i)`` is the estimated work (execution +
communication) from stage ``x_i`` to the end of the chain.  Three
strategies are provided (the E-X4 ablation compares them):

``sequential_eqf`` (default)
    Kao & Garcia-Molina's original EQF applied stage by stage with the
    running start-time estimate; budgets sum exactly to the deadline.
``paper_eqf``
    The literal eqs. 1-2 form above.  Note its terminal-stage budget is
    the *entire* end-to-end deadline (``RemainingWork(st_n) = est_n``),
    which makes the last subtask effectively unmonitorable — we believe
    this is an artifact of how the equations are typeset and that the
    authors' "variant" behaved like sequential EQF, so sequential EQF is
    the default; the literal form is kept for the E-X4 ablation.
``proportional``
    ``est_i * dl(T) / TotalWork`` — the equal-slack baseline.

Index convention (see :mod:`repro.tasks.model`): the chain is
``st1, m1, st2, ..., m(n-1), stn``; message ``m_j`` follows subtask
``st_j``.  Deadlines are recomputed (same strategy, fresh estimates)
after every resource-management action, as §4.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tasks.model import PeriodicTask

#: Known strategies, for validation and the ablation bench.
STRATEGIES = ("paper_eqf", "sequential_eqf", "proportional")


@dataclass(frozen=True)
class DeadlineAssignment:
    """Per-stage budgets derived from the end-to-end deadline.

    Attributes
    ----------
    subtask_deadlines:
        ``dl(st_j)`` in seconds, keyed by chain index.
    message_deadlines:
        ``dl(m_j)`` in seconds, keyed by message index.
    strategy:
        Which decomposition produced these budgets.
    """

    subtask_deadlines: dict[int, float]
    message_deadlines: dict[int, float]
    strategy: str

    def stage_budget(self, subtask_index: int) -> float:
        """Budget for the monitored stage latency of subtask ``j``.

        Per the paper's footnote 3, the delay of the message feeding a
        replica is incorporated into the successor subtask's deadline,
        so the stage budget is ``dl(m_{j-1}) + dl(st_j)`` (just
        ``dl(st_1)`` for the first stage).
        """
        budget = self.subtask_deadlines[subtask_index]
        if subtask_index > 1:
            budget += self.message_deadlines[subtask_index - 1]
        return budget

    def total_budget(self) -> float:
        """Sum of all subtask and message budgets."""
        return sum(self.subtask_deadlines.values()) + sum(
            self.message_deadlines.values()
        )


def assign_deadlines(
    task: PeriodicTask,
    exec_estimates: list[float],
    comm_estimates: list[float],
    strategy: str = "sequential_eqf",
) -> DeadlineAssignment:
    """Decompose ``dl(T)`` into per-stage budgets.

    Parameters
    ----------
    task:
        The task whose chain is being budgeted.
    exec_estimates:
        ``eex`` estimate per subtask, in chain order (seconds).  The
        paper seeds these with ``(dinit, uinit)`` estimates and refreshes
        them with current conditions on every re-assignment.
    comm_estimates:
        ``ecd`` estimate per message, in chain order (seconds).
    strategy:
        One of :data:`STRATEGIES`.
    """
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown deadline strategy {strategy!r}; choose from {STRATEGIES}"
        )
    n = task.n_subtasks
    if len(exec_estimates) != n:
        raise ConfigurationError(
            f"need {n} execution estimates, got {len(exec_estimates)}"
        )
    if len(comm_estimates) != n - 1:
        raise ConfigurationError(
            f"need {n - 1} communication estimates, got {len(comm_estimates)}"
        )
    if any(e <= 0.0 for e in exec_estimates):
        raise ConfigurationError("execution estimates must be positive")
    if any(c < 0.0 for c in comm_estimates):
        raise ConfigurationError("communication estimates must be non-negative")

    # Interleave the chain: st1, m1, st2, m2, ..., stn.
    # Entries are (kind, index, estimate).
    chain: list[tuple[str, int, float]] = []
    for j in range(1, n + 1):
        chain.append(("st", j, float(exec_estimates[j - 1])))
        if j < n:
            # Zero-cost messages still need a positive sliver of budget
            # for the EQF ratios to be well defined.
            chain.append(("m", j, max(float(comm_estimates[j - 1]), 1e-9)))

    deadline = task.deadline
    total = sum(est for _, _, est in chain)
    subtask_deadlines: dict[int, float] = {}
    message_deadlines: dict[int, float] = {}

    if strategy == "proportional":
        for kind, index, est in chain:
            budget = est * deadline / total
            _store(kind, index, budget, subtask_deadlines, message_deadlines)
    elif strategy == "paper_eqf":
        remaining = total
        for kind, index, est in chain:
            budget = est * deadline / remaining
            _store(kind, index, budget, subtask_deadlines, message_deadlines)
            remaining -= est
    else:  # sequential_eqf
        start = 0.0
        remaining = total
        for kind, index, est in chain:
            slack = deadline - start - remaining
            budget = est + slack * est / remaining
            # Under overload (negative slack) EQF can drive a budget
            # negative; floor it at a fraction of the estimate so the
            # monitor still has a meaningful threshold.
            budget = max(budget, 0.1 * est)
            _store(kind, index, budget, subtask_deadlines, message_deadlines)
            start += budget
            remaining -= est

    return DeadlineAssignment(
        subtask_deadlines=subtask_deadlines,
        message_deadlines=message_deadlines,
        strategy=strategy,
    )


def _store(
    kind: str,
    index: int,
    budget: float,
    subtask_deadlines: dict[int, float],
    message_deadlines: dict[int, float],
) -> None:
    if kind == "st":
        subtask_deadlines[index] = budget
    else:
        message_deadlines[index] = budget
