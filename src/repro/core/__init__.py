"""The paper's contribution: adaptive resource management (§4).

The two-step process of Figure 1:

1. **Run-time monitoring and candidate selection** (common to both
   algorithms): EQF-variant subtask/message deadline assignment
   (:mod:`repro.core.deadlines`, eqs. 1-2) and slack-based candidate
   detection (:mod:`repro.core.monitoring`).
2. **Determining replicas and processors** (where the algorithms
   differ): the predictive algorithm (:mod:`repro.core.predictive`,
   Figure 5) forecasts replica timeliness via the regression models and
   adds replicas incrementally on least-utilized processors; the
   non-predictive baseline (:mod:`repro.core.nonpredictive`, Figure 7)
   replicates onto every processor below a utilization threshold.
   Both shut replicas down LIFO (:mod:`repro.core.shutdown`, Figure 6).

:class:`~repro.core.manager.AdaptiveResourceManager` wires the steps
into the periodic control loop.
"""

from repro.core.allocator import (
    AllocationOutcome,
    AllocationPolicy,
    AllocationRequest,
    get_policy,
    register_policy,
)
from repro.core.deadlines import DeadlineAssignment, assign_deadlines
from repro.core.degradation import DataShedder, DegradationController
from repro.core.extra_policies import (
    HybridPolicy,
    NoAdaptationPolicy,
    StaticMaxPolicy,
)
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.monitoring import MonitorAction, MonitorReport, RuntimeMonitor
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import (
    ForecastAwareShutdown,
    LifoShutdown,
    shut_down_a_replica,
)

__all__ = [
    "AdaptiveResourceManager",
    "AllocationOutcome",
    "AllocationPolicy",
    "AllocationRequest",
    "DataShedder",
    "DeadlineAssignment",
    "DegradationController",
    "ForecastAwareShutdown",
    "HybridPolicy",
    "LifoShutdown",
    "MonitorAction",
    "MonitorReport",
    "NoAdaptationPolicy",
    "NonPredictivePolicy",
    "PredictivePolicy",
    "RMConfig",
    "RuntimeMonitor",
    "StaticMaxPolicy",
    "assign_deadlines",
    "get_policy",
    "register_policy",
    "shut_down_a_replica",
]
