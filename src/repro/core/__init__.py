"""The paper's contribution: adaptive resource management (§4).

The two-step process of Figure 1:

1. **Run-time monitoring and candidate selection** (common to both
   algorithms): EQF-variant subtask/message deadline assignment
   (:mod:`repro.core.deadlines`, eqs. 1-2) and slack-based candidate
   detection (:mod:`repro.core.monitoring`).
2. **Determining replicas and processors** (where the algorithms
   differ): the predictive algorithm (:mod:`repro.core.predictive`,
   Figure 5) forecasts replica timeliness via the regression models and
   adds replicas incrementally on least-utilized processors; the
   non-predictive baseline (:mod:`repro.core.nonpredictive`, Figure 7)
   replicates onto every processor below a utilization threshold.
   Both shut replicas down LIFO (:mod:`repro.core.shutdown`, Figure 6).

:class:`~repro.core.manager.AdaptiveResourceManager` wires the steps
into the periodic control loop.
"""

from repro.core.allocation import (
    AllocationContext,
    AllocationOutcome,
    AllocationPlan,
    AllocationPolicy,
    AllocationRequest,
    Allocator,
    CandidatePolicyAdapter,
    as_allocator,
    get_allocator,
    get_policy,
    register_policy,
    registered_policies,
)
from repro.core.deadlines import DeadlineAssignment, assign_deadlines
from repro.core.degradation import DataShedder, DegradationController
from repro.core.extra_policies import (
    HybridPolicy,
    NoAdaptationPolicy,
    StaticMaxPolicy,
)
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.monitoring import MonitorAction, MonitorReport, RuntimeMonitor
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import (
    ForecastAwareShutdown,
    LifoShutdown,
    shut_down_a_replica,
)
from repro.core.zoo import (
    FairShareAllocator,
    MarketAllocator,
    OracleAllocator,
)

__all__ = [
    "AdaptiveResourceManager",
    "AllocationContext",
    "AllocationOutcome",
    "AllocationPlan",
    "AllocationPolicy",
    "AllocationRequest",
    "Allocator",
    "CandidatePolicyAdapter",
    "DataShedder",
    "DeadlineAssignment",
    "DegradationController",
    "FairShareAllocator",
    "ForecastAwareShutdown",
    "HybridPolicy",
    "LifoShutdown",
    "MarketAllocator",
    "MonitorAction",
    "MonitorReport",
    "NoAdaptationPolicy",
    "NonPredictivePolicy",
    "OracleAllocator",
    "PredictivePolicy",
    "RMConfig",
    "RuntimeMonitor",
    "StaticMaxPolicy",
    "as_allocator",
    "assign_deadlines",
    "get_allocator",
    "get_policy",
    "register_policy",
    "registered_policies",
    "shut_down_a_replica",
]
