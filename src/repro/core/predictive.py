"""The predictive allocation algorithm — paper Figure 5.

``ReplicateSubtask(st, t)`` grows the replica set one processor at a
time, always taking the least-utilized processor not already hosting a
replica, and after each growth step *forecasts* every replica's stage
latency with the regression models:

* each of the ``k`` replicas will process ``d / k`` items
  (``d = ds(T, c)``, the current period's workload);
* its execution latency is forecast by eq. 3 at the hosting processor's
  *observed* utilization;
* its incoming message (from the predecessor subtask) is forecast by
  eqs. 4-6 at the current total periodic workload.

Growth stops as soon as every replica's forecast ``eex + ecd`` fits
within the stage budget minus the desired slack ``sl = slack_fraction *
budget`` (paper: 20 %); it fails — keeping the replicas added so far,
as the pseudo-code does — when no processors remain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import (
    AllocationOutcome,
    AllocationRequest,
    register_policy,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PredictivePolicy:
    """Figure 5, parameterized by the desired slack fraction.

    Attributes
    ----------
    slack_fraction:
        ``sl`` as a fraction of the stage budget (paper: 0.2).
    utilization_window:
        Optional override of the window used to read ``ut(p, t)``.
    """

    slack_fraction: float = 0.2
    utilization_window: float | None = None
    name: str = "predictive"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ConfigurationError(
                f"slack_fraction must be in [0, 1), got {self.slack_fraction}"
            )

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Grow ``PS(st)`` until the forecast satisfies the budget."""
        subtask_index = request.subtask_index
        budget = request.deadlines.stage_budget(subtask_index)
        threshold = budget - self.slack_fraction * budget
        added: list[str] = []
        worst_forecast: float | None = None
        telemetry = request.system.engine.telemetry

        while True:
            hosting = set(request.assignment.processors_of(subtask_index))
            exclude = (
                hosting | request.excluded_processors
                if request.excluded_processors
                else hosting
            )
            candidate = request.system.least_utilized(
                exclude=exclude, window=self.utilization_window
            )
            if candidate is None:
                # Step 2: PT is empty -> FAILURE (added replicas stay).
                return AllocationOutcome(
                    subtask_index=subtask_index,
                    success=False,
                    added_processors=tuple(added),
                    forecast_latency=worst_forecast,
                )
            request.assignment.add_replica(subtask_index, candidate.name)
            added.append(candidate.name)
            profiler = telemetry.profiler if telemetry.enabled else None
            if profiler is not None:
                handle = profiler.begin("rm.forecast")
            worst_forecast = self._forecast_worst_replica(request)
            if profiler is not None:
                profiler.end(
                    handle,
                    events=request.assignment.replica_count(subtask_index),
                )
            accepted = worst_forecast <= threshold
            if telemetry.enabled:
                telemetry.on_forecast(
                    request.system.engine.now,
                    subtask_index,
                    request.assignment.replica_count(subtask_index),
                    worst_forecast,
                    threshold,
                    accepted,
                )
            if accepted:
                return AllocationOutcome(
                    subtask_index=subtask_index,
                    success=True,
                    added_processors=tuple(added),
                    forecast_latency=worst_forecast,
                )
            # Step 6.6.1: forecast too slow -> add another replica.

    def _forecast_worst_replica(self, request: AllocationRequest) -> float:
        """Max forecast ``eex + ecd`` over the current replica set (step 6).

        ``ecd`` depends only on the share and the total workload, so it
        is evaluated once; the per-replica ``eex`` sweep is batched into
        one NumPy call when the estimator supports it (bit-identical to
        the scalar loop — see
        :meth:`repro.regression.latency_model.ExecutionLatencyModel.predict_seconds_many`).
        """
        subtask_index = request.subtask_index
        replicas = request.assignment.processors_of(subtask_index)
        share = request.d_tracks / len(replicas)
        if subtask_index > 1:
            ecd = request.estimator.ecd_seconds(
                subtask_index - 1, share, request.total_periodic_tracks
            )
        else:
            ecd = 0.0
        guard = request.reading_guard
        batch = getattr(request.estimator, "eex_seconds_many", None)
        if batch is not None:
            utilizations = [
                request.system.processor(name).utilization(
                    window=self.utilization_window
                )
                for name in replicas
            ]
            if guard is not None:
                utilizations = [guard(u) for u in utilizations]
            eex_arr = batch(subtask_index, share, utilizations)
            return max(0.0, float(np.max(eex_arr + ecd)))
        worst = 0.0
        for name in replicas:
            utilization = request.system.processor(name).utilization(
                window=self.utilization_window
            )
            if guard is not None:
                utilization = guard(utilization)
            eex = request.estimator.eex_seconds(subtask_index, share, utilization)
            worst = max(worst, eex + ecd)
        return worst


register_policy("predictive", PredictivePolicy)
