"""The non-predictive baseline — paper Figure 7.

``ReplicateSubtask(st, t)`` replicates the candidate onto **every**
processor whose observed utilization is below the threshold ``UT``
(Table 1: 20 %), with no forecasting whatsoever:

.. code-block:: text

    for every p in PR - PS(st):
        if ut(p, t) < UT:
            PS(st) := PS(st) + {p}

This greedy resource grab is what drives the baseline's behaviour in
the paper's evaluation: low missed-deadline ratio and CPU utilization
(lots of parallelism) at the cost of far more replicas and network
utilization — which the combined metric penalizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import (
    AllocationOutcome,
    AllocationRequest,
    register_policy,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NonPredictivePolicy:
    """Figure 7, parameterized by the utilization threshold ``UT``.

    Attributes
    ----------
    utilization_threshold:
        ``UT``: processors at or above this busy fraction are considered
        highly utilized and skipped (Table 1: 0.20).
    utilization_window:
        Optional override of the window used to read ``ut(p, t)``.
    """

    utilization_threshold: float = 0.20
    utilization_window: float | None = None
    name: str = "nonpredictive"

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization_threshold <= 1.0:
            raise ConfigurationError(
                f"utilization_threshold must be in (0, 1], got "
                f"{self.utilization_threshold}"
            )

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Add every below-threshold processor to ``PS(st)``.

        The threshold sweep is served by the utilization index
        (:meth:`repro.cluster.topology.System.processors_below`), which
        returns the same processors in the same creation order as the
        Figure 7 full scan.
        """
        subtask_index = request.subtask_index
        hosting = set(request.assignment.processors_of(subtask_index))
        added: list[str] = []
        below = request.system.processors_below(
            self.utilization_threshold, window=self.utilization_window
        )
        for processor in below:
            if (
                processor.name not in hosting
                and processor.name not in request.excluded_processors
            ):
                request.assignment.add_replica(subtask_index, processor.name)
                added.append(processor.name)
        # Figure 7 has no failure branch; the heuristic always "succeeds".
        return AllocationOutcome(
            subtask_index=subtask_index,
            success=True,
            added_processors=tuple(added),
        )


register_policy("nonpredictive", NonPredictivePolicy)
