"""Replica shutdown — paper Figure 6 (``ShutDownAReplica``).

When a subtask exhibits very high slack the manager de-allocates one
replica per monitoring pass, always the **most recently added** one
(LIFO), and never the original:

.. code-block:: text

    ShutDownAReplica(st):
        if |PS(st)| == 1: return            # keep the original
        p := last added element of PS(st)
        PS(st) := PS(st) - {p}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.tasks.state import ReplicaAssignment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.allocation import AllocationRequest


def shut_down_a_replica(
    assignment: ReplicaAssignment, subtask_index: int
) -> str | None:
    """Remove the last-added replica of ``st`` (Figure 6).

    Returns the name of the processor the replica was removed from, or
    ``None`` when only the original replica remained and nothing was
    done.
    """
    return assignment.remove_last_replica(subtask_index)


class ShutdownStrategy(Protocol):
    """How the manager de-allocates when the monitor says SHUTDOWN."""

    name: str

    def shutdown(self, request: "AllocationRequest") -> str | None:
        """Possibly remove one replica; return the freed processor."""
        ...


@dataclass(frozen=True)
class LifoShutdown:
    """The paper's Figure 6: unconditionally drop the last-added replica."""

    name: str = "lifo"

    def shutdown(self, request: "AllocationRequest") -> str | None:
        """Remove the newest replica of the candidate subtask."""
        return shut_down_a_replica(request.assignment, request.subtask_index)


@dataclass(frozen=True)
class ForecastAwareShutdown:
    """Extension: drop a replica only if the forecast says it is safe.

    Figure 6 shuts down purely on observed slack, which under a
    fluctuating workload can oscillate: high slack at the trough
    triggers a shutdown whose effect only shows at the next peak, where
    the subtask misses and is re-replicated.  This strategy simulates
    the removal first: it forecasts every remaining replica's latency
    (eq. 3 + eq. 4 at current conditions, exactly the Figure 5 check)
    for the ``k - 1``-replica configuration and proceeds only if the
    forecast still clears the stage budget with the desired slack.

    Attributes
    ----------
    slack_fraction:
        The same ``sl`` as Figure 5 (paper: 0.2).
    """

    slack_fraction: float = 0.2
    name: str = "forecast-aware"

    def shutdown(self, request: "AllocationRequest") -> str | None:
        """Remove the newest replica iff the k-1 forecast stays timely."""
        assignment = request.assignment
        subtask_index = request.subtask_index
        count = assignment.replica_count(subtask_index)
        if count <= 1:
            return None
        telemetry = request.system.engine.telemetry
        profiler = telemetry.profiler if telemetry.enabled else None
        if profiler is not None:
            handle = profiler.begin("rm.forecast")
        survivors = assignment.processors_of(subtask_index)[:-1]
        share = request.d_tracks / len(survivors)
        budget = request.deadlines.stage_budget(subtask_index)
        threshold = budget - self.slack_fraction * budget
        ecd = 0.0
        if subtask_index > 1:
            ecd = request.estimator.ecd_seconds(
                subtask_index - 1, share, request.total_periodic_tracks
            )
        batch = getattr(request.estimator, "eex_seconds_many", None)
        if batch is not None:
            # One NumPy call covers the whole k-1 survivor sweep
            # (bit-identical to the scalar loop below).
            utilizations = [
                request.system.processor(name).utilization() for name in survivors
            ]
            eex_arr = batch(subtask_index, share, utilizations)
            worst = max(0.0, float(np.max(eex_arr + ecd)))
        else:
            worst = 0.0
            for name in survivors:
                utilization = request.system.processor(name).utilization()
                eex = request.estimator.eex_seconds(subtask_index, share, utilization)
                worst = max(worst, eex + ecd)
        if profiler is not None:
            profiler.end(handle, events=len(survivors))
        if worst > threshold:
            return None  # removing would (per the model) break timeliness
        return assignment.remove_last_replica(subtask_index)
