"""The adaptive resource manager — the control loop of Figure 1.

Once per task period (just *before* the next release, so a new
allocation takes effect immediately) the manager:

1. reads the executor's finished-period records and overdue in-flight
   stages;
2. runs the :class:`~repro.core.monitoring.RuntimeMonitor` to classify
   every replicable subtask;
3. bundles every REPLICATE candidate into one cycle-scoped
   :class:`~repro.core.allocation.AllocationContext` and hands it to the
   configured :class:`~repro.core.allocation.Allocator` (per-candidate
   policies — predictive Figure 5, non-predictive Figure 7 — ride
   through :class:`~repro.core.allocation.CandidatePolicyAdapter`);
   each SHUTDOWN candidate goes to Figure 6's LIFO de-allocation;
4. re-assigns the EQF deadlines whenever the placement changed (§4.1:
   "at each time a resource management action ... is taken, the subtask
   deadlines are re-assigned"), feeding the estimator with *current*
   conditions (per-replica data shares, mean observed utilization);
5. appends an :class:`RMEvent` to its history — the experiment metrics
   derive the "average number of subtask replicas" from these samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.topology import System
from repro.core.allocation import (
    AllocationContext,
    AllocationOutcome,
    Allocator,
    AnyAllocator,
    as_allocator,
)
from repro.core.deadlines import DeadlineAssignment, assign_deadlines
from repro.core.hardening import (
    AllocationBackoff,
    ForecastCircuitBreaker,
    HardeningConfig,
    PlacementGuard,
    sanitize_reading,
)
from repro.core.monitoring import MonitorAction, MonitorReport, RuntimeMonitor
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.shutdown import LifoShutdown, ShutdownStrategy
from repro.errors import ConfigurationError
from repro.regression.estimator import TimingEstimator
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

#: RM steps run before releases that share their timestamp.
RM_PRIORITY = -10


@dataclass(frozen=True)
class RMConfig:
    """Tunables of the resource-management loop.

    Attributes
    ----------
    slack_fraction:
        Desired slack on stage budgets, as a fraction (paper: 0.2).
        Used by both the monitor's replicate rule and Figure 5's ``sl``.
    shutdown_slack_fraction:
        Slack fraction above which replicas are shut down.
    monitor_window:
        Periods averaged per monitoring verdict.
    deadline_strategy:
        Budget decomposition (see :mod:`repro.core.deadlines`).
    initial_d_tracks:
        ``dinit``: the data size assumed for the initial deadline
        assignment (before anything has been observed).
    initial_utilization:
        ``uinit``: the utilization assumed initially.
    deadline_reference:
        What workload the per-stage budgets are derived from when
        deadlines are re-assigned after an RM action.

        ``"initial"`` (default, the paper's §4.1 scheme): always the
        reference conditions ``(dinit, uinit)`` — budgets are a stable
        decomposition of the end-to-end deadline, refreshed only through
        the current mean utilization.

        ``"current"``: the current period's workload split across the
        current replica sets.  This makes budgets track whatever the
        allocation currently achieves, which is self-referential — after
        every replication the budget shrinks to match, so the subtask is
        flagged again and allocation creeps to the maximum.  Kept for
        the ablation study that demonstrates exactly that failure mode.
    """

    slack_fraction: float = 0.2
    shutdown_slack_fraction: float = 0.6
    monitor_window: int = 3
    deadline_strategy: str = "sequential_eqf"
    initial_d_tracks: float = 500.0
    initial_utilization: float = 0.1
    deadline_reference: str = "initial"

    def __post_init__(self) -> None:
        if self.deadline_reference not in ("initial", "current"):
            raise ConfigurationError(
                f"deadline_reference must be 'initial' or 'current', got "
                f"{self.deadline_reference!r}"
            )
        if self.initial_d_tracks <= 0.0:
            raise ConfigurationError(
                f"initial_d_tracks must be positive, got {self.initial_d_tracks}"
            )
        if not 0.0 <= self.initial_utilization <= 1.0:
            raise ConfigurationError(
                f"initial_utilization must be in [0, 1], got "
                f"{self.initial_utilization}"
            )


@dataclass(frozen=True)
class RMEvent:
    """One manager step's outcome (the replica-history sample)."""

    time: float
    report: MonitorReport
    outcomes: tuple[AllocationOutcome, ...]
    shutdowns: tuple[tuple[int, str], ...]  # (subtask index, processor)
    total_replicas: int
    placement: dict[int, tuple[str, ...]] = field(compare=False, default_factory=dict)
    #: Failure handling this step: (subtask index, dead processor,
    #: migration target or None when surviving replicas absorbed it).
    recoveries: tuple[tuple[int, str, str | None], ...] = ()
    #: Name of the policy that actually ran this step (the hardened
    #: loop's circuit breaker may substitute the fallback policy).
    policy_name: str = ""

    @property
    def acted(self) -> bool:
        """Whether this step changed the placement."""
        return (
            bool(self.shutdowns)
            or bool(self.recoveries)
            or any(o.changed for o in self.outcomes)
        )


class AdaptiveResourceManager:
    """Periodic monitoring + adaptation driver for one task."""

    def __init__(
        self,
        system: System,
        executor: PeriodicTaskExecutor,
        estimator: TimingEstimator,
        policy: AnyAllocator,
        config: RMConfig | None = None,
        shutdown_strategy: ShutdownStrategy | None = None,
        total_workload_fn: "Callable[[], float] | None" = None,
        hardening: HardeningConfig | None = None,
        fallback_policy: AnyAllocator | None = None,
    ) -> None:
        self.system = system
        self.executor = executor
        self.task = executor.task
        self.assignment: ReplicaAssignment = executor.assignment
        self.estimator = estimator
        # Either contract level is accepted; the manager itself drives
        # the cycle-scoped Allocator interface exclusively.
        self.policy = policy
        self.allocator: Allocator = as_allocator(policy)
        self.config = config if config is not None else RMConfig()
        self.shutdown_strategy: ShutdownStrategy = (
            shutdown_strategy if shutdown_strategy is not None else LifoShutdown()
        )
        # Degraded-input defenses (repro.core.hardening).  With
        # ``hardening=None`` every guard below is skipped and decision
        # sequences are bit-identical to the unhardened loop.
        self.hardening = hardening
        self.guard: PlacementGuard | None = None
        self.backoff: AllocationBackoff | None = None
        self.breaker: ForecastCircuitBreaker | None = None
        self.fallback_policy: AnyAllocator | None = None
        self.fallback_allocator: Allocator | None = None
        if hardening is not None:
            self.guard = PlacementGuard(system, hardening)
            self.backoff = AllocationBackoff(hardening)
            if getattr(policy, "name", "") != "nonpredictive":
                self.breaker = ForecastCircuitBreaker(hardening)
                self.fallback_policy = (
                    fallback_policy
                    if fallback_policy is not None
                    else NonPredictivePolicy()
                )
                self.fallback_allocator = as_allocator(self.fallback_policy)
        #: Accepted Figure 5 forecasts awaiting realization, keyed by
        #: ``(subtask_index, replica_count)`` — the same matching rule
        #: telemetry spans use.
        self._pending_forecasts: dict[tuple[int, int], float] = {}
        self._breaker_seen: set[int] = set()
        # In multi-task deployments eq. 5's buffer term is driven by the
        # *total* periodic workload across tasks (paper §3, property 4 /
        # eq. 5); the coordinator supplies this hook.  Single-task runs
        # default to this task's own workload.
        self.total_workload_fn = total_workload_fn
        self.monitor = RuntimeMonitor(
            self.task,
            slack_fraction=self.config.slack_fraction,
            shutdown_slack_fraction=self.config.shutdown_slack_fraction,
            window=self.config.monitor_window,
            telemetry=system.engine.telemetry,
            utilization_index=system.utilization_index,
            max_record_age_s=(
                hardening.max_record_age_s if hardening is not None else None
            ),
        )
        self.history: list[RMEvent] = []
        self.deadlines: DeadlineAssignment = self._initial_deadlines()
        #: True once :meth:`kill` ran (controller crash fault).
        self.killed = False
        #: Pending step-event handles (cancelled by :meth:`kill`).
        self._step_events: list = []
        #: Simulation time of the most recent completed step — the
        #: heartbeat the failover coordinator's lease check reads.
        self.last_step_time = float("-inf")

    # -- deadline management --------------------------------------------------------

    def _initial_deadlines(self) -> DeadlineAssignment:
        """§4.1: derive initial budgets from (dinit, uinit, cinit)."""
        exec_est, comm_est = self.estimator.chain_estimate_seconds(
            self.config.initial_d_tracks, self.config.initial_utilization
        )
        return assign_deadlines(
            self.task, exec_est, comm_est, strategy=self.config.deadline_strategy
        )

    def _reassign_deadlines(self, d_tracks: float) -> None:
        """Re-derive budgets after an RM action (§4.1).

        Under the default ``"initial"`` reference the stage estimates use
        the fixed ``(dinit, uinit)`` conditions refreshed with the current
        mean utilization, so budgets stay a stable decomposition of the
        deadline; under ``"current"`` they chase the live allocation (see
        :class:`RMConfig`).
        """
        mean_u = self.system.mean_utilization()
        if self.hardening is not None and (
            not math.isfinite(mean_u) or not 0.0 <= mean_u <= 1.0
        ):
            # Corrupted readings can push the cluster mean outside any
            # plausible busy fraction; fall back to the configured
            # reference conditions rather than feeding garbage to eq. 3.
            mean_u = self.config.initial_utilization
        if self.config.deadline_reference == "initial":
            d_ref = self.config.initial_d_tracks
            share_of = {s.index: d_ref for s in self.task.subtasks}
        else:
            d_ref = d_tracks
            share_of = {
                s.index: d_tracks / self.assignment.replica_count(s.index)
                for s in self.task.subtasks
            }
        exec_est: list[float] = []
        for subtask in self.task.subtasks:
            exec_est.append(
                max(
                    self.estimator.eex_seconds(
                        subtask.index, share_of[subtask.index], mean_u
                    ),
                    1e-6,
                )
            )
        comm_est: list[float] = []
        for message in self.task.messages:
            comm_est.append(
                self.estimator.ecd_seconds(
                    message.index, share_of[message.index + 1], d_ref
                )
            )
        self.deadlines = assign_deadlines(
            self.task, exec_est, comm_est, strategy=self.config.deadline_strategy
        )

    # -- the control loop ------------------------------------------------------------

    def start(self, n_periods: int, first_release: float = 0.0) -> None:
        """Schedule one RM step per period boundary (before the release).

        One batched insert: :meth:`~repro.sim.engine.Engine.schedule_many`
        consumes sequence numbers in input order, so this is
        observationally identical to the per-period ``schedule_at`` loop
        it replaces while letting an array-backed calendar sort the
        whole run's steps once.
        """
        self._step_events = self.system.engine.schedule_many(
            [first_release + c * self.task.period for c in range(n_periods)],
            self.step,
            priority=RM_PRIORITY,
            labels="rm.step",
        )

    def kill(self) -> int:
        """Crash the controller: cancel every pending step, permanently.

        Models the ``rm_crash`` chaos fault — the executor keeps
        releasing periods, but no monitoring or adaptation happens until
        a standby takes over (:mod:`repro.recovery.failover`).  Returns
        the number of steps cancelled; idempotent.
        """
        if self.killed:
            return 0
        self.killed = True
        cancelled = sum(1 for event in self._step_events if event.cancel())
        self._step_events = []
        self.system.engine.tracer.record(
            self.system.engine.now, "rm", "rm.crash", {"cancelled": cancelled}
        )
        return cancelled

    def on_rm_crash(self, injection) -> None:
        """Chaos hook for the ``rm_crash`` fault (no-failover baseline)."""
        self.kill()

    # -- controller state (failover / snapshots) -----------------------------

    def state_dict(self) -> dict[str, object]:
        """The controller's pure mutable state, deep-copied.

        Everything a standby manager needs to continue the decision
        sequence from this point: deadlines, decision history, pending
        forecast bookkeeping, and the hardening components' counters.
        Shared live objects (system, executor, estimator) are *not*
        included — a standby attaches to the same instances.
        """
        state: dict[str, object] = {
            "deadlines": self.deadlines,
            "history": list(self.history),
            "pending_forecasts": dict(self._pending_forecasts),
            "breaker_seen": set(self._breaker_seen),
            "last_observed_period": getattr(self, "_last_observed_period", -1),
            "last_step_time": self.last_step_time,
        }
        if self.guard is not None:
            state["guard"] = {
                "last_counts": dict(self.guard._last_counts),
                "crash_times": {
                    name: list(times)
                    for name, times in self.guard._crash_times.items()
                },
                "exclusions": dict(self.guard.exclusions),
            }
        if self.backoff is not None:
            state["backoff"] = {
                "consecutive": dict(self.backoff._consecutive),
                "next_allowed": dict(self.backoff._next_allowed),
                "suppressed": self.backoff.suppressed,
            }
        if self.breaker is not None:
            state["breaker"] = {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
                "observations": self.breaker.observations,
                "mispredictions": self.breaker.mispredictions,
                "errors": list(self.breaker._errors),
                "opened_at": self.breaker._opened_at,
            }
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore :meth:`state_dict` output into this manager."""
        import copy as _copy
        from collections import deque as _deque

        state = _copy.deepcopy(state)
        self.deadlines = state["deadlines"]  # type: ignore[assignment]
        self.history = list(state["history"])  # type: ignore[arg-type]
        self._pending_forecasts = dict(state["pending_forecasts"])  # type: ignore[arg-type]
        self._breaker_seen = set(state["breaker_seen"])  # type: ignore[arg-type]
        self._last_observed_period = state["last_observed_period"]
        self.last_step_time = float(state["last_step_time"])  # type: ignore[arg-type]
        guard_state = state.get("guard")
        if self.guard is not None and guard_state is not None:
            self.guard._last_counts = dict(guard_state["last_counts"])
            self.guard._crash_times = {
                name: _deque(times)
                for name, times in guard_state["crash_times"].items()
            }
            self.guard.exclusions = dict(guard_state["exclusions"])
        backoff_state = state.get("backoff")
        if self.backoff is not None and backoff_state is not None:
            self.backoff._consecutive = dict(backoff_state["consecutive"])
            self.backoff._next_allowed = dict(backoff_state["next_allowed"])
            self.backoff.suppressed = backoff_state["suppressed"]
        breaker_state = state.get("breaker")
        if self.breaker is not None and breaker_state is not None:
            self.breaker.state = breaker_state["state"]
            self.breaker.trips = breaker_state["trips"]
            self.breaker.observations = breaker_state["observations"]
            self.breaker.mispredictions = breaker_state["mispredictions"]
            self.breaker._errors = _deque(
                breaker_state["errors"],
                maxlen=self.breaker.config.breaker_window,
            )
            self.breaker._opened_at = breaker_state["opened_at"]

    def _handle_failures(self) -> list[tuple[int, str, str | None]]:
        """Evict/migrate replicas stranded on failed processors.

        Survivability handling (the paper's motivating requirement): a
        dead processor's replicas are removed; a subtask whose *only*
        replica died is migrated to the least-utilized live processor.
        Returns the recovery actions taken.
        """
        failed = self.system.failed_processor_names()
        if not failed:
            return []
        recoveries: list[tuple[int, str, str | None]] = []
        for subtask in self.task.subtasks:
            for dead in list(self.assignment.processors_of(subtask.index)):
                if dead not in failed:
                    continue
                if self.assignment.replica_count(subtask.index) > 1:
                    self.assignment.reset(
                        subtask.index,
                        [
                            name
                            for name in self.assignment.processors_of(subtask.index)
                            if name != dead
                        ],
                    )
                    recoveries.append((subtask.index, dead, None))
                else:
                    hosting = set(
                        self.assignment.processors_of(subtask.index)
                    )
                    target = self.system.least_utilized(exclude=hosting)
                    if target is None:
                        continue  # nothing live to migrate to
                    self.assignment.replace_processor(
                        subtask.index, dead, target.name
                    )
                    recoveries.append((subtask.index, dead, target.name))
        return recoveries

    def _feed_observations(self, records) -> None:
        """Push fresh stage measurements to a learning estimator.

        Duck-typed: if the estimator exposes ``observe_stage`` (see
        :class:`repro.regression.online.OnlineCorrectedEstimator`), the
        most recent completed period's execution latencies are reported,
        with the per-replica share and the current mean utilization as
        the query conditions.
        """
        observe = getattr(self.estimator, "observe_stage", None)
        if observe is None or not records:
            return
        record = records[-1]
        if record.period_index <= getattr(self, "_last_observed_period", -1):
            return
        self._last_observed_period = record.period_index
        mean_u = min(1.0, self.system.mean_utilization())
        for stage in record.stages:
            if stage.exec_latency is None or record.d_tracks <= 0.0:
                continue
            share = record.d_tracks / max(stage.replica_count, 1)
            observe(stage.subtask_index, share, mean_u, stage.exec_latency)

    def _feed_breaker(self, now: float, records) -> None:
        """Match realized stage latencies to pending Figure 5 forecasts.

        Uses the same ``(subtask_index, replica_count)`` key the
        telemetry span recorder uses, so the breaker sees exactly the
        predicted-vs-realized pairs the observability stack reports.
        """
        assert self.breaker is not None
        for record in records:
            if record.period_index in self._breaker_seen:
                continue
            self._breaker_seen.add(record.period_index)
            for stage in record.stages:
                if stage.stage_latency is None:
                    continue
                key = (stage.subtask_index, stage.replica_count)
                forecast = self._pending_forecasts.pop(key, None)
                if forecast is not None:
                    self.breaker.observe(now, forecast, stage.stage_latency)

    def step(self) -> RMEvent:
        """Run one monitor/adapt pass (callable directly in tests)."""
        now = self.system.engine.now
        telemetry = self.system.engine.telemetry
        profiler = telemetry.profiler if telemetry.enabled else None
        if telemetry.enabled:
            telemetry.begin_decision(now)
        step_handle = profiler.begin("rm.step") if profiler is not None else 0
        recoveries = self._handle_failures()
        records = self.executor.completed_records()
        self._feed_observations(records)
        if self.breaker is not None:
            self._feed_breaker(now, records)
        overdue = self.executor.overdue_subtasks()
        monitor_handle = profiler.begin("rm.monitor") if profiler is not None else 0
        report = self.monitor.classify(
            now, records, self.deadlines, self.assignment, overdue
        )
        if profiler is not None:
            profiler.end(monitor_handle, events=len(report.verdicts))
        d_tracks = self.executor.current_d_tracks
        if d_tracks <= 0.0:
            d_tracks = self.config.initial_d_tracks
        total_tracks = (
            self.total_workload_fn()
            if self.total_workload_fn is not None
            else d_tracks
        )
        total_tracks = max(total_tracks, d_tracks)

        excluded: frozenset[str] = frozenset()
        active: Allocator = self.allocator
        if self.hardening is not None:
            assert self.guard is not None
            self.guard.observe(now)
            excluded = self.guard.excluded(now)
            if self.breaker is not None and not self.breaker.allow_predictive(now):
                assert self.fallback_allocator is not None
                active = self.fallback_allocator

        reading_guard = None
        if self.hardening is not None:
            fallback = self.config.initial_utilization

            def reading_guard(reading: float) -> float:
                return sanitize_reading(reading, fallback)

        cycle = len(self.history)
        # Backoff filtering happens before the allocator sees the cycle:
        # each subtask appears at most once per monitor report, so this
        # is decision-identical to the historical interleaved check.
        candidates = tuple(
            verdict.subtask_index
            for verdict in report.candidates(MonitorAction.REPLICATE)
            if self.backoff is None
            or self.backoff.should_attempt(verdict.subtask_index, cycle)
        )
        context = AllocationContext(
            task=self.task,
            assignment=self.assignment,
            system=self.system,
            estimator=self.estimator,
            deadlines=self.deadlines,
            d_tracks=d_tracks,
            total_periodic_tracks=total_tracks,
            candidates=candidates,
            excluded_processors=excluded,
            reading_guard=reading_guard,
            cycle=cycle,
            now=now,
        )
        shutdowns: list[tuple[int, str]] = []
        place_handle = profiler.begin("rm.placement") if profiler is not None else 0
        plan = active.allocate(context)
        outcomes = list(plan.outcomes)
        for outcome in outcomes:
            if self.backoff is not None:
                if outcome.success:
                    self.backoff.record_success(outcome.subtask_index)
                else:
                    self.backoff.record_failure(outcome.subtask_index, cycle)
            if (
                self.breaker is not None
                and outcome.success
                and outcome.forecast_latency is not None
            ):
                key = (
                    outcome.subtask_index,
                    self.assignment.replica_count(outcome.subtask_index),
                )
                self._pending_forecasts[key] = outcome.forecast_latency
        for verdict in report.candidates(MonitorAction.SHUTDOWN):
            removed = self.shutdown_strategy.shutdown(
                context.request_for(verdict.subtask_index)
            )
            if removed is not None:
                shutdowns.append((verdict.subtask_index, removed))
        if profiler is not None:
            profiler.end(place_handle, events=len(outcomes) + len(shutdowns))

        touched = {name for o in outcomes for name in o.added_processors}
        touched.update(name for _, name in shutdowns)
        touched.update(
            target for _, _, target in recoveries if target is not None
        )
        self.system.notify_placement_change(touched)

        event = RMEvent(
            time=now,
            report=report,
            outcomes=tuple(outcomes),
            shutdowns=tuple(shutdowns),
            total_replicas=self.assignment.total_replicas(),
            placement=self.assignment.snapshot(),
            recoveries=tuple(recoveries),
            policy_name=active.name,
        )
        if event.acted:
            self._reassign_deadlines(d_tracks)
            self.system.engine.tracer.record(
                now,
                "rm",
                f"{self.policy.name}.acted",
                {
                    "replicas": event.total_replicas,
                    "added": sum(len(o.added_processors) for o in outcomes),
                    "removed": len(shutdowns),
                },
            )
        if telemetry.enabled:
            if self.breaker is not None:
                telemetry.on_breaker_state(
                    now, self.breaker.state, self.breaker.trips
                )
            if self.system.utilization_index is not None:
                telemetry.on_index_stats(
                    self.system.engine.now,
                    self.system.utilization_index.stats.as_dict(),
                )
            if profiler is not None:
                step_wall = profiler.end(step_handle, events=1)
                if telemetry.slo is not None:
                    telemetry.slo.on_decision_latency(now, step_wall)
            telemetry.end_decision(self.system.engine.now, event)
        self.history.append(event)
        self.last_step_time = now
        return event

    # -- metric views -----------------------------------------------------------------

    def replica_samples(self) -> list[tuple[float, int]]:
        """``(time, total replicas)`` per step, for the R-bar metric."""
        return [(event.time, event.total_replicas) for event in self.history]

    def actions_taken(self) -> int:
        """Number of steps that changed the placement."""
        return sum(1 for event in self.history if event.acted)
