"""Run-time monitoring and candidate selection (paper §4.1, Figure 1 box 1).

The monitor inspects recent per-stage timing records and classifies each
*replicable* subtask:

* **REPLICATE** — its recent mean stage latency leaves less than
  ``slack_fraction`` of the stage budget as slack, or it missed its
  individual deadline outright, or its stage is in flight and already
  overdue (the paper's "subtasks that miss their individual deadlines
  are also identified as candidates");
* **SHUTDOWN** — it holds more than one replica and its slack exceeds
  ``shutdown_slack_fraction`` of the budget ("subtasks [that] exhibit
  very high slack values");
* **OK** — otherwise.

Averaging over a short window of periods provides the hysteresis that
keeps one noisy measurement from flapping the allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.deadlines import DeadlineAssignment
from repro.errors import ConfigurationError
from repro.runtime.records import PeriodRecord
from repro.tasks.model import PeriodicTask
from repro.tasks.state import ReplicaAssignment
from repro.telemetry.hub import TelemetryHub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.index import UtilizationIndex


class MonitorAction(enum.Enum):
    """Classification of a subtask by the monitor."""

    OK = "ok"
    REPLICATE = "replicate"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class SubtaskVerdict:
    """The monitor's judgement of one replicable subtask."""

    subtask_index: int
    action: MonitorAction
    mean_stage_latency: float | None
    budget: float
    slack: float | None
    observed_periods: int
    overdue: bool


@dataclass(frozen=True)
class MonitorReport:
    """All verdicts from one monitoring pass."""

    time: float
    verdicts: tuple[SubtaskVerdict, ...] = field(default_factory=tuple)

    def candidates(self, action: MonitorAction) -> list[SubtaskVerdict]:
        """Verdicts matching ``action``."""
        return [v for v in self.verdicts if v.action is action]


class RuntimeMonitor:
    """Classifies replicable subtasks from recent timing records.

    Parameters
    ----------
    task:
        The monitored task.
    slack_fraction:
        Minimum slack, as a fraction of the stage budget, below which a
        subtask becomes a replication candidate (paper: 0.2).
    shutdown_slack_fraction:
        Slack fraction above which excess replicas are shut down.
    window:
        Number of most recent finished periods averaged per verdict.
    telemetry:
        Optional :class:`~repro.telemetry.hub.TelemetryHub`; every
        monitoring pass reports its verdicts to it (verdict counters and
        the open decision span) when enabled.
    utilization_index:
        Optional :class:`~repro.cluster.index.UtilizationIndex`; when
        both it and telemetry are active, each pass also publishes the
        exact cluster minimum utilization (an O(log P) index query
        instead of the O(P) scan a naive gauge would cost).
    max_record_age_s:
        Optional staleness bound (hardened mode, see
        :class:`repro.core.hardening.HardeningConfig`): records whose
        resolution time — completion, or release when a record never
        completed — is older than this are dropped from the averaging
        window instead of silently trusted.  ``None`` (default) keeps
        every record.
    """

    def __init__(
        self,
        task: PeriodicTask,
        slack_fraction: float = 0.2,
        shutdown_slack_fraction: float = 0.6,
        window: int = 3,
        telemetry: TelemetryHub | None = None,
        utilization_index: "UtilizationIndex | None" = None,
        max_record_age_s: float | None = None,
    ) -> None:
        if not 0.0 < slack_fraction < 1.0:
            raise ConfigurationError(
                f"slack_fraction must be in (0, 1), got {slack_fraction}"
            )
        if not slack_fraction < shutdown_slack_fraction < 1.0:
            raise ConfigurationError(
                "shutdown_slack_fraction must lie in (slack_fraction, 1), "
                f"got {shutdown_slack_fraction}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if max_record_age_s is not None and max_record_age_s <= 0.0:
            raise ConfigurationError(
                f"max_record_age_s must be positive, got {max_record_age_s}"
            )
        self.max_record_age_s = max_record_age_s
        self.task = task
        self.slack_fraction = float(slack_fraction)
        self.shutdown_slack_fraction = float(shutdown_slack_fraction)
        self.window = int(window)
        self.telemetry = telemetry
        self.utilization_index = utilization_index

    def classify(
        self,
        now: float,
        records: list[PeriodRecord],
        deadlines: DeadlineAssignment,
        assignment: ReplicaAssignment,
        overdue_subtasks: set[int] = frozenset(),
    ) -> MonitorReport:
        """One monitoring pass over the most recent records.

        Parameters
        ----------
        now:
            Current time (for the report timestamp).
        records:
            Finished period records, oldest first; only the trailing
            ``window`` are used.
        deadlines:
            Current per-stage budgets.
        assignment:
            Current replica placement (for the shutdown precondition).
        overdue_subtasks:
            Stages currently in flight past the period deadline (from
            :meth:`repro.runtime.executor.PeriodicTaskExecutor.overdue_subtasks`).
        """
        if self.max_record_age_s is not None:
            horizon = now - self.max_record_age_s
            records = [
                record
                for record in records
                if (
                    record.completion_time
                    if record.completion_time is not None
                    else record.release_time
                )
                >= horizon
            ]
        recent = records[-self.window :]
        verdicts: list[SubtaskVerdict] = []
        for subtask in self.task.subtasks:
            if not subtask.replicable:
                continue
            budget = deadlines.stage_budget(subtask.index)
            latencies = [
                stage.stage_latency
                for record in recent
                for stage in [record.stage(subtask.index)]
                if stage is not None and stage.stage_latency is not None
            ]
            overdue = subtask.index in overdue_subtasks
            mean_latency = (
                sum(latencies) / len(latencies) if latencies else None
            )
            action = MonitorAction.OK
            slack: float | None = None
            if mean_latency is not None:
                slack = budget - mean_latency
                if slack < self.slack_fraction * budget:
                    action = MonitorAction.REPLICATE
                elif (
                    slack > self.shutdown_slack_fraction * budget
                    and assignment.replica_count(subtask.index) > 1
                ):
                    action = MonitorAction.SHUTDOWN
            if overdue:
                # An in-flight stage already past the deadline trumps any
                # stale average.
                action = MonitorAction.REPLICATE
            verdicts.append(
                SubtaskVerdict(
                    subtask_index=subtask.index,
                    action=action,
                    mean_stage_latency=mean_latency,
                    budget=budget,
                    slack=slack,
                    observed_periods=len(latencies),
                    overdue=overdue,
                )
            )
        report = MonitorReport(time=now, verdicts=tuple(verdicts))
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.on_monitor_report(now, report)
            if self.utilization_index is not None:
                found = self.utilization_index.argmin()
                if found is not None:
                    self.telemetry.on_cluster_utilization(now, found[0], found[1])
        return report
