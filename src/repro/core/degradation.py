"""Graceful degradation: application-level load shedding.

Beyond the paper: when even maximal replication cannot satisfy the
deadline (Figure 5 returns FAILURE — the machine is simply too small
for the offered load), a mission system does not fail silently; it
*degrades the quality of its results*, processing only the
highest-priority fraction of the track stream.  This is the
imprecise-computation idea of the paper's own citations ([LL+91]: a
mandatory portion plus an optional portion that can be dropped).

:class:`DataShedder` wraps the workload callable the executor consumes
with a mutable processing cap, and its controller loop adjusts the cap
from the manager's outcomes:

* any FAILURE outcome (budget unreachable with the whole machine) ⇒
  multiply the cap by ``shed_factor`` (< 1);
* a healthy window (no candidates, no misses) ⇒ relax the cap by
  ``recover_factor`` toward "process everything".

The shed fraction is an explicit quality metric: operators see exactly
how much of the picture was traded for timeliness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.manager import AdaptiveResourceManager
from repro.core.monitoring import MonitorAction
from repro.errors import ConfigurationError


@dataclass
class DataShedder:
    """A workload wrapper with a controllable processing cap.

    Attributes
    ----------
    offered:
        The original workload callable (period index -> tracks).
    cap_tracks:
        Current processing cap (``inf`` = no shedding).
    min_cap_tracks:
        The mandatory portion: the cap never goes below this.
    """

    offered: Callable[[int], float]
    cap_tracks: float = float("inf")
    min_cap_tracks: float = 250.0
    offered_total: float = field(default=0.0, init=False)
    processed_total: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.min_cap_tracks <= 0.0:
            raise ConfigurationError(
                f"min_cap_tracks must be positive, got {self.min_cap_tracks}"
            )

    def __call__(self, period_index: int) -> float:
        offered = float(self.offered(period_index))
        processed = min(offered, self.cap_tracks)
        self.offered_total += offered
        self.processed_total += processed
        return processed

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered tracks dropped so far (quality cost)."""
        if self.offered_total <= 0.0:
            return 0.0
        return 1.0 - self.processed_total / self.offered_total

    def tighten(self, factor: float, reference_tracks: float) -> None:
        """Lower the cap by ``factor`` (bounded by the mandatory floor)."""
        current = min(self.cap_tracks, reference_tracks)
        self.cap_tracks = max(self.min_cap_tracks, current * factor)

    def relax(self, factor: float, offered_tracks: float) -> None:
        """Raise the cap toward the offered load; release it entirely
        once it clears the current offer."""
        if self.cap_tracks == float("inf"):
            return
        self.cap_tracks *= factor
        if self.cap_tracks >= offered_tracks:
            self.cap_tracks = float("inf")


@dataclass
class DegradationController:
    """Adjusts a :class:`DataShedder` from the manager's step outcomes.

    Call :meth:`step` once per period *after* the manager's step (it
    reads the most recent :class:`~repro.core.manager.RMEvent`).
    """

    manager: AdaptiveResourceManager
    shedder: DataShedder
    shed_factor: float = 0.8
    recover_factor: float = 1.1
    healthy_window: int = 3
    _healthy_streak: int = field(default=0, init=False)
    sheds: int = field(default=0, init=False)
    relaxations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.shed_factor < 1.0:
            raise ConfigurationError(
                f"shed_factor must be in (0, 1), got {self.shed_factor}"
            )
        if self.recover_factor <= 1.0:
            raise ConfigurationError(
                f"recover_factor must exceed 1, got {self.recover_factor}"
            )

    def start(self, n_periods: int, first: float = 0.0) -> None:
        """Schedule one controller step per period, after the RM step."""
        engine = self.manager.system.engine
        period = self.manager.task.period
        for c in range(n_periods):
            engine.schedule_at(
                first + c * period, self.step, priority=-5, label="qos.step"
            )

    def step(self) -> None:
        """One control decision from the latest manager event."""
        if not self.manager.history:
            return
        event = self.manager.history[-1]
        offered = self.manager.executor.current_d_tracks or (
            self.manager.config.initial_d_tracks
        )
        failed = any(not outcome.success for outcome in event.outcomes)
        if failed:
            self.shedder.tighten(self.shed_factor, offered)
            self._healthy_streak = 0
            self.sheds += 1
            return
        flagged = any(
            verdict.action is not MonitorAction.OK
            for verdict in event.report.verdicts
        )
        if flagged:
            self._healthy_streak = 0
            return
        self._healthy_streak += 1
        if (
            self._healthy_streak >= self.healthy_window
            and self.shedder.cap_tracks != float("inf")
        ):
            self.shedder.relax(self.recover_factor, offered)
            self.relaxations += 1