"""Deprecated module path for the allocation contract.

Everything that used to live here moved to :mod:`repro.core.allocation`
when the API grew the cycle-scoped :class:`~repro.core.allocation.Allocator`
level.  Every old spelling keeps working through the PEP 562 hook below
— ``from repro.core.allocator import get_policy`` still imports, with a
:class:`DeprecationWarning` pointing at the new home — following the
same shim pattern as PR 4's ``fit_estimator`` merge.

New code should import from :mod:`repro.core.allocation` (or the
:mod:`repro.api` facade); the ``repro lint`` API-DEPRECATED rule keeps
internal code off this module.
"""

from __future__ import annotations

import warnings
from typing import Any

#: Names re-exported from :mod:`repro.core.allocation` with a warning.
_MOVED = (
    "AllocationOutcome",
    "AllocationPolicy",
    "AllocationRequest",
    "get_policy",
    "register_policy",
    "registered_policies",
)

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    """Serve the moved names from their new module, with a warning."""
    if name in _MOVED:
        warnings.warn(
            f"repro.core.allocator.{name} is deprecated; import {name} "
            "from repro.core.allocation (or the repro.api facade) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import allocation

        return getattr(allocation, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
