"""Allocation-policy abstraction (Figure 1, box 2).

Both step-2 algorithms answer the same question — *given a replication
candidate, how many replicas and on which processors?* — so they share
an interface: :class:`AllocationPolicy`.  The request bundle carries
everything a policy may consult (current placement, utilizations,
regression estimator, budgets, current workload); the outcome reports
what changed.

A tiny registry maps policy names (``"predictive"``,
``"nonpredictive"``) to factories so experiment configs can select
policies by string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.cluster.topology import System
from repro.core.deadlines import DeadlineAssignment
from repro.errors import AllocationError
from repro.regression.estimator import TimingEstimator
from repro.tasks.model import PeriodicTask
from repro.tasks.state import ReplicaAssignment


@dataclass(frozen=True)
class AllocationRequest:
    """Everything a policy may consult when handling one candidate.

    Attributes
    ----------
    task / subtask_index:
        The replication candidate.
    assignment:
        Live placement; policies mutate it via its invariant-checked API.
    system:
        The cluster (source of ``ut(p, t)`` readings).
    estimator:
        Regression-backed ``eex``/``ecd`` (the predictive policy's
        forecasting oracle; the non-predictive policy ignores it).
    deadlines:
        Current per-stage budgets.
    d_tracks:
        ``ds(T, c)``: data items in the current period.
    total_periodic_tracks:
        Total workload across all tasks this period (drives eq. 5).
    excluded_processors:
        Processors the hardened loop has ruled out this cycle (repeat
        offenders, implausible readings — see
        :class:`repro.core.hardening.PlacementGuard`).  Policies must
        not place replicas there; empty in the unhardened loop.
    reading_guard:
        Optional sanitizer applied to every utilization reading a
        policy feeds into the regression models (the hardened loop
        installs :func:`repro.core.hardening.sanitize_reading`;
        ``None`` — the unhardened default — uses readings verbatim).
    """

    task: PeriodicTask
    subtask_index: int
    assignment: ReplicaAssignment
    system: System
    estimator: TimingEstimator
    deadlines: DeadlineAssignment
    d_tracks: float
    total_periodic_tracks: float
    excluded_processors: frozenset[str] = frozenset()
    reading_guard: Callable[[float], float] | None = None


@dataclass(frozen=True)
class AllocationOutcome:
    """What a policy did with one candidate.

    ``success`` mirrors Figure 5's SUCCESS/FAILURE: the predictive
    policy reports FAILURE when it ran out of processors before the
    forecast satisfied the budget (replicas added along the way are
    kept, as in the paper's pseudo-code, which never rolls back).
    """

    subtask_index: int
    success: bool
    added_processors: tuple[str, ...] = field(default_factory=tuple)
    forecast_latency: float | None = None

    @property
    def changed(self) -> bool:
        """Whether the placement was modified."""
        return bool(self.added_processors)


class AllocationPolicy(Protocol):
    """Step-2 algorithm interface."""

    name: str

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        """Handle one replication candidate (Figure 5 / Figure 7)."""
        ...


_REGISTRY: dict[str, Callable[..., AllocationPolicy]] = {}


def register_policy(name: str, factory: Callable[..., AllocationPolicy]) -> None:
    """Register a policy factory under ``name`` (overwrites silently
    only for the same factory; otherwise raises)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise AllocationError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def get_policy(name: str, **kwargs: object) -> AllocationPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise AllocationError(
            f"unknown policy {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_policies() -> tuple[str, ...]:
    """Names of all registered policies."""
    return tuple(sorted(_REGISTRY))
