"""Seed-deterministic fault injection and resilience measurement.

The package has three parts:

* :mod:`repro.chaos.faults` / :mod:`repro.chaos.scenario` — stochastic
  fault *processes* (crash renewals, correlated outages, partitions,
  loss/delay spikes, clock steps, sensor dropouts, corrupted monitor
  inputs, estimator bias) bundled into named scenarios;
* :mod:`repro.chaos.injector` — compiles a scenario against dedicated
  ``sim.rng`` streams and schedules it on a system (bit-identical
  replays; zero perturbation when no faults are armed);
* :mod:`repro.chaos.scorecard` — MTTR, deadline-miss windows,
  availability, and actions-per-fault from a run's records.

The counterpart hardening of the RM control loop lives in
:mod:`repro.core.hardening`; :func:`run_chaos_experiment` runs one
experiment with both sides wired up.
"""

from __future__ import annotations

from repro.chaos.faults import (
    CORRUPTION_VALUES,
    ClockDriftSpec,
    CorrelatedOutageSpec,
    CorruptUtilizationSpec,
    CrashRecoverySpec,
    DelaySpikeSpec,
    EstimatorDriftSpec,
    FaultSpec,
    Injection,
    LossSpikeSpec,
    PartitionSpec,
    RMCrashSpec,
    SensorDropoutSpec,
    StaleUtilizationSpec,
)
from repro.chaos.injector import ChaosInjector, FaultyEstimator
from repro.chaos.scenario import (
    SCENARIOS,
    ChaosScenario,
    get_scenario,
    scenario_names,
)
from repro.chaos.scorecard import ResilienceScorecard, compute_scorecard

__all__ = [
    "CORRUPTION_VALUES",
    "SCENARIOS",
    "ChaosInjector",
    "ChaosScenario",
    "ClockDriftSpec",
    "CorrelatedOutageSpec",
    "CorruptUtilizationSpec",
    "CrashRecoverySpec",
    "DelaySpikeSpec",
    "EstimatorDriftSpec",
    "FaultSpec",
    "FaultyEstimator",
    "Injection",
    "LossSpikeSpec",
    "PartitionSpec",
    "RMCrashSpec",
    "ResilienceScorecard",
    "SensorDropoutSpec",
    "StaleUtilizationSpec",
    "compute_scorecard",
    "get_scenario",
    "run_chaos_experiment",
    "scenario_names",
]


def run_chaos_experiment(
    scenario: str = "crashes",
    policy: str = "predictive",
    pattern: str = "triangular",
    max_workload_units: float = 20.0,
    baseline=None,
    hardened: bool = True,
    estimator=None,
    seed_offset: int = 0,
    telemetry=None,
    failover: bool = False,
):
    """Run one experiment under a named chaos scenario.

    A thin convenience over :func:`repro.experiments.runner.run_experiment`
    with the chaos fields of
    :class:`~repro.experiments.config.ExperimentConfig` filled in; the
    returned :class:`~repro.experiments.runner.ExperimentResult` carries
    the :class:`~repro.chaos.scorecard.ResilienceScorecard` in its
    ``scorecard`` field.  ``failover=True`` arms the standby controller
    (see :class:`repro.recovery.FailoverCoordinator`) — relevant under
    the ``rm_crash*`` scenarios.
    """
    from repro.experiments.config import BaselineConfig, ExperimentConfig
    from repro.experiments.runner import run_experiment

    get_scenario(scenario)  # fail fast on unknown names
    config = ExperimentConfig(
        policy=policy,
        pattern=pattern,
        max_workload_units=max_workload_units,
        baseline=baseline if baseline is not None else BaselineConfig(),
        chaos_scenario=scenario,
        hardened=hardened,
        failover=failover,
    )
    return run_experiment(
        config,
        estimator=estimator,
        seed_offset=seed_offset,
        telemetry=telemetry,
    )
