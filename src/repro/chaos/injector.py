"""The chaos injector: schedules compiled fault processes on a system.

:meth:`ChaosInjector.arm` compiles every spec of its scenario against a
dedicated rng stream (``chaos.<spec.stream>``) and schedules the
resulting injections on the engine.  Because the streams are derived
from the system's own :class:`~repro.sim.rng.RngRegistry`, a scenario
replays bit-identically under the same master seed — and because they
are *separate* streams, arming the ``"none"`` scenario (or not arming
at all) leaves every other stream's draws untouched.

Two fault classes act through wrappers rather than engine events:

* ``sensor_dropout`` — :meth:`wrap_workload` returns a callable that
  repeats the last pre-dropout track count inside dropout windows;
* ``estimator_bias`` — :meth:`wrap_estimator` returns a
  :class:`FaultyEstimator` that multiplies every ``eex``/``ecd`` query
  by the window's bias factor.

Both wrappers are identity pass-throughs when the scenario contains no
matching spec, so wiring them unconditionally costs nothing.
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.faults import Injection
from repro.chaos.scenario import ChaosScenario
from repro.cluster.topology import System
from repro.errors import ChaosError


class _ConstantReading:
    """A reading fault that reports a fixed utilization value.

    Module-level (not a lambda) so faulted processors pickle for run
    snapshots (:mod:`repro.recovery`).
    """

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __call__(self, reading: float) -> float:
        return self.value

    def __getstate__(self) -> dict[str, float]:
        return {"value": self.value}

    def __setstate__(self, state: dict[str, float]) -> None:
        self.value = state["value"]


class _WindowEnd:
    """Scheduled end of a loss/bandwidth spike window."""

    __slots__ = ("injector", "attr", "value", "apply_name")

    def __init__(
        self, injector: "ChaosInjector", attr: str, value: float, apply_name: str
    ) -> None:
        self.injector = injector
        self.attr = attr  # injector attribute holding the active list
        self.value = value
        self.apply_name = apply_name

    def __call__(self) -> None:
        active: list[float] = getattr(self.injector, self.attr)
        active.remove(self.value)
        getattr(self.injector, self.apply_name)()

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class _ReadingFaultEnd:
    """Scheduled end of a reading freeze/corrupt window."""

    __slots__ = ("injector", "name")

    def __init__(self, injector: "ChaosInjector", name: str) -> None:
        self.injector = injector
        self.name = name

    def __call__(self) -> None:
        injector = self.injector
        remaining = injector._active_reading_faults[self.name] - 1
        injector._active_reading_faults[self.name] = remaining
        if remaining == 0:
            injector.system.processor(self.name).reading_fault = None

    def __getstate__(self) -> dict[str, object]:
        return {"injector": self.injector, "name": self.name}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.injector = state["injector"]
        self.name = state["name"]


class ChaosInjector:
    """Applies a :class:`~repro.chaos.scenario.ChaosScenario` to a system."""

    def __init__(self, system: System, scenario: ChaosScenario) -> None:
        self.system = system
        self.scenario = scenario
        self._armed = False
        #: Every compiled injection, sorted by (time, kind, target) —
        #: the ground truth the resilience scorecard measures against.
        self.fault_log: list[Injection] = []
        self._base_loss = 0.0
        self._base_bandwidth = 0.0
        self._active_losses: list[float] = []
        self._active_bandwidth_factors: list[float] = []
        #: Per-processor count of active reading faults (freeze/corrupt
        #: windows may overlap; the hook is cleared when the last ends).
        self._active_reading_faults: dict[str, int] = {}
        self._sensor_windows: list[tuple[float, float]] = []
        self._estimator_windows: list[tuple[float, float, float]] = []
        #: Handler for ``rm_crash`` injections.  The failover coordinator
        #: (:mod:`repro.recovery.failover`) registers itself here; without
        #: a handler the injection is recorded but has no effect (the
        #: controller has no separate process to kill in a plain run).
        self.on_rm_crash: Callable[[Injection], None] | None = None

    # -- life-cycle ---------------------------------------------------------

    def arm(self, horizon_s: float) -> "ChaosInjector":
        """Compile the scenario and schedule every injection (once)."""
        if self._armed:
            raise ChaosError("chaos injector already armed")
        if horizon_s <= 0.0:
            raise ChaosError(f"horizon_s must be positive, got {horizon_s}")
        self._armed = True
        names = tuple(p.name for p in self.system.processors)
        injections: list[Injection] = []
        for spec in self.scenario.faults:
            rng = self.system.rng.stream(f"chaos.{spec.stream}")
            injections.extend(spec.compile(rng, horizon_s, names))
        injections.sort(key=lambda i: (i.time, i.kind, i.target))
        self.fault_log = injections
        network = self.system.network
        self._base_loss = network.loss_probability
        self._base_bandwidth = network.bandwidth_bps
        if network.rng is None and any(
            i.kind == "loss_spike" for i in injections
        ):
            network.rng = self.system.rng.stream("chaos.net-loss")
        for injection in injections:
            if injection.kind == "sensor_dropout":
                assert injection.duration_s is not None
                self._sensor_windows.append(
                    (injection.time, injection.time + injection.duration_s)
                )
            elif injection.kind == "estimator_bias":
                assert injection.duration_s is not None
                self._estimator_windows.append(
                    (
                        injection.time,
                        injection.time + injection.duration_s,
                        injection.value,
                    )
                )
            self.system.engine.schedule_at(
                injection.time,
                self._inject,
                injection,
                label=f"chaos.{injection.kind}",
            )
        return self

    @property
    def armed(self) -> bool:
        """Whether :meth:`arm` has run."""
        return self._armed

    def faults_by_kind(self) -> dict[str, int]:
        """Injection counts per fault kind (for the scorecard)."""
        counts: dict[str, int] = {}
        for injection in self.fault_log:
            counts[injection.kind] = counts.get(injection.kind, 0) + 1
        return counts

    # -- injection dispatch -------------------------------------------------

    def _inject(self, injection: Injection) -> None:
        engine = self.system.engine
        engine.tracer.record(
            engine.now,
            "chaos",
            f"{injection.kind}.{injection.target}",
            {"duration_s": injection.duration_s, "value": injection.value},
        )
        telemetry = engine.telemetry
        if telemetry.enabled:
            telemetry.on_fault_injected(
                engine.now, injection.kind, injection.target
            )
        if injection.kind == "crash":
            self._inject_crash(injection)
        elif injection.kind == "loss_spike":
            self._begin_window(
                injection, "_active_losses", injection.value, "_apply_loss"
            )
        elif injection.kind == "bandwidth_spike":
            self._begin_window(
                injection,
                "_active_bandwidth_factors",
                injection.value,
                "_apply_bandwidth",
            )
        elif injection.kind == "clock_step":
            self.system.clock_of(injection.target).offset += injection.value
        elif injection.kind == "reading_freeze":
            processor = self.system.processor(injection.target)
            frozen = processor.meter.utilization(
                self.system.engine.now, processor.utilization_window
            )
            self._set_reading_fault(injection, _ConstantReading(frozen))
        elif injection.kind == "reading_corrupt":
            self._set_reading_fault(injection, _ConstantReading(injection.value))
        elif injection.kind == "rm_crash":
            if self.on_rm_crash is not None:
                self.on_rm_crash(injection)
        # sensor_dropout / estimator_bias act through the wrappers; the
        # scheduled event exists for the trace and telemetry records.

    def _inject_crash(self, injection: Injection) -> None:
        processor = self.system.processor(injection.target)
        processor.fail()
        if injection.duration_s is not None:
            self.system.engine.schedule(
                injection.duration_s,
                processor.recover,
                label=f"chaos.recover.{processor.name}",
            )

    def _begin_window(
        self, injection: Injection, attr: str, value: float, apply_name: str
    ) -> None:
        assert injection.duration_s is not None
        active: list[float] = getattr(self, attr)
        active.append(value)
        getattr(self, apply_name)()
        self.system.engine.schedule(
            injection.duration_s,
            _WindowEnd(self, attr, value, apply_name),
            label=f"chaos.end.{injection.kind}",
        )

    def _apply_loss(self) -> None:
        self.system.network.loss_probability = max(
            self._base_loss, *self._active_losses, 0.0
        )

    def _apply_bandwidth(self) -> None:
        factor = min(self._active_bandwidth_factors, default=1.0)
        self.system.network.bandwidth_bps = self._base_bandwidth * factor

    def _set_reading_fault(
        self, injection: Injection, fault: Callable[[float], float]
    ) -> None:
        assert injection.duration_s is not None
        name = injection.target
        processor = self.system.processor(name)
        processor.reading_fault = fault
        self._active_reading_faults[name] = (
            self._active_reading_faults.get(name, 0) + 1
        )
        self.system.engine.schedule(
            injection.duration_s,
            _ReadingFaultEnd(self, name),
            label=f"chaos.end.{injection.kind}",
        )

    # -- wrappers -----------------------------------------------------------

    def in_sensor_window(self, now: float) -> bool:
        """Whether the workload sensor is dropped out at ``now``."""
        return any(start <= now < end for start, end in self._sensor_windows)

    def estimator_factor(self, now: float) -> float:
        """Multiplier applied to estimator queries at ``now``."""
        for start, end, factor in self._estimator_windows:
            if start <= now < end:
                return factor
        return 1.0

    def wrap_workload(
        self, workload: Callable[[int], float]
    ) -> Callable[[int], float]:
        """Wrap a per-period workload function with sensor dropouts."""
        if not self._armed:
            raise ChaosError("arm() the injector before wrapping the workload")
        if not self._sensor_windows:
            return workload
        return _SensorFaultedWorkload(self, workload)

    def wrap_estimator(self, estimator):
        """Wrap an estimator with the scenario's bias windows."""
        if not self._armed:
            raise ChaosError("arm() the injector before wrapping the estimator")
        if not self._estimator_windows:
            return estimator
        return FaultyEstimator(estimator, self)


class _SensorFaultedWorkload:
    """Repeats the last healthy reading inside dropout windows.

    The inner pattern is still evaluated every period (its rng draws, if
    any, stay aligned with a fault-free run); only the *reported* value
    is frozen.
    """

    def __init__(
        self, injector: ChaosInjector, inner: Callable[[int], float]
    ) -> None:
        self._injector = injector
        self._inner = inner
        self._last: float | None = None

    def __call__(self, period_index: int) -> float:
        value = self._inner(period_index)
        now = self._injector.system.engine.now
        if self._injector.in_sensor_window(now) and self._last is not None:
            return self._last
        self._last = value
        return value


class FaultyEstimator:
    """Delegating estimator that applies windowed bias factors.

    Every latency-producing query (``eex_seconds``,
    ``eex_seconds_many``, ``ecd_seconds``, ``chain_estimate_seconds``,
    ``end_to_end_estimate_seconds``) is multiplied by the bias factor
    active at the engine's current time; everything else — including
    ``task`` and duck-typed learning hooks like ``observe_stage`` —
    passes straight through to the wrapped estimator.
    """

    def __init__(self, inner, injector: ChaosInjector) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def task(self):
        """The wrapped estimator's task model."""
        return self._inner.task

    def _factor(self) -> float:
        return self._injector.estimator_factor(
            self._injector.system.engine.now
        )

    def eex_seconds(self, subtask_index, d_tracks, utilization):
        """Biased per-stage execution estimate."""
        return self._inner.eex_seconds(
            subtask_index, d_tracks, utilization
        ) * self._factor()

    def eex_seconds_many(self, subtask_index, d_tracks, utilizations):
        """Biased vectorized execution estimates."""
        return self._inner.eex_seconds_many(
            subtask_index, d_tracks, utilizations
        ) * self._factor()

    def ecd_seconds(self, message_index, d_tracks, total_tracks):
        """Biased per-message communication estimate."""
        return self._inner.ecd_seconds(
            message_index, d_tracks, total_tracks
        ) * self._factor()

    def chain_estimate_seconds(self, d_tracks, utilization):
        """Biased per-stage execution/communication estimate chains."""
        factor = self._factor()
        exec_est, comm_est = self._inner.chain_estimate_seconds(
            d_tracks, utilization
        )
        return (
            [value * factor for value in exec_est],
            [value * factor for value in comm_est],
        )

    def end_to_end_estimate_seconds(self, *args, **kwargs):
        """Biased end-to-end latency estimate."""
        return self._inner.end_to_end_estimate_seconds(
            *args, **kwargs
        ) * self._factor()

    def __getattr__(self, name):
        return getattr(self._inner, name)
