"""Named chaos scenarios: composable bundles of fault processes.

A :class:`ChaosScenario` is just a name plus a tuple of
:class:`~repro.chaos.faults.FaultSpec` instances; the preset registry
below covers one scenario per fault class (the rows of
``benchmarks/bench_ext_chaos_matrix.py``) plus a combined ``"mayhem"``
stress scenario.  ``"none"`` is the empty scenario — running under it
is bit-identical to not using chaos at all, which the equivalence test
in ``tests/integration/test_chaos_equivalence.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.faults import (
    ClockDriftSpec,
    CorrelatedOutageSpec,
    CorruptUtilizationSpec,
    CrashRecoverySpec,
    DelaySpikeSpec,
    EstimatorDriftSpec,
    FaultSpec,
    LossSpikeSpec,
    PartitionSpec,
    RMCrashSpec,
    SensorDropoutSpec,
    StaleUtilizationSpec,
)
from repro.errors import ChaosError


@dataclass(frozen=True)
class ChaosScenario:
    """A named, composable set of fault processes."""

    name: str
    faults: tuple[FaultSpec, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        streams = [spec.stream for spec in self.faults]
        duplicates = sorted(
            {stream for stream in streams if streams.count(stream) > 1}
        )
        if duplicates:
            raise ChaosError(
                f"scenario {self.name!r} reuses rng stream(s) "
                f"{duplicates}; give each spec a distinct `stream` so "
                "their draws stay independent"
            )


#: The preset registry: one scenario per fault class, plus combinations.
SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="none",
            faults=(),
            description="No faults; bit-identical to a plain run.",
        ),
        ChaosScenario(
            name="crashes",
            faults=(CrashRecoverySpec(mtbf_s=18.0, mttr_s=5.0),),
            description="Independent crash/recovery renewal on every node.",
        ),
        ChaosScenario(
            name="flaky_node",
            faults=(
                CrashRecoverySpec(mtbf_s=6.0, mttr_s=2.0, processors=("p2",)),
            ),
            description="One node flaps: short up-times, quick recoveries.",
        ),
        ChaosScenario(
            name="outage",
            faults=(
                CorrelatedOutageSpec(interval_s=25.0, group_size=2, outage_s=6.0),
            ),
            description="Correlated two-node outages (rack/power domain).",
        ),
        ChaosScenario(
            name="partition",
            faults=(PartitionSpec(interval_s=40.0, duration_s=3.0),),
            description="Near-total network partitions (~98% loss windows).",
        ),
        ChaosScenario(
            name="loss_spike",
            faults=(
                LossSpikeSpec(
                    interval_s=15.0, duration_s=4.0, loss_probability=0.4
                ),
            ),
            description="Bursty 40% message-loss windows.",
        ),
        ChaosScenario(
            name="delay_spike",
            faults=(
                DelaySpikeSpec(
                    interval_s=15.0, duration_s=5.0, bandwidth_factor=0.2
                ),
            ),
            description="Bandwidth collapses to 20% in bursts.",
        ),
        ChaosScenario(
            name="clock_drift",
            faults=(ClockDriftSpec(interval_s=10.0, max_step_s=0.2),),
            description="Random node clocks step by up to ±200 ms.",
        ),
        ChaosScenario(
            name="sensor_dropout",
            faults=(SensorDropoutSpec(interval_s=20.0, duration_s=3.0),),
            description="The workload sensor repeats stale track counts.",
        ),
        ChaosScenario(
            name="stale_readings",
            faults=(StaleUtilizationSpec(interval_s=12.0, duration_s=6.0),),
            description="A node's utilization reading freezes for windows.",
        ),
        ChaosScenario(
            name="corrupt_readings",
            faults=(
                CorruptUtilizationSpec(
                    interval_s=10.0, duration_s=6.0, mode="negative"
                ),
            ),
            description="A node reports utilization -1 and wins every "
            "least-utilized query.",
        ),
        ChaosScenario(
            name="rm_crash",
            faults=(RMCrashSpec(crash_s=15.0, jitter_s=0.4),),
            description="The RM controller process dies mid-run; without "
            "failover no further adaptation happens.",
        ),
        ChaosScenario(
            name="rm_crash_under_load",
            faults=(
                RMCrashSpec(crash_s=15.0, jitter_s=0.4),
                CrashRecoverySpec(mtbf_s=18.0, mttr_s=5.0),
            ),
            description="Controller crash on top of node crash/recovery "
            "churn — the case failover must survive.",
        ),
        ChaosScenario(
            name="estimator_bias",
            faults=(EstimatorDriftSpec(start_s=8.0, bias_factor=0.3),),
            description="Forecasts collapse to 30% of reality mid-run.",
        ),
        ChaosScenario(
            name="mayhem",
            faults=(
                CrashRecoverySpec(mtbf_s=25.0, mttr_s=4.0),
                LossSpikeSpec(
                    interval_s=20.0, duration_s=4.0, loss_probability=0.3
                ),
                CorruptUtilizationSpec(
                    interval_s=15.0, duration_s=5.0, mode="negative"
                ),
                EstimatorDriftSpec(start_s=15.0, bias_factor=0.4),
            ),
            description="Crashes + loss spikes + corrupted readings + "
            "estimator bias, all at once.",
        ),
    )
}


def get_scenario(name: str) -> ChaosScenario:
    """Look up a preset scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ChaosError(
            f"unknown chaos scenario {name!r}; choose from "
            f"{', '.join(scenario_names())}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Names of every preset scenario, sorted."""
    return tuple(sorted(SCENARIOS))
