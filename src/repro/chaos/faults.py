"""Stochastic fault processes.

Each spec describes a *process*, not a fixed schedule: crash/recovery
renewal processes, correlated outages, network partitions and loss /
delay spikes, clock-drift steps, sensor dropouts, and controller-input
faults (stale or corrupted utilization readings, bias injected into the
fitted ``eex``/``ecd`` estimators).  :meth:`FaultSpec.compile` draws the
concrete injection times from a dedicated ``sim.rng`` stream
(``chaos.<spec.stream>``), so a scenario replays bit-identically under
the same master seed and never perturbs the simulation's own streams.

The compiled form is a flat list of :class:`Injection` records that the
:class:`~repro.chaos.injector.ChaosInjector` schedules on the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ChaosError

#: Corruption modes for :class:`CorruptUtilizationSpec`: the reading is
#: *replaced* with the given constant.
CORRUPTION_VALUES: dict[str, float] = {
    "negative": -1.0,
    "zero": 0.0,
    "inflate": 5.0,
    "nan": float("nan"),
}


@dataclass(frozen=True)
class Injection:
    """One concrete fault drawn from a spec's process.

    Attributes
    ----------
    time:
        Injection instant (simulation seconds).
    kind:
        Dispatch key for the injector (``"crash"``, ``"loss_spike"``,
        ``"bandwidth_spike"``, ``"clock_step"``, ``"sensor_dropout"``,
        ``"reading_freeze"``, ``"reading_corrupt"``,
        ``"estimator_bias"``, ``"rm_crash"``).
    target:
        Processor name, or a symbolic target (``"network"``,
        ``"sensor"``, ``"estimator"``).
    duration_s:
        Window length for windowed faults (``None`` for point faults
        such as clock steps, or for permanent crashes).
    value:
        Kind-specific payload: loss probability, bandwidth factor,
        clock-step seconds, corruption constant, or estimator bias
        factor.
    """

    time: float
    kind: str
    target: str
    duration_s: float | None = None
    value: float = 0.0


@runtime_checkable
class FaultSpec(Protocol):
    """One stochastic fault process."""

    #: Suffix of the dedicated rng stream (``chaos.<stream>``).
    stream: str

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw this process's concrete injections over the horizon."""
        ...


def _require_positive(name: str, value: float) -> None:
    if not value > 0.0:
        raise ChaosError(f"{name} must be positive, got {value}")


@dataclass(frozen=True, kw_only=True)
class CrashRecoverySpec:
    """Per-processor crash/recovery renewal process.

    Each targeted processor alternates between up-times drawn from an
    exponential with mean ``mtbf_s`` and down-times drawn from an
    exponential with mean ``mttr_s`` — the classic alternating renewal
    model of node availability.

    Attributes
    ----------
    mtbf_s:
        Mean time between failures (up-time mean).
    mttr_s:
        Mean time to repair (down-time mean).
    processors:
        Targets (``None`` = every processor).  A single-name tuple
        models a *flapping* node.
    """

    mtbf_s: float = 20.0
    mttr_s: float = 5.0
    processors: tuple[str, ...] | None = None
    stream: str = "crash"

    def __post_init__(self) -> None:
        _require_positive("mtbf_s", self.mtbf_s)
        _require_positive("mttr_s", self.mttr_s)

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw each target's alternating up/down renewal sequence."""
        targets = self.processors if self.processors is not None else processor_names
        injections: list[Injection] = []
        for name in targets:
            t = float(rng.exponential(self.mtbf_s))
            while t < horizon_s:
                down = float(rng.exponential(self.mttr_s))
                injections.append(
                    Injection(time=t, kind="crash", target=name, duration_s=down)
                )
                t += down + float(rng.exponential(self.mtbf_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class CorrelatedOutageSpec:
    """Simultaneous multi-node outages (rack/power-domain failures).

    At exponential intervals a random group of ``group_size``
    processors crashes together for ``outage_s`` seconds.
    """

    interval_s: float = 30.0
    group_size: int = 2
    outage_s: float = 8.0
    stream: str = "outage"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("outage_s", self.outage_s)
        if self.group_size < 1:
            raise ChaosError(f"group_size must be >= 1, got {self.group_size}")

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the outage instants and each outage's random group."""
        injections: list[Injection] = []
        size = min(self.group_size, len(processor_names))
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            group = rng.choice(len(processor_names), size=size, replace=False)
            for i in sorted(int(g) for g in group):
                injections.append(
                    Injection(
                        time=t,
                        kind="crash",
                        target=processor_names[i],
                        duration_s=self.outage_s,
                    )
                )
            t += float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class LossSpikeSpec:
    """Windows of elevated message-loss probability."""

    interval_s: float = 20.0
    duration_s: float = 5.0
    loss_probability: float = 0.3
    stream: str = "loss"
    kind: str = "loss_spike"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("duration_s", self.duration_s)
        if not 0.0 < self.loss_probability < 1.0:
            raise ChaosError(
                f"loss_probability must be in (0, 1), got {self.loss_probability}"
            )

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the loss-spike windows over the horizon."""
        injections: list[Injection] = []
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            injections.append(
                Injection(
                    time=t,
                    kind=self.kind,
                    target="network",
                    duration_s=self.duration_s,
                    value=self.loss_probability,
                )
            )
            t += self.duration_s + float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class PartitionSpec(LossSpikeSpec):
    """Near-total network partitions: loss spikes at probability ~1.

    A distinct spec (and rng stream) rather than a ``LossSpikeSpec``
    preset because partitions are rarer and longer than loss spikes, and
    mixing them into one stream would change both processes' draws.
    """

    interval_s: float = 40.0
    duration_s: float = 3.0
    loss_probability: float = 0.98
    stream: str = "partition"


@dataclass(frozen=True, kw_only=True)
class DelaySpikeSpec:
    """Windows of degraded bandwidth (delay spikes on every message)."""

    interval_s: float = 20.0
    duration_s: float = 5.0
    bandwidth_factor: float = 0.25
    stream: str = "delay"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("duration_s", self.duration_s)
        if not 0.0 < self.bandwidth_factor < 1.0:
            raise ChaosError(
                f"bandwidth_factor must be in (0, 1), got {self.bandwidth_factor}"
            )

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the degraded-bandwidth windows over the horizon."""
        injections: list[Injection] = []
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            injections.append(
                Injection(
                    time=t,
                    kind="bandwidth_spike",
                    target="network",
                    duration_s=self.duration_s,
                    value=self.bandwidth_factor,
                )
            )
            t += self.duration_s + float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class ClockDriftSpec:
    """Step changes to random node clocks' offsets.

    Models a node's clock jumping (bad NTP step, VM pause) on top of
    the continuous drift :class:`~repro.cluster.clock.NodeClock` already
    simulates.
    """

    interval_s: float = 15.0
    max_step_s: float = 0.05
    stream: str = "clock"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("max_step_s", self.max_step_s)

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the clock-step instants, targets, and magnitudes."""
        injections: list[Injection] = []
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            which = int(rng.integers(len(processor_names)))
            step = float(rng.uniform(-self.max_step_s, self.max_step_s))
            injections.append(
                Injection(
                    time=t,
                    kind="clock_step",
                    target=processor_names[which],
                    value=step,
                )
            )
            t += float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class SensorDropoutSpec:
    """Windows in which the workload sensor repeats its last value.

    During a dropout the executor keeps seeing the most recent
    pre-dropout track count instead of the live pattern — data keeps
    flowing but the *measurement* is frozen.
    """

    interval_s: float = 25.0
    duration_s: float = 4.0
    stream: str = "sensor"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("duration_s", self.duration_s)

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the sensor-dropout windows over the horizon."""
        injections: list[Injection] = []
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            injections.append(
                Injection(
                    time=t,
                    kind="sensor_dropout",
                    target="sensor",
                    duration_s=self.duration_s,
                )
            )
            t += self.duration_s + float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class StaleUtilizationSpec:
    """Windows in which a processor's utilization reading freezes.

    The monitor and both allocation policies keep reading the value the
    processor reported at the window's start — the "silently trusted
    stale reading" failure mode the hardened monitor ages out.
    """

    interval_s: float = 20.0
    duration_s: float = 6.0
    stream: str = "stale"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("duration_s", self.duration_s)

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the per-window frozen-reading targets and times."""
        injections: list[Injection] = []
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            which = int(rng.integers(len(processor_names)))
            injections.append(
                Injection(
                    time=t,
                    kind="reading_freeze",
                    target=processor_names[which],
                    duration_s=self.duration_s,
                )
            )
            t += self.duration_s + float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class CorruptUtilizationSpec:
    """Windows in which a processor's utilization reading is garbage.

    The reading is replaced by a constant chosen by ``mode`` (see
    :data:`CORRUPTION_VALUES`).  ``"negative"`` is the nastiest for the
    unhardened loop: a reading of -1 *wins* every least-utilized query,
    so both policies pile replicas onto the lying processor.
    """

    interval_s: float = 20.0
    duration_s: float = 6.0
    mode: str = "negative"
    stream: str = "corrupt"

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("duration_s", self.duration_s)
        if self.mode not in CORRUPTION_VALUES:
            raise ChaosError(
                f"unknown corruption mode {self.mode!r}; "
                f"choose from {sorted(CORRUPTION_VALUES)}"
            )

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Draw the per-window corrupted-reading targets and times."""
        injections: list[Injection] = []
        value = CORRUPTION_VALUES[self.mode]
        t = float(rng.exponential(self.interval_s))
        while t < horizon_s:
            which = int(rng.integers(len(processor_names)))
            injections.append(
                Injection(
                    time=t,
                    kind="reading_corrupt",
                    target=processor_names[which],
                    duration_s=self.duration_s,
                    value=value,
                )
            )
            t += self.duration_s + float(rng.exponential(self.interval_s))
        return injections


@dataclass(frozen=True, kw_only=True)
class RMCrashSpec:
    """The resource-manager controller process dies mid-run.

    A point fault at ``crash_s`` (jittered by up to ``jitter_s`` so the
    crash does not always land on a monitoring-period boundary): the
    primary controller's scheduled monitoring steps are cancelled and
    no further adaptation happens — unless a standby controller
    (:class:`repro.recovery.failover.FailoverCoordinator`) is armed, in
    which case its lease watchdog detects the silence and promotes the
    standby from the last controller-state checkpoint.
    """

    crash_s: float = 15.0
    jitter_s: float = 0.0
    stream: str = "rm-crash"

    def __post_init__(self) -> None:
        _require_positive("crash_s", self.crash_s)
        if self.jitter_s < 0.0:
            raise ChaosError(f"jitter_s must be >= 0, got {self.jitter_s}")

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Emit the single controller-crash point fault."""
        t = self.crash_s
        if self.jitter_s > 0.0:
            t += float(rng.uniform(0.0, self.jitter_s))
        if t >= horizon_s:
            return []
        return [Injection(time=t, kind="rm_crash", target="manager")]


@dataclass(frozen=True, kw_only=True)
class EstimatorDriftSpec:
    """Bias/noise injected into the fitted ``eex``/``ecd`` estimators.

    From ``start_s`` (for ``duration_s`` seconds, or until the horizon)
    every estimator query is multiplied by ``bias_factor``, optionally
    perturbed by one lognormal noise draw per window (drawn at compile
    time, so replays stay bit-identical).  A factor below 1 makes
    Figure 5 *optimistic* — it under-provisions and misses deadlines —
    which is exactly the misprediction regime the forecast circuit
    breaker exists for.
    """

    start_s: float = 10.0
    duration_s: float | None = None
    bias_factor: float = 0.4
    noise_sigma: float = 0.0
    stream: str = "estimator"

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ChaosError(f"start_s must be >= 0, got {self.start_s}")
        if self.duration_s is not None:
            _require_positive("duration_s", self.duration_s)
        _require_positive("bias_factor", self.bias_factor)
        if self.noise_sigma < 0.0:
            raise ChaosError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )

    def compile(
        self,
        rng: np.random.Generator,
        horizon_s: float,
        processor_names: tuple[str, ...],
    ) -> list[Injection]:
        """Emit the single bias window (noise drawn here, once)."""
        if self.start_s >= horizon_s:
            return []
        duration = (
            self.duration_s
            if self.duration_s is not None
            else horizon_s - self.start_s
        )
        factor = self.bias_factor
        if self.noise_sigma > 0.0:
            factor *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
        return [
            Injection(
                time=self.start_s,
                kind="estimator_bias",
                target="estimator",
                duration_s=duration,
                value=factor,
            )
        ]
