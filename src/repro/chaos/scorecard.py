"""The resilience scorecard: what a fault process actually cost.

:func:`compute_scorecard` turns a run's period records, the manager's
action history, and the injector's fault log into the standard
resilience quantities:

* **availability** — fraction of released periods that completed on
  time;
* **miss windows** — maximal runs of consecutive not-on-time periods,
  measured on the time axis from the first violated deadline to the
  completion of the next on-time period (duration, count, and ratio of
  the horizon spent inside one);
* **MTTR** — mean time from a *disruptive* fault (one followed by a
  missed period before service recovers) to the first on-time
  completion after it; faults never recovered from before the horizon
  are counted separately and contribute the remaining horizon;
* **actions per fault** — placement-changing RM steps per injected
  fault, the control-effort cost of surviving the scenario.

Records and events are duck-typed (``release_time`` / ``missed`` /
``completed`` / ``completion_time`` on records), matching the telemetry
hub's convention so the module needs nothing above the runtime layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.errors import ChaosError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.faults import Injection
    from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class ResilienceScorecard:
    """The resilience quantities of one run under one scenario."""

    horizon_s: float
    faults_injected: int
    faults_by_kind: dict[str, int] = field(compare=False)
    periods_released: int = 0
    periods_on_time: int = 0
    availability: float = 1.0
    miss_windows: int = 0
    miss_window_s: float = 0.0
    miss_window_ratio: float = 0.0
    mttr_s: float | None = None
    disrupted_faults: int = 0
    unrecovered_faults: int = 0
    rm_actions: int = 0
    actions_per_fault: float = 0.0
    #: Controller crashes injected (``rm_crash`` faults before horizon).
    rm_crashes: int = 0
    #: Crash-to-takeover latency of the standby controller, averaged
    #: over crashes (``None``: no failover armed or no crash fired).
    takeover_latency_s: float | None = None
    #: Monitoring-period boundaries that elapsed with no live
    #: controller (primary dead, standby not yet promoted).
    missed_rm_cycles: int = 0
    #: Decision events that differ from the uninterrupted reference
    #: run's sequence (``None``: no reference was compared).
    decision_divergence: int | None = None

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "horizon_s": self.horizon_s,
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "periods_released": self.periods_released,
            "periods_on_time": self.periods_on_time,
            "availability": self.availability,
            "miss_windows": self.miss_windows,
            "miss_window_s": self.miss_window_s,
            "miss_window_ratio": self.miss_window_ratio,
            "mttr_s": self.mttr_s,
            "disrupted_faults": self.disrupted_faults,
            "unrecovered_faults": self.unrecovered_faults,
            "rm_actions": self.rm_actions,
            "actions_per_fault": self.actions_per_fault,
            "rm_crashes": self.rm_crashes,
            "takeover_latency_s": self.takeover_latency_s,
            "missed_rm_cycles": self.missed_rm_cycles,
            "decision_divergence": self.decision_divergence,
        }

    def to_registry(self, registry: "MetricsRegistry") -> None:
        """Export every quantity as ``chaos.*`` gauges."""
        registry.gauge("chaos.faults_total").set(self.faults_injected)
        registry.gauge("chaos.availability").set(self.availability)
        registry.gauge("chaos.miss_windows").set(self.miss_windows)
        registry.gauge("chaos.miss_window_seconds").set(self.miss_window_s)
        registry.gauge("chaos.miss_window_ratio").set(self.miss_window_ratio)
        if self.mttr_s is not None:
            registry.gauge("chaos.mttr_seconds").set(self.mttr_s)
        registry.gauge("chaos.disrupted_faults").set(self.disrupted_faults)
        registry.gauge("chaos.unrecovered_faults").set(self.unrecovered_faults)
        registry.gauge("chaos.actions_per_fault").set(self.actions_per_fault)
        if self.rm_crashes:
            registry.gauge("chaos.rm_crashes").set(self.rm_crashes)
            registry.gauge("chaos.missed_rm_cycles").set(self.missed_rm_cycles)
        if self.takeover_latency_s is not None:
            registry.gauge("chaos.takeover_latency_seconds").set(
                self.takeover_latency_s
            )

    def write_json(self, path: str | Path) -> Path:
        """Persist :meth:`as_dict` as pretty-printed JSON (atomically)."""
        from repro.experiments.export import atomic_write_text

        target = Path(path)
        atomic_write_text(
            target, json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return target


def _on_time(record) -> bool:
    return record.completed and not record.missed


def _resolution_time(record, horizon_s: float) -> float:
    if record.completion_time is not None:
        return float(record.completion_time)
    return horizon_s


def compute_scorecard(
    records: Sequence,
    fault_log: Sequence["Injection"],
    horizon_s: float,
    rm_actions: int = 0,
    faults_by_kind: dict[str, int] | None = None,
) -> ResilienceScorecard:
    """Derive the scorecard from one run's records and fault log.

    Parameters
    ----------
    records:
        Finished period records (completed or aborted), release order.
    fault_log:
        The injector's compiled :class:`~repro.chaos.faults.Injection`
        list (empty for a fault-free baseline run).
    horizon_s:
        Observation horizon; released-but-unresolved misses extend to
        it.
    rm_actions:
        Placement-changing manager steps
        (:meth:`~repro.core.manager.AdaptiveResourceManager.actions_taken`).
    faults_by_kind:
        Injection counts per kind (derived from ``fault_log`` when
        omitted).
    """
    if horizon_s <= 0.0:
        raise ChaosError(f"horizon_s must be positive, got {horizon_s}")
    records = [r for r in records if r.release_time < horizon_s]
    if faults_by_kind is None:
        faults_by_kind = {}
        for injection in fault_log:
            faults_by_kind[injection.kind] = (
                faults_by_kind.get(injection.kind, 0) + 1
            )

    released = len(records)
    on_time = sum(1 for record in records if _on_time(record))
    availability = on_time / released if released else 1.0

    # Miss windows on the time axis: a window opens at the first violated
    # deadline of a run of consecutive not-on-time periods and closes at
    # the completion of the next on-time period (or the horizon).
    miss_windows = 0
    miss_window_s = 0.0
    window_start: float | None = None
    for record in records:
        if _on_time(record):
            if window_start is not None:
                end = _resolution_time(record, horizon_s)
                miss_window_s += max(0.0, end - window_start)
                window_start = None
        elif window_start is None:
            miss_windows += 1
            window_start = record.release_time + record.deadline
    if window_start is not None:
        miss_window_s += max(0.0, horizon_s - window_start)
    miss_window_ratio = min(1.0, miss_window_s / horizon_s)

    # MTTR over disruptive faults: time from the fault to the first
    # on-time completion, counting only faults whose aftermath actually
    # missed a deadline before recovering.
    recovery_times: list[float] = []
    disrupted = 0
    unrecovered = 0
    for injection in fault_log:
        if injection.time >= horizon_s:
            continue
        saw_miss = False
        recovered_at: float | None = None
        for record in records:
            if record.release_time < injection.time:
                continue
            if _on_time(record):
                if saw_miss:
                    recovered_at = _resolution_time(record, horizon_s)
                break
            saw_miss = True
        if not saw_miss:
            continue
        disrupted += 1
        if recovered_at is None:
            unrecovered += 1
            recovery_times.append(horizon_s - injection.time)
        else:
            recovery_times.append(recovered_at - injection.time)
    mttr_s = (
        sum(recovery_times) / len(recovery_times) if recovery_times else None
    )

    n_faults = sum(1 for injection in fault_log if injection.time < horizon_s)
    return ResilienceScorecard(
        horizon_s=float(horizon_s),
        faults_injected=n_faults,
        faults_by_kind=faults_by_kind,
        periods_released=released,
        periods_on_time=on_time,
        availability=availability,
        miss_windows=miss_windows,
        miss_window_s=miss_window_s,
        miss_window_ratio=miss_window_ratio,
        mttr_s=mttr_s,
        disrupted_faults=disrupted,
        unrecovered_faults=unrecovered,
        rm_actions=rm_actions,
        actions_per_fault=(
            rm_actions / n_faults if n_faults else float(rm_actions)
        ),
    )
