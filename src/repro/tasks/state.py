"""Mutable run-time allocation state: the ``PS(st)`` map.

:class:`ReplicaAssignment` tracks, for every subtask of a task, the
*ordered* list of processors currently executing its replicas — the set
``PS(st_j^i)`` manipulated by Figures 5-7 of the paper.  Order matters
because the shutdown rule (Figure 6) removes the **last added** replica.

Invariants enforced here (violations raise
:class:`~repro.errors.AllocationError`):

* every subtask always has at least one replica (the original);
* a subtask's replicas live on pairwise-distinct processors;
* only subtasks marked replicable may ever have more than one replica.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.tasks.model import PeriodicTask


class ReplicaAssignment:
    """Ordered processor sets ``PS(st)`` for every subtask of one task.

    Parameters
    ----------
    task:
        The task whose subtasks are being placed.
    initial:
        Mapping ``subtask index -> processor name`` giving the home of
        each original (first) replica.
    """

    def __init__(self, task: PeriodicTask, initial: dict[int, str]) -> None:
        self.task = task
        missing = [s.index for s in task.subtasks if s.index not in initial]
        if missing:
            raise AllocationError(f"no initial placement for subtasks {missing}")
        self._placement: dict[int, list[str]] = {
            s.index: [initial[s.index]] for s in task.subtasks
        }

    # -- queries --------------------------------------------------------------

    def processors_of(self, subtask_index: int) -> tuple[str, ...]:
        """``PS(st)``: ordered processor names hosting replicas (oldest first)."""
        return tuple(self._placement[self._check(subtask_index)])

    def replica_count(self, subtask_index: int) -> int:
        """``|PS(st)|`` = ``|rl(st, t)|``."""
        return len(self._placement[self._check(subtask_index)])

    def total_replicas(self, replicable_only: bool = True) -> int:
        """Total replica count across the task's subtasks.

        With ``replicable_only`` (the default, matching the paper's
        "average number of subtask replicas" metric) only replicable
        subtasks are counted.
        """
        total = 0
        for subtask in self.task.subtasks:
            if replicable_only and not subtask.replicable:
                continue
            total += len(self._placement[subtask.index])
        return total

    def snapshot(self) -> dict[int, tuple[str, ...]]:
        """Immutable copy of the whole placement."""
        return {idx: tuple(procs) for idx, procs in self._placement.items()}

    # -- mutation -----------------------------------------------------------------

    def add_replica(self, subtask_index: int, processor: str) -> None:
        """Place a new replica of ``st`` on ``processor`` (Figure 5, step 5)."""
        idx = self._check(subtask_index)
        subtask = self.task.subtask(idx)
        current = self._placement[idx]
        if not subtask.replicable and current:
            raise AllocationError(
                f"subtask {subtask.name} (index {idx}) is not replicable"
            )
        if processor in current:
            raise AllocationError(
                f"processor {processor!r} already hosts a replica of "
                f"subtask {idx}"
            )
        current.append(processor)

    def evict_processor(self, processor: str) -> list[int]:
        """Remove every replica hosted on ``processor`` (failure handling).

        Replicas of a subtask whose *only* copy lived on ``processor``
        are NOT silently removed — the subtask keeps its (dead) home so
        the invariant "at least one replica" holds, and the caller (the
        resource manager's failure-recovery path) must migrate it with
        :meth:`replace_processor`.  Returns the indices of subtasks that
        lost a replica (including ones left stranded on the dead node).
        """
        affected: list[int] = []
        for index, processors in self._placement.items():
            if processor in processors:
                affected.append(index)
                if len(processors) > 1:
                    processors.remove(processor)
        return affected

    def replace_processor(
        self, subtask_index: int, old: str, new: str
    ) -> None:
        """Migrate one replica from ``old`` to ``new`` (position kept)."""
        idx = self._check(subtask_index)
        processors = self._placement[idx]
        if old not in processors:
            raise AllocationError(
                f"subtask {idx} has no replica on {old!r}"
            )
        if new in processors:
            raise AllocationError(
                f"processor {new!r} already hosts a replica of subtask {idx}"
            )
        processors[processors.index(old)] = new

    def hosts(self, subtask_index: int, processor: str) -> bool:
        """Whether ``processor`` currently hosts a replica of the subtask."""
        return processor in self._placement[self._check(subtask_index)]

    def remove_last_replica(self, subtask_index: int) -> str | None:
        """Shut down the most recently added replica (Figure 6).

        Returns the processor the replica was removed from, or ``None``
        when only the original replica remains (Figure 6, step 1).
        """
        idx = self._check(subtask_index)
        current = self._placement[idx]
        if len(current) <= 1:
            return None
        return current.pop()

    def reset(self, subtask_index: int, processors: list[str]) -> None:
        """Replace the whole placement of a subtask (used by tests/tools)."""
        idx = self._check(subtask_index)
        if not processors:
            raise AllocationError("a subtask must keep at least one replica")
        if len(set(processors)) != len(processors):
            raise AllocationError("replica processors must be distinct")
        subtask = self.task.subtask(idx)
        if not subtask.replicable and len(processors) > 1:
            raise AllocationError(
                f"subtask {subtask.name} (index {idx}) is not replicable"
            )
        self._placement[idx] = list(processors)

    # -- internals ---------------------------------------------------------------

    def _check(self, subtask_index: int) -> int:
        if subtask_index not in self._placement:
            raise AllocationError(
                f"unknown subtask index {subtask_index} for task {self.task.name}"
            )
        return subtask_index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(
            f"st{idx}={list(procs)}" for idx, procs in sorted(self._placement.items())
        )
        return f"<ReplicaAssignment {self.task.name}: {inner}>"
