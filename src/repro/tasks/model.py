"""Structural model of periodic tasks (paper §3).

A :class:`PeriodicTask` is a serial chain of :class:`Subtask` objects
joined by :class:`MessageSpec` objects:

.. code-block:: text

    st1 --m1--> st2 --m2--> ... --m(n-1)--> stn

Notation mapping to the paper:

==============================  =========================================
Paper                           Here
==============================  =========================================
``T_i``                         :class:`PeriodicTask`
``st_j^i``                      :class:`Subtask` (``index`` is ``j``)
``m_j^i``                       :class:`MessageSpec` between ``st_j`` and
                                ``st_{j+1}``
``cy(T_i)``                     :attr:`PeriodicTask.period`
``dl(T_i)``                     :attr:`PeriodicTask.deadline`
``ds(T_i, c)``                  supplied per period by the workload
                                pattern (see :mod:`repro.workloads`)
``rl(st, t)`` / ``PS(st)``      :class:`repro.tasks.state.ReplicaAssignment`
==============================  =========================================

The chain in the paper's model nominally carries a message after every
subtask; the benchmark task's final subtask (the actuator) produces no
downstream message, so we model ``n`` subtasks with ``n - 1`` inter-subtask
messages.  A trailing output message can simply be modelled as an extra
lightweight sink subtask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import TaskModelError
from repro.units import TRACK_BYTES


@runtime_checkable
class ServiceModel(Protocol):
    """Ground-truth CPU demand of one subtask (supplied by the benchmark).

    Implementations return the CPU seconds required to process ``d_tracks``
    data items.  ``rng`` supplies measurement/execution noise; pass ``None``
    for the deterministic mean demand.
    """

    def demand(self, d_tracks: float, rng: np.random.Generator | None = None) -> float:
        """CPU seconds to process ``d_tracks`` items (≥ 0)."""
        ...


@dataclass(frozen=True)
class Subtask:
    """One executable program in the task chain.

    Attributes
    ----------
    index:
        1-based position in the chain (paper subscript ``j``).
    name:
        Human-readable name (e.g. ``"Filter"``).
    replicable:
        Whether the RM algorithms may replicate this subtask (§3,
        property 6).  Table 1: 2 of the 5 benchmark subtasks.
    service:
        Ground-truth CPU demand model used by the executor and the
        profiler.  The RM algorithms never read this — they only see
        profiled measurements and regression fits.
    """

    index: int
    name: str
    replicable: bool
    service: ServiceModel

    def __post_init__(self) -> None:
        if self.index < 1:
            raise TaskModelError(f"subtask index must be >= 1, got {self.index}")
        if not self.name:
            raise TaskModelError("subtask name must be non-empty")


@dataclass(frozen=True)
class MessageSpec:
    """The message between chain positions ``index`` and ``index + 1``.

    Attributes
    ----------
    index:
        1-based index; message ``j`` carries the output of subtask ``j``.
    bytes_per_item:
        Wire payload per track carried (Table 1: 80 bytes/track).
    context_bytes_per_item:
        Per-item *global context* shipped to **every** replica in
        addition to its share.  Track-processing replicas need the whole
        tactical picture (for gating/correlation) even though they only
        process ``1/k`` of the stream, so each replica message carries
        ``bytes_per_item * share + context_bytes_per_item * total``.
        This is the mechanism by which replica fan-out costs network
        capacity — the effect behind the paper's observation that the
        over-replicating non-predictive algorithm drives network
        utilization up (Figs. 9c/11c/12c).
    """

    index: int
    bytes_per_item: float = float(TRACK_BYTES)
    context_bytes_per_item: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 1:
            raise TaskModelError(f"message index must be >= 1, got {self.index}")
        if self.bytes_per_item < 0.0:
            raise TaskModelError(
                f"bytes_per_item must be non-negative, got {self.bytes_per_item}"
            )
        if self.context_bytes_per_item < 0.0:
            raise TaskModelError(
                "context_bytes_per_item must be non-negative, got "
                f"{self.context_bytes_per_item}"
            )

    def payload_bytes(self, d_tracks: float) -> float:
        """Share-only payload in bytes when carrying ``d_tracks`` items."""
        if d_tracks < 0.0:
            raise TaskModelError(f"negative data size {d_tracks}")
        return self.bytes_per_item * float(d_tracks)

    def wire_payload_bytes(self, share_tracks: float, total_tracks: float) -> float:
        """Payload of one replica message: its share plus global context."""
        if share_tracks < 0.0 or total_tracks < 0.0:
            raise TaskModelError(
                f"negative data size (share={share_tracks}, total={total_tracks})"
            )
        if share_tracks > total_tracks:
            raise TaskModelError(
                f"share {share_tracks} exceeds total {total_tracks}"
            )
        return (
            self.bytes_per_item * float(share_tracks)
            + self.context_bytes_per_item * float(total_tracks)
        )


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic task: a serial subtask/message chain with a deadline.

    Attributes
    ----------
    name:
        Task identifier.
    period:
        Release period ``cy(T_i)`` in seconds (Table 1: 1 s).
    deadline:
        Relative end-to-end deadline ``dl(T_i)`` in seconds (Table 1:
        990 ms).
    subtasks:
        The chain ``ST(T_i)``, ordered by index, indices ``1..n``.
    messages:
        The chain ``MS(T_i)``, ordered by index, indices ``1..n-1``.
    """

    name: str
    period: float
    deadline: float
    subtasks: tuple[Subtask, ...]
    messages: tuple[MessageSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise TaskModelError(f"period must be positive, got {self.period}")
        if self.deadline <= 0.0:
            raise TaskModelError(f"deadline must be positive, got {self.deadline}")
        if not self.subtasks:
            raise TaskModelError("a task needs at least one subtask")
        for pos, subtask in enumerate(self.subtasks, start=1):
            if subtask.index != pos:
                raise TaskModelError(
                    f"subtask at position {pos} has index {subtask.index}; "
                    "the chain must be indexed 1..n in order"
                )
        if len(self.messages) != len(self.subtasks) - 1:
            raise TaskModelError(
                f"{len(self.subtasks)} subtasks require "
                f"{len(self.subtasks) - 1} messages, got {len(self.messages)}"
            )
        for pos, message in enumerate(self.messages, start=1):
            if message.index != pos:
                raise TaskModelError(
                    f"message at position {pos} has index {message.index}"
                )

    # -- convenience views -------------------------------------------------------

    @property
    def n_subtasks(self) -> int:
        """Chain length ``n``."""
        return len(self.subtasks)

    def subtask(self, index: int) -> Subtask:
        """Subtask ``st_index`` (1-based)."""
        if not 1 <= index <= len(self.subtasks):
            raise TaskModelError(
                f"subtask index {index} out of range 1..{len(self.subtasks)}"
            )
        return self.subtasks[index - 1]

    def message(self, index: int) -> MessageSpec:
        """Message ``m_index`` (1-based; carries subtask ``index`` output)."""
        if not 1 <= index <= len(self.messages):
            raise TaskModelError(
                f"message index {index} out of range 1..{len(self.messages)}"
            )
        return self.messages[index - 1]

    def replicable_indices(self) -> tuple[int, ...]:
        """Indices of subtasks the RM algorithms may replicate."""
        return tuple(s.index for s in self.subtasks if s.replicable)

    @property
    def slack_budget(self) -> float:
        """``deadline`` is the total budget; kept for readability at call sites."""
        return self.deadline
