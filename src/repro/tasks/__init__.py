"""Application model substrate.

Implements the paper's §3 task model: a periodic task ``Ti`` is a serial
chain ``[st1, m1, st2, m2, ..., stn]`` of subtasks (executable programs)
and inter-subtask messages.  Subtasks may be *replicable*: replicas split
the period's track stream evenly and run concurrently on distinct
processors (§3, properties 6-8).

* :mod:`repro.tasks.model` — :class:`Subtask`, :class:`MessageSpec`,
  :class:`PeriodicTask` and their invariants.
* :mod:`repro.tasks.builder` — fluent :class:`TaskBuilder` plus the
  AAW-benchmark-shaped default task factory.
* :mod:`repro.tasks.state` — :class:`ReplicaAssignment`, the mutable
  ``PS(st)`` map manipulated by the resource-management algorithms.
"""

from repro.tasks.builder import TaskBuilder
from repro.tasks.model import MessageSpec, PeriodicTask, ServiceModel, Subtask
from repro.tasks.state import ReplicaAssignment

__all__ = [
    "MessageSpec",
    "PeriodicTask",
    "ReplicaAssignment",
    "ServiceModel",
    "Subtask",
    "TaskBuilder",
]
