"""Fluent construction of :class:`~repro.tasks.model.PeriodicTask` chains.

Example
-------
.. code-block:: python

    task = (
        TaskBuilder("aaw", period_s=1.0, deadline_s=0.990)
        .subtask("SensorIntake", service=intake_model)
        .message(bytes_per_item=80)
        .subtask("Filter", service=filter_model, replicable=True)
        .message(bytes_per_item=80)
        .subtask("EvalDecide", service=eval_model, replicable=True)
        .build()
    )
"""

from __future__ import annotations

from repro.errors import TaskModelError
from repro.tasks.model import MessageSpec, PeriodicTask, ServiceModel, Subtask
from repro.units import TRACK_BYTES


class TaskBuilder:
    """Incrementally assembles a subtask/message chain.

    The grammar is ``subtask (message subtask)*``: the builder enforces
    strict alternation so a malformed chain fails at construction time
    rather than deep inside a simulation.
    """

    def __init__(self, name: str, period_s: float, deadline_s: float) -> None:
        self.name = name
        self.period = float(period_s)
        self.deadline = float(deadline_s)
        self._subtasks: list[Subtask] = []
        self._messages: list[MessageSpec] = []
        self._expect_subtask = True

    def subtask(
        self, name: str, service: ServiceModel, replicable: bool = False
    ) -> "TaskBuilder":
        """Append the next subtask in the chain."""
        if not self._expect_subtask:
            raise TaskModelError(
                f"expected a message before subtask {name!r}; "
                "chains alternate subtask/message"
            )
        self._subtasks.append(
            Subtask(
                index=len(self._subtasks) + 1,
                name=name,
                replicable=replicable,
                service=service,
            )
        )
        self._expect_subtask = False
        return self

    def message(
        self,
        bytes_per_item: float = float(TRACK_BYTES),
        context_bytes_per_item: float = 0.0,
    ) -> "TaskBuilder":
        """Append the message following the most recent subtask."""
        if self._expect_subtask:
            raise TaskModelError(
                "expected a subtask before the next message; "
                "chains alternate subtask/message"
            )
        self._messages.append(
            MessageSpec(
                index=len(self._messages) + 1,
                bytes_per_item=bytes_per_item,
                context_bytes_per_item=context_bytes_per_item,
            )
        )
        self._expect_subtask = True
        return self

    def build(self) -> PeriodicTask:
        """Validate and freeze the chain."""
        if self._expect_subtask and self._subtasks:
            raise TaskModelError(
                "chain ends with a dangling message; append the final subtask"
            )
        return PeriodicTask(
            name=self.name,
            period=self.period,
            deadline=self.deadline,
            subtasks=tuple(self._subtasks),
            messages=tuple(self._messages),
        )
