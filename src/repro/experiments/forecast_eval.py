"""In-vivo forecast calibration (the paper's core mechanism, audited).

The predictive algorithm is exactly as good as its forecasts.  This
module runs an experiment and, for every replication decision the
manager takes, pairs Figure 5's *forecast* stage latency (the value
that satisfied the budget check) with the stage latency actually
*observed* in the following periods — then summarizes the calibration
(mean error, mean absolute percentage error, pessimism rate).

A well-calibrated forecast errs slightly on the pessimistic side
(observed <= forecast) so the 20 % slack target translates into met
deadlines; a systematically optimistic forecast would convert directly
into misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.history_index import RunHistoryIndex
from repro.regression.estimator import TimingEstimator
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import make_pattern


@dataclass(frozen=True)
class ForecastSample:
    """One decision's forecast paired with the realized stage latency."""

    time: float
    subtask_index: int
    replica_count: int
    forecast_s: float
    observed_s: float

    @property
    def error_s(self) -> float:
        """Signed error (positive = pessimistic forecast)."""
        return self.forecast_s - self.observed_s

    @property
    def absolute_percentage_error(self) -> float:
        """|forecast - observed| / observed."""
        return abs(self.error_s) / max(self.observed_s, 1e-9)


@dataclass(frozen=True)
class CalibrationReport:
    """Aggregate calibration statistics over a run's decisions."""

    samples: tuple[ForecastSample, ...]
    missed_deadline_ratio: float = 0.0

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mape(self) -> float:
        """Mean absolute percentage error of the forecasts."""
        if not self.samples:
            return 0.0
        return float(
            np.mean([s.absolute_percentage_error for s in self.samples])
        )

    @property
    def mean_error_s(self) -> float:
        """Mean signed error (positive = pessimistic on average)."""
        if not self.samples:
            return 0.0
        return float(np.mean([s.error_s for s in self.samples]))

    @property
    def pessimism_rate(self) -> float:
        """Fraction of decisions whose forecast was >= the observation."""
        if not self.samples:
            return 0.0
        return float(np.mean([s.error_s >= 0.0 for s in self.samples]))


def calibration_from_run(
    task,
    executor,
    manager,
    n_periods: int,
    settle_periods: int = 1,
    index: RunHistoryIndex | None = None,
) -> CalibrationReport:
    """Pair a finished run's forecasts with the realized stage latencies.

    Works on the artefacts any predictive-policy run already produces
    (the executor's period records and the manager's decision history),
    so callers that have just run an experiment — :func:`evaluate_forecasts`
    below, or :func:`repro.experiments.runner.run_experiment` attaching
    calibration to its result — share one pairing implementation.
    The forecast decisions and the period lookup come from the run's
    :class:`~repro.experiments.history_index.RunHistoryIndex` (built ad
    hoc when not passed), so this never rescans ``manager.history``.

    For each manager step that replicated subtask ``j`` with forecast
    ``f``, the observation is the mean stage latency of ``j`` over the
    next periods that ran with the *same* replica count (stopping at the
    next placement change).  ``settle_periods`` skips the first period
    after the decision (the stage may already be mid-flight).
    """
    if index is None:
        index = RunHistoryIndex(executor, manager)
    index.update()
    samples: list[ForecastSample] = []
    for time, subtask_index, replica_count, forecast_s in (
        index.forecast_decisions()
    ):
        decision_period = int(round(time / task.period))
        observed: list[float] = []
        for period in range(decision_period + settle_periods, n_periods):
            record = index.record_of_period(period)
            if record is None:
                continue
            stage = record.stage(subtask_index)
            if stage is None or stage.stage_latency is None:
                continue
            if stage.replica_count != replica_count:
                break  # the placement changed; stop the window
            observed.append(stage.stage_latency)
            if len(observed) >= 3:
                break
        if observed:
            samples.append(
                ForecastSample(
                    time=time,
                    subtask_index=subtask_index,
                    replica_count=replica_count,
                    forecast_s=forecast_s,
                    observed_s=float(np.mean(observed)),
                )
            )
    released = list(executor.records)
    missed = sum(1 for r in released if r.missed)
    return CalibrationReport(
        samples=tuple(samples),
        missed_deadline_ratio=missed / len(released) if released else 0.0,
    )


def evaluate_forecasts(
    config: ExperimentConfig,
    estimator: TimingEstimator | None = None,
    settle_periods: int = 1,
    online: bool = False,
) -> CalibrationReport:
    """Run the predictive policy and audit every replication forecast.

    For each manager step that replicated subtask ``j`` with forecast
    ``f``, the observation is the mean stage latency of ``j`` over the
    next periods that ran with the *same* replica count (stopping at the
    next placement change).  ``settle_periods`` skips the first period
    after the decision (the stage may already be mid-flight).

    With ``online=True`` the estimator is wrapped in
    :class:`repro.regression.online.OnlineCorrectedEstimator`, so the
    audit measures the *refined* forecasts (extension E-X12).
    """
    if config.policy != "predictive":
        raise ConfigurationError(
            "forecast evaluation requires the predictive policy, got "
            f"{config.policy!r}"
        )
    baseline = config.baseline
    if estimator is None:
        estimator = get_estimator(baseline)
    if online:
        from repro.regression.online import OnlineCorrectedEstimator

        estimator = OnlineCorrectedEstimator(base=estimator)
    system = build_system(
        n_processors=baseline.n_nodes,
        bandwidth_bps=baseline.bandwidth_bps,
        message_overhead_bytes=baseline.message_overhead_bytes,
        seed=baseline.seed,
        engine=config.engine,
    )
    task = aaw_task(
        period=baseline.period,
        deadline=baseline.deadline,
        noise_sigma=baseline.noise_sigma,
    )
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    pattern = make_pattern(
        config.pattern,
        min_tracks=config.min_tracks,
        max_tracks=config.max_tracks,
        n_periods=baseline.n_periods,
    )
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=pattern,
        config=ExecutorConfig(drop_factor=baseline.drop_factor),
    )
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=PredictivePolicy(slack_fraction=baseline.slack_fraction),
        config=RMConfig(initial_d_tracks=config.min_tracks),
    )
    manager.start(baseline.n_periods)
    executor.start(baseline.n_periods)
    system.engine.run_until(
        baseline.n_periods * baseline.period
        + (baseline.drop_factor + 1.0) * baseline.period
    )

    # Pair forecasts with realized stage latencies.
    return calibration_from_run(
        task,
        executor,
        manager,
        baseline.n_periods,
        settle_periods=settle_periods,
    )
