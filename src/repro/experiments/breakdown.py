"""Per-stage latency breakdown: where does the period go?

Aggregates a run's stage records into, per subtask: mean execution
latency, mean incoming-message delay, their shares of end-to-end
latency, and mean replica count.  This is the diagnostic view behind
statements like "Filter dominated until it got 3 replicas, then the
message fan-in became the bottleneck".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.report import format_table
from repro.runtime.executor import PeriodicTaskExecutor
from repro.units import s_to_ms


@dataclass(frozen=True)
class StageBreakdown:
    """Aggregated timing of one subtask stage across periods."""

    subtask_index: int
    subtask_name: str
    periods_observed: int
    mean_exec_s: float
    mean_message_in_s: float
    mean_replicas: float

    @property
    def mean_stage_s(self) -> float:
        """Mean total stage latency (message-in + execution)."""
        return self.mean_exec_s + self.mean_message_in_s


@dataclass(frozen=True)
class LatencyBreakdown:
    """A whole run's per-stage decomposition."""

    stages: tuple[StageBreakdown, ...]
    mean_end_to_end_s: float
    periods_completed: int

    def stage(self, subtask_index: int) -> StageBreakdown:
        """Look up one stage by chain index."""
        for stage in self.stages:
            if stage.subtask_index == subtask_index:
                return stage
        raise ConfigurationError(f"no stage {subtask_index} in the breakdown")

    def dominant_stage(self) -> StageBreakdown:
        """The stage with the largest mean share of the period."""
        return max(self.stages, key=lambda s: s.mean_stage_s)

    def render(self) -> str:
        """ASCII table of the decomposition."""
        rows = []
        for stage in self.stages:
            share = (
                stage.mean_stage_s / self.mean_end_to_end_s
                if self.mean_end_to_end_s > 0
                else 0.0
            )
            rows.append(
                [
                    f"st{stage.subtask_index} {stage.subtask_name}",
                    s_to_ms(stage.mean_exec_s),
                    s_to_ms(stage.mean_message_in_s),
                    s_to_ms(stage.mean_stage_s),
                    f"{share:.0%}",
                    stage.mean_replicas,
                ]
            )
        rows.append(
            [
                "end-to-end",
                "-",
                "-",
                s_to_ms(self.mean_end_to_end_s),
                "100%",
                "-",
            ]
        )
        return format_table(
            ["stage", "exec (ms)", "msg-in (ms)", "total (ms)", "share",
             "replicas"],
            rows,
            title=f"Latency breakdown over {self.periods_completed} "
            "completed periods",
        )


def compute_breakdown(
    executor: PeriodicTaskExecutor,
    first_period: int = 0,
    last_period: int | None = None,
) -> LatencyBreakdown:
    """Aggregate stage records of ``[first_period, last_period]``.

    Only *completed* periods contribute (shed periods have partial
    stage data and no end-to-end latency).
    """
    records = [
        r
        for r in executor.records
        if r.completed
        and r.d_tracks > 0
        and r.period_index >= first_period
        and (last_period is None or r.period_index <= last_period)
    ]
    if not records:
        raise ConfigurationError(
            "no completed periods in the requested range"
        )
    task = executor.task
    stages: list[StageBreakdown] = []
    for subtask in task.subtasks:
        exec_values: list[float] = []
        message_values: list[float] = []
        replica_values: list[float] = []
        for record in records:
            stage = record.stage(subtask.index)
            if stage is None or stage.exec_latency is None:
                continue
            exec_values.append(stage.exec_latency)
            message_values.append(stage.message_in_delay)
            replica_values.append(stage.replica_count)
        stages.append(
            StageBreakdown(
                subtask_index=subtask.index,
                subtask_name=subtask.name,
                periods_observed=len(exec_values),
                mean_exec_s=float(np.mean(exec_values)) if exec_values else 0.0,
                mean_message_in_s=(
                    float(np.mean(message_values)) if message_values else 0.0
                ),
                mean_replicas=(
                    float(np.mean(replica_values)) if replica_values else 0.0
                ),
            )
        )
    return LatencyBreakdown(
        stages=tuple(stages),
        mean_end_to_end_s=float(np.mean([r.latency for r in records])),
        periods_completed=len(records),
    )
