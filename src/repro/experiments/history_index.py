"""One shared indexed pass over a run's history.

``summarize``-style consumers — CSV export, timeline extraction,
forecast calibration, the §5.2 metrics — each used to iterate all of
``manager.history`` (and the executor's period records) independently,
so a single reporting pipeline rescanned the same run three or four
times.  :class:`RunHistoryIndex` folds every derived view into **one
cursor-based incremental pass**: :meth:`update` ingests only the events
appended since the last call, and every consumer reads the accumulated
views.  All views are value-identical (bit-identical floats, same row
order) to the full rescans they replace; ``tests/experiments/
test_history_index.py`` pins that equivalence.

The index also maintains a running **decision digest** — a SHA-256 over
the canonical decision sequence (time, policy, outcomes, shutdowns,
recoveries per step) — which is how the vectorized-engine and sharded-
campaign equivalence gates compare runs without shipping whole
histories across processes.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import AdaptiveResourceManager
    from repro.runtime.executor import PeriodicTaskExecutor
    from repro.runtime.records import PeriodRecord


def decision_event_key(event: Any) -> tuple:
    """The canonical (hashable, repr-stable) form of one RM step."""
    return (
        event.time,
        event.policy_name,
        event.total_replicas,
        tuple(
            (o.subtask_index, o.success, o.added_processors, o.forecast_latency)
            for o in event.outcomes
        ),
        event.shutdowns,
        event.recoveries,
    )


class RunHistoryIndex:
    """Incremental accumulators over one run's histories.

    Parameters
    ----------
    executor / manager:
        The run's executor and resource manager.  Their histories are
        append-only; :meth:`update` advances a cursor over each and
        folds the new entries into every view at once.
    """

    def __init__(
        self,
        executor: "PeriodicTaskExecutor",
        manager: "AdaptiveResourceManager",
    ) -> None:
        self.executor = executor
        self.manager = manager
        # -- manager.history accumulators (cursor: _n_events) --
        self._n_events = 0
        self._action_rows: list[tuple] = []
        self._sample_times: list[float] = []
        self._sample_counts: list[int] = []
        self._count_prefix: list[int] = [0]  # prefix sums of _sample_counts
        self._timeline_samples: list[tuple[float, int, bool]] = []
        self._forecast_decisions: list[tuple[float, int, int, float]] = []
        self._actions = 0
        self._digest = hashlib.sha256()
        # -- executor.records accumulators (cursor: _n_records) --
        self._n_records = 0
        self._by_period: dict[int, "PeriodRecord"] = {}
        self._counts_key: tuple[int, int, float] | None = None
        self._counts: tuple[int, int, int] = (0, 0, 0)

    # -- ingestion ----------------------------------------------------------

    def update(self) -> "RunHistoryIndex":
        """Fold history/records appended since the last call; returns self."""
        history = self.manager.history
        for event in history[self._n_events :]:
            self._digest.update(repr(decision_event_key(event)).encode())
            self._sample_times.append(event.time)
            self._sample_counts.append(event.total_replicas)
            self._count_prefix.append(
                self._count_prefix[-1] + event.total_replicas
            )
            self._timeline_samples.append(
                (event.time, event.total_replicas, event.acted)
            )
            if event.acted:
                self._actions += 1
            for outcome in event.outcomes:
                if outcome.changed:
                    self._action_rows.append(
                        (
                            event.time,
                            "replicate",
                            outcome.subtask_index,
                            "+".join(outcome.added_processors),
                            event.total_replicas,
                        )
                    )
                if outcome.forecast_latency is not None and outcome.changed:
                    self._forecast_decisions.append(
                        (
                            event.time,
                            outcome.subtask_index,
                            len(event.placement[outcome.subtask_index]),
                            outcome.forecast_latency,
                        )
                    )
            for subtask_index, processor in event.shutdowns:
                self._action_rows.append(
                    (
                        event.time,
                        "shutdown",
                        subtask_index,
                        processor,
                        event.total_replicas,
                    )
                )
            for subtask_index, dead, target in event.recoveries:
                self._action_rows.append(
                    (
                        event.time,
                        "recovery",
                        subtask_index,
                        f"{dead}->{target or 'evicted'}",
                        event.total_replicas,
                    )
                )
        self._n_events = len(history)
        records = self.executor.records
        for record in records[self._n_records :]:
            self._by_period[record.period_index] = record
        self._n_records = len(records)
        return self

    # -- manager-side views --------------------------------------------------

    @property
    def decision_digest(self) -> str:
        """SHA-256 over the decision sequence ingested so far."""
        return self._digest.copy().hexdigest()

    def action_rows(self) -> list[tuple]:
        """CSV-ready decision rows (same order as the legacy rescan)."""
        return list(self._action_rows)

    def replica_samples(self) -> list[tuple[float, int]]:
        """``(time, total replicas)`` per step — mirrors the manager's view."""
        return list(zip(self._sample_times, self._sample_counts))

    def windowed_replica_mean(
        self, t_start: float, t_end: float
    ) -> float | None:
        """Mean replica count over steps with ``t_start <= time < t_end``.

        Served from prefix sums in O(log n); ``None`` when no step falls
        inside the window.  Identical to ``sum(counts)/len(counts)``
        over the filtered samples (integer prefix sums are exact).
        """
        lo = bisect_left(self._sample_times, t_start)
        hi = bisect_left(self._sample_times, t_end)
        if hi <= lo:
            return None
        return (self._count_prefix[hi] - self._count_prefix[lo]) / (hi - lo)

    def actions_taken(self) -> int:
        """Number of steps that changed the placement."""
        return self._actions

    def timeline_samples(self) -> list[tuple[float, int, bool]]:
        """``(time, total replicas, acted)`` per step, for timelines."""
        return list(self._timeline_samples)

    def forecast_decisions(self) -> list[tuple[float, int, int, float]]:
        """``(time, subtask, replica count, forecast_s)`` per replication."""
        return list(self._forecast_decisions)

    # -- executor-side views -------------------------------------------------

    def record_of_period(self, period_index: int) -> "PeriodRecord | None":
        """The period's record, or ``None`` if never released."""
        return self._by_period.get(period_index)

    def period_counts(self, t_end: float) -> tuple[int, int, int]:
        """``(released, missed, aborted)`` over releases before ``t_end``.

        Period records settle in place (completion/abort mutates them
        after release), so these counts are derived — not purely
        accumulated — but computed at most once per settlement state:
        the cached value is keyed on (record count, in-flight count,
        ``t_end``) and every consumer of a finished run shares one scan.
        """
        key = (self._n_records, self.executor.in_flight_count, t_end)
        if key == self._counts_key:
            return self._counts
        records = self.executor.records
        release_times = [r.release_time for r in records]
        # Releases are chronological, so the strict `release_time <
        # t_end` window is a prefix.
        window = records[: bisect_left(release_times, t_end)]
        released = len(window)
        missed = sum(
            1 for r in window if r.missed or (not r.completed and not r.aborted)
        )
        aborted = sum(1 for r in window if r.aborted)
        self._counts_key = key
        self._counts = (released, missed, aborted)
        return self._counts
