"""Multi-task deployments (paper §3: ``T = {T1, T2, T3, ...}``).

The paper's evaluation uses a single periodic task (Table 1), but its
model — and crucially eq. 5's buffer-delay term, which sums
``ds(T_i, c)`` **over all tasks** — is defined for a set.  This module
runs several benchmark tasks side by side on one system:

* each task gets its own executor, replica map and resource manager
  (decentralized management, as the paper's supervisory architecture
  prescribes);
* all share the processors and the Ethernet segment, so they contend
  for real;
* a :class:`WorkloadLedger` feeds every manager the *total* periodic
  workload, which drives both eq. 5 forecasts and the buffer delays
  the network actually produces.

Metrics aggregate across tasks (misses over all released periods,
replicas summed, ``Max(R) = m x total replicable subtasks``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import System, build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import ExperimentMetrics
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.runner import _make_policy
from repro.regression.estimator import TimingEstimator
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import make_pattern


class WorkloadLedger:
    """Tracks each task's current periodic workload; answers the total.

    Executors publish ``ds(T_i, c)`` as they release periods; managers
    read :meth:`total` when forecasting eq. 5's buffer term.
    """

    def __init__(self) -> None:
        self._current: dict[str, float] = {}

    def publish(self, task_name: str, d_tracks: float) -> None:
        """Record task ``task_name``'s current period workload."""
        self._current[task_name] = float(d_tracks)

    def total(self) -> float:
        """``sum_i ds(T_i, c)`` over all registered tasks."""
        return sum(self._current.values())

    def of(self, task_name: str) -> float:
        """One task's current workload (0 before its first release)."""
        return self._current.get(task_name, 0.0)


@dataclass(frozen=True)
class MultiTaskResult:
    """Aggregated outcome of a multi-task experiment."""

    per_task_metrics: dict[str, ExperimentMetrics]
    aggregate: ExperimentMetrics
    n_tasks: int


def _ledgered_workload(pattern, ledger: WorkloadLedger, task_name: str):
    """Wrap a pattern so each release is published to the ledger."""

    def workload(period_index: int) -> float:
        d = pattern(period_index)
        ledger.publish(task_name, d)
        return d

    return workload


def run_multi_task_experiment(
    config: ExperimentConfig,
    n_tasks: int = 2,
    estimator: TimingEstimator | None = None,
    phase_shift_periods: int = 7,
) -> MultiTaskResult:
    """Run ``n_tasks`` copies of the benchmark task on one system.

    Each task runs the configured workload pattern, phase-shifted by
    ``phase_shift_periods`` per task so the peaks do not align exactly;
    the *combined* load is what the machine must absorb.

    Parameters mirror :func:`repro.experiments.runner.run_experiment`;
    the policy applies to every task's manager.
    """
    if n_tasks < 1:
        raise ConfigurationError(f"need at least one task, got {n_tasks}")
    baseline = config.baseline
    if estimator is None:
        estimator = get_estimator(baseline)

    system: System = build_system(
        n_processors=baseline.n_nodes,
        bandwidth_bps=baseline.bandwidth_bps,
        discipline=baseline.discipline,
        quantum=baseline.quantum,
        utilization_window=baseline.utilization_window,
        message_overhead_bytes=baseline.message_overhead_bytes,
        network_mode=baseline.network_mode,
        message_loss_probability=baseline.message_loss_probability,
        speed_factors=baseline.speed_factors,
        seed=baseline.seed,
    )
    ledger = WorkloadLedger()
    names = [p.name for p in system.processors]

    executors: list[PeriodicTaskExecutor] = []
    managers: list[AdaptiveResourceManager] = []
    for t in range(n_tasks):
        task = aaw_task(
            period=baseline.period,
            deadline=baseline.deadline,
            noise_sigma=baseline.noise_sigma,
        )
        # Rename so records/ledger entries are distinguishable.
        task = task.__class__(
            name=f"{task.name}{t + 1}",
            period=task.period,
            deadline=task.deadline,
            subtasks=task.subtasks,
            messages=task.messages,
        )
        # Stagger initial placements so originals spread over the machine.
        rotated = names[t % len(names):] + names[: t % len(names)]
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, rotated)
        )
        base_pattern = make_pattern(
            config.pattern,
            min_tracks=config.min_tracks,
            max_tracks=config.max_tracks,
            n_periods=baseline.n_periods,
        )
        shift = t * phase_shift_periods

        def shifted(period_index: int, _p=base_pattern, _s=shift) -> float:
            return _p((period_index + _s) % max(baseline.n_periods, 1))

        executor = PeriodicTaskExecutor(
            system,
            task,
            assignment,
            workload=_ledgered_workload(shifted, ledger, task.name),
            config=ExecutorConfig(
                drop_factor=baseline.drop_factor,
                noise_stream=f"exec-noise-{t}",
            ),
        )
        manager = AdaptiveResourceManager(
            system,
            executor,
            estimator.__class__(
                task=task,
                latency_models=estimator.latency_models,
                comm_model=estimator.comm_model,
            ),
            policy=_make_policy(config),
            config=RMConfig(
                slack_fraction=baseline.slack_fraction,
                shutdown_slack_fraction=baseline.shutdown_slack_fraction,
                monitor_window=baseline.monitor_window,
                deadline_strategy=baseline.deadline_strategy,
                initial_d_tracks=config.min_tracks,
            ),
            total_workload_fn=ledger.total,
        )
        executors.append(executor)
        managers.append(manager)

    horizon = baseline.n_periods * baseline.period
    for manager in managers:
        manager.start(baseline.n_periods)
    for executor in executors:
        executor.start(baseline.n_periods)
    system.engine.run_until(horizon + (baseline.drop_factor + 1.0) * baseline.period)

    # -- aggregate metrics ---------------------------------------------------------
    span = horizon
    per_task: dict[str, ExperimentMetrics] = {}
    total_released = total_missed = total_aborted = total_actions = 0
    replica_sum = 0.0
    n_replicable_total = 0
    cpu = sum(
        p.meter.busy_between(0.0, horizon) / span for p in system.processors
    ) / len(system.processors)
    net = system.network.meter.busy_between(0.0, horizon) / span

    for executor, manager in zip(executors, managers):
        records = [r for r in executor.records if r.release_time < horizon]
        released = len(records)
        missed = sum(
            1 for r in records if r.missed or (not r.completed and not r.aborted)
        )
        aborted = sum(1 for r in records if r.aborted)
        samples = [c for _, c in manager.replica_samples()]
        avg_replicas = (
            sum(samples) / len(samples)
            if samples
            else float(executor.assignment.total_replicas())
        )
        n_replicable = len(executor.task.replicable_indices())
        per_task[executor.task.name] = ExperimentMetrics(
            missed_deadline_ratio=missed / released if released else 0.0,
            avg_cpu_utilization=cpu,
            avg_network_utilization=net,
            avg_replicas=avg_replicas,
            max_replicas=system.size * n_replicable,
            periods_released=released,
            periods_missed=missed,
            periods_aborted=aborted,
            rm_actions=manager.actions_taken(),
        )
        total_released += released
        total_missed += missed
        total_aborted += aborted
        total_actions += manager.actions_taken()
        replica_sum += avg_replicas
        n_replicable_total += n_replicable

    aggregate = ExperimentMetrics(
        missed_deadline_ratio=(
            total_missed / total_released if total_released else 0.0
        ),
        avg_cpu_utilization=cpu,
        avg_network_utilization=net,
        avg_replicas=replica_sum,
        max_replicas=system.size * n_replicable_total,
        periods_released=total_released,
        periods_missed=total_missed,
        periods_aborted=total_aborted,
        rm_actions=total_actions,
    )
    return MultiTaskResult(
        per_task_metrics=per_task, aggregate=aggregate, n_tasks=n_tasks
    )
