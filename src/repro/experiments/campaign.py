"""Experiment campaigns: a policy × pattern × workload × seed grid.

A :class:`CampaignSpec` names a whole study — every
:class:`~repro.experiments.config.ExperimentConfig` in the cross
product of its axes, replicated under ``n_seeds`` seed offsets — and
:func:`run_campaign` executes it in one shot, serially or across the
:mod:`repro.parallel` process pool, with progress reporting and
per-job wall-clock/peak-RSS accounting.

The grid is enumerated in a fixed order (policy, then pattern, then
workload, then seed offset) and results keep that order, so a campaign
is reproducible row-for-row regardless of ``n_jobs``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import (
    DEFAULT_SWEEP_UNITS,
    BaselineConfig,
    ExperimentConfig,
)
from repro.experiments.export import SCHEMA_VERSION
from repro.experiments.metrics import ExperimentMetrics
from repro.experiments.replication import MetricSummary, summarize
from repro.experiments.report import format_table
from repro.telemetry.rollup import CampaignRollup
from repro.telemetry.slo import SloRule

#: Progress sink: receives one human-readable line per finished job.
Progress = Callable[[str], None]


@dataclass(frozen=True)
class CampaignSpec:
    """The axes of one campaign grid.

    ``scenarios`` and ``hardened`` extend the grid with the chaos axes:
    every cell is replicated per named fault scenario (``None`` =
    fault-free) and per hardening setting.  The defaults keep both axes
    trivial, so pre-chaos campaigns enumerate — and tag — identically.

    ``engine`` selects the simulation core for every run in the grid
    (``"scalar"`` or ``"vectorized"``); both produce bit-identical
    decision sequences, so it is a speed knob, not a grid axis.

    ``slo`` arms every cell with the given
    :class:`~repro.telemetry.slo.SloRule` tuple; each row then carries
    its SLO verdict and the campaign rollup aggregates pass/fail counts.
    """

    policies: tuple[str, ...] = ("predictive", "nonpredictive")
    patterns: tuple[str, ...] = ("triangular",)
    units: tuple[float, ...] = DEFAULT_SWEEP_UNITS
    n_seeds: int = 1
    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    repetitions: int = 2
    scenarios: tuple[str | None, ...] = (None,)
    hardened: tuple[bool, ...] = (False,)
    engine: str = "scalar"
    slo: "tuple[SloRule, ...] | None" = None

    def __post_init__(self) -> None:
        if not self.policies or not self.patterns or not self.units:
            raise ConfigurationError("campaign axes must be non-empty")
        if not self.scenarios or not self.hardened:
            raise ConfigurationError("campaign axes must be non-empty")
        if self.n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {self.n_seeds}")
        if self.engine not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f"engine must be 'scalar' or 'vectorized', got {self.engine!r}"
            )

    @property
    def n_runs(self) -> int:
        """Total experiment runs in the grid."""
        return (
            len(self.policies)
            * len(self.patterns)
            * len(self.units)
            * len(self.scenarios)
            * len(self.hardened)
            * self.n_seeds
        )

    def enumerate(self) -> list[tuple[ExperimentConfig, int, str]]:
        """The grid in canonical order: ``(config, seed_offset, tag)``."""
        cells = []
        for policy in self.policies:
            for pattern in self.patterns:
                for units in self.units:
                    for scenario in self.scenarios:
                        for hard in self.hardened:
                            config = ExperimentConfig(
                                policy=policy,
                                pattern=pattern,
                                max_workload_units=units,
                                baseline=self.baseline,
                                chaos_scenario=scenario,
                                hardened=hard,
                                engine=self.engine,
                                slo=self.slo,
                            )
                            tag = f"{policy}/{pattern}/u{units:g}"
                            if scenario is not None:
                                tag += f"/{scenario}"
                            if hard:
                                tag += "/hardened"
                            for offset in range(self.n_seeds):
                                cells.append((config, offset, f"{tag}/s{offset}"))
        return cells


@dataclass(frozen=True)
class CampaignRow:
    """One finished grid cell with its execution accounting."""

    policy: str
    pattern: str
    max_workload_units: float
    seed_offset: int
    metrics: ExperimentMetrics
    wall_clock_s: float
    max_rss_kb: int
    pid: int
    chaos_scenario: str | None = None
    hardened: bool = False
    decision_digest: str = ""
    #: The cell's stable grid tag (``policy/pattern/u<units>/.../s<k>``).
    tag: str = ""
    #: ``SloReport.as_dict()`` when the campaign armed SLO rules.
    slo: dict | None = None

    def as_dict(self) -> dict:
        """JSON-friendly representation (used by ``write_json``)."""
        return {
            "policy": self.policy,
            "pattern": self.pattern,
            "max_workload_units": self.max_workload_units,
            "seed_offset": self.seed_offset,
            "chaos_scenario": self.chaos_scenario,
            "hardened": self.hardened,
            "tag": self.tag,
            "metrics": self.metrics.as_dict(),
            "slo": self.slo,
            "decision_digest": self.decision_digest,
            "wall_clock_s": self.wall_clock_s,
            "max_rss_kb": self.max_rss_kb,
            "pid": self.pid,
        }

    def deterministic_dict(self) -> dict:
        """:meth:`as_dict` minus host-side accounting.

        Everything left is a pure function of the run's configuration
        and seed — wall clock, peak RSS and worker PID vary between
        hosts and dispatch modes, so they are excluded.  Serializing
        these dicts is how the sharded-vs-serial equality gate compares
        whole campaigns byte for byte.
        """
        row = self.as_dict()
        for key in ("wall_clock_s", "max_rss_kb", "pid"):
            del row[key]
        return row


@dataclass(frozen=True)
class CampaignFailure:
    """One grid cell that produced no row (crash-tolerant mode)."""

    index: int
    tag: str
    error: str
    attempts: int

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "index": self.index,
            "tag": self.tag,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class CampaignResult:
    """Every row of a finished campaign plus run-level accounting."""

    spec: CampaignSpec
    rows: tuple[CampaignRow, ...]
    n_jobs: int
    elapsed_s: float
    #: Cells that died unrecoverably (``retries`` mode); empty on the
    #: historical any-failure-aborts path.
    failed: tuple[CampaignFailure, ...] = ()

    def deterministic_json(self) -> str:
        """Canonical JSON of every row's deterministic content.

        Byte-identical across serial, pooled and sharded execution of
        the same spec and seeds (the sharded-campaign equality gate
        compares exactly this string).
        """
        return json.dumps(
            [row.deterministic_dict() for row in self.rows],
            indent=2,
            sort_keys=True,
        )

    def series(
        self,
        policy: str,
        pattern: str,
        metric: str,
        scenario: "str | None | type[Ellipsis]" = Ellipsis,
        hardened: "bool | type[Ellipsis]" = Ellipsis,
    ) -> dict[float, MetricSummary]:
        """Per-workload summaries of one metric along one (policy, pattern).

        ``scenario``/``hardened`` filter along the chaos axes;
        the ``Ellipsis`` default aggregates over them (which, on a
        campaign without chaos axes, is the pre-chaos behavior).
        """
        by_units: dict[float, list[float]] = {}
        for row in self.rows:
            if row.policy != policy or row.pattern != pattern:
                continue
            if scenario is not Ellipsis and row.chaos_scenario != scenario:
                continue
            if hardened is not Ellipsis and row.hardened != hardened:
                continue
            by_units.setdefault(row.max_workload_units, []).append(
                row.metrics.as_dict()[metric]
            )
        if not by_units:
            raise ConfigurationError(
                f"no campaign rows for policy={policy!r}, pattern={pattern!r}"
            )
        return {
            units: summarize(metric, values)
            for units, values in sorted(by_units.items())
        }

    def render(self, metric: str = "combined") -> str:
        """A compact per-cell table of one metric (mean over seeds)."""
        chaos_axes = self.spec.scenarios != (None,) or self.spec.hardened != (
            False,
        )
        rows: list[list] = []
        for policy in self.spec.policies:
            for pattern in self.spec.patterns:
                if not chaos_axes:
                    for units, summary in self.series(
                        policy, pattern, metric
                    ).items():
                        rows.append(
                            [policy, pattern, units, summary.mean, summary.std]
                        )
                    continue
                for scenario in self.spec.scenarios:
                    for hard in self.spec.hardened:
                        for units, summary in self.series(
                            policy,
                            pattern,
                            metric,
                            scenario=scenario,
                            hardened=hard,
                        ).items():
                            rows.append(
                                [
                                    policy,
                                    pattern,
                                    scenario if scenario is not None else "-",
                                    "yes" if hard else "no",
                                    units,
                                    summary.mean,
                                    summary.std,
                                ]
                            )
        headers = (
            ["policy", "pattern", "scenario", "hardened", "max units"]
            if chaos_axes
            else ["policy", "pattern", "max units"]
        )
        return format_table(
            headers + [f"{metric} mean", "sd"],
            rows,
            title=f"campaign: {self.spec.n_runs} runs, "
            f"{self.n_jobs} worker(s), {self.elapsed_s:.1f} s",
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation of the whole campaign."""
        return {
            "schema_version": SCHEMA_VERSION,
            "policies": list(self.spec.policies),
            "patterns": list(self.spec.patterns),
            "units": list(self.spec.units),
            "scenarios": list(self.spec.scenarios),
            "hardened": list(self.spec.hardened),
            "n_seeds": self.spec.n_seeds,
            "n_runs": self.spec.n_runs,
            "n_jobs": self.n_jobs,
            "elapsed_s": self.elapsed_s,
            "total_job_wall_clock_s": sum(r.wall_clock_s for r in self.rows),
            "max_rss_kb": max((r.max_rss_kb for r in self.rows), default=0),
            "rows": [row.as_dict() for row in self.rows],
            "failed": [failure.as_dict() for failure in self.failed],
        }

    def write_json(self, path: str | Path) -> Path:
        """Persist :meth:`to_dict` as pretty-printed JSON (atomically)."""
        from repro.experiments.export import atomic_write_json

        return atomic_write_json(Path(path), self.to_dict())


def _row_from_job(job_result) -> CampaignRow:
    """Fold one :class:`~repro.parallel.jobs.JobResult` into a row."""
    return CampaignRow(
        policy=job_result.spec.config.policy,
        pattern=job_result.spec.config.pattern,
        max_workload_units=job_result.spec.config.max_workload_units,
        seed_offset=job_result.spec.seed_offset,
        metrics=job_result.metrics,
        wall_clock_s=job_result.wall_clock_s,
        max_rss_kb=job_result.max_rss_kb,
        pid=job_result.pid,
        chaos_scenario=job_result.spec.config.chaos_scenario,
        hardened=job_result.spec.config.hardened,
        decision_digest=job_result.decision_digest,
        tag=job_result.spec.tag,
        slo=job_result.slo,
    )


def run_campaign(
    spec: CampaignSpec,
    n_jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: Progress | None = None,
    shards: int = 0,
    journal: str | Path | None = None,
    resume: bool = False,
    retries: int = 0,
) -> CampaignResult:
    """Execute every cell of the grid; results keep enumeration order.

    ``n_jobs=1`` runs in-process (same code path as single experiments);
    larger values fan out over :func:`repro.parallel.map_jobs` after the
    parent warms the estimator cache once.  ``progress`` (e.g. ``print``)
    receives one line per finished run, in completion order.

    ``shards >= 1`` dispatches via :func:`repro.parallel.run_sharded`
    instead: the grid splits round-robin into that many groups, each
    executed serially inside one worker process (overrides ``n_jobs``).
    Deterministic row content is byte-identical either way —
    :meth:`CampaignResult.deterministic_json` pins it.

    Crash tolerance (:mod:`repro.experiments.journal`): with ``journal``
    set, every completed cell is durably appended to that JSONL file as
    it finishes; ``resume=True`` reloads a prior journal for the same
    spec, re-runs only the missing cells, and merges —
    ``deterministic_json()`` of the merged result is byte-identical to
    an uninterrupted campaign.  ``retries > 0`` additionally survives
    dying worker *processes* (bounded resubmission; unrecoverable cells
    land in :attr:`CampaignResult.failed` instead of aborting).
    """
    from repro.experiments.journal import CampaignJournal
    from repro.parallel import JobFailure, effective_n_jobs, run_configs_parallel

    if resume and journal is None:
        raise ConfigurationError("resume=True requires a journal path")
    n_jobs = effective_n_jobs(n_jobs)
    cells = spec.enumerate()
    done: dict[int, CampaignRow] = {}
    journal_obj: CampaignJournal | None = None
    if journal is not None:
        journal_obj = CampaignJournal(journal)
        if resume and journal_obj.exists():
            done = journal_obj.load(spec)
            # Rewrite cleanly before appending: a torn tail from the
            # crash would otherwise corrupt the first new row line.
            journal_obj.compact(spec, n_cells=len(cells), rows=done)
            if progress is not None and done:
                progress(
                    f"resuming: {len(done)}/{len(cells)} cells already "
                    f"journaled in {journal_obj.path}"
                )
        else:
            journal_obj.start(spec, n_cells=len(cells))
    pending = [i for i in range(len(cells)) if i not in done]
    configs = [cells[i][0] for i in pending]
    offsets = [cells[i][1] for i in pending]
    tags = [cells[i][2] for i in pending]

    def on_result(index: int, total: int, job_result) -> None:
        if journal_obj is not None:
            journal_obj.append_row(pending[index], _row_from_job(job_result))
        if progress is None:
            return
        progress(
            f"[{index + 1:>{len(str(total))}}/{total}] "
            f"{job_result.spec.tag}: combined={job_result.metrics.combined:.3f} "
            f"({job_result.wall_clock_s:.2f} s, {job_result.max_rss_kb} KiB, "
            f"pid {job_result.pid})"
        )

    start = time.perf_counter()
    job_results = (
        run_configs_parallel(
            configs,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            seed_offsets=offsets,
            repetitions=spec.repetitions,
            tags=tags,
            on_result=on_result,
            shards=shards,
            retries=retries,
        )
        if pending
        else []
    )
    elapsed = time.perf_counter() - start
    rows_by_cell = dict(done)
    failures: list[CampaignFailure] = []
    for job_index, job_result in enumerate(job_results):
        cell_index = pending[job_index]
        if isinstance(job_result, JobFailure):
            failure = CampaignFailure(
                index=cell_index,
                tag=tags[job_index],
                error=job_result.error,
                attempts=job_result.attempts,
            )
            failures.append(failure)
            if journal_obj is not None:
                journal_obj.append_failure(
                    cell_index, failure.tag, failure.error, failure.attempts
                )
            continue
        rows_by_cell[cell_index] = _row_from_job(job_result)
    rows = tuple(
        rows_by_cell[i] for i in range(len(cells)) if i in rows_by_cell
    )
    return CampaignResult(
        spec=spec,
        rows=rows,
        n_jobs=n_jobs,
        elapsed_s=elapsed,
        failed=tuple(failures),
    )


def rollup_campaign(result: CampaignResult) -> CampaignRollup:
    """Fold a finished campaign into a :class:`CampaignRollup`.

    One rollup entry per row, keyed by the cell tag.  Building the
    rollup from a sharded and a serial run of the same spec produces
    byte-identical :meth:`~CampaignRollup.to_json` output — the rollup
    half of the sharded-equality gate.
    """
    rollup = CampaignRollup()
    for row in result.rows:
        rollup.add_run(
            row.tag,
            metrics=row.metrics.as_dict(),
            slo=row.slo,
            decision_digest=row.decision_digest,
        )
    return rollup
