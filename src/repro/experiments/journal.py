"""Crash-tolerant campaign journal.

One JSONL file per campaign run: a header line binding the journal to
its :class:`~repro.experiments.campaign.CampaignSpec` (by fingerprint),
then one line per finished grid cell, appended — flushed and fsynced —
the moment the cell completes.  A campaign killed at any point leaves a
valid journal: ``repro campaign --resume`` reloads the completed rows,
re-runs only the missing cells, and merges to a
:class:`~repro.experiments.campaign.CampaignResult` whose
``deterministic_json()`` is byte-identical to an uninterrupted run
(rows are pure functions of config and seed, so where they were
computed — and across how many crashes — cannot show).

Row lines carry *every* :class:`~repro.experiments.metrics.ExperimentMetrics`
dataclass field (not the derived ``as_dict`` view), so reloaded rows
reconstruct the exact frozen metrics object; floats survive the JSON
round trip exactly (``repr``-based serialization).  A torn final line
(crash mid-append) is tolerated on load, like
:func:`repro.telemetry.sinks.read_jsonl`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.experiments.metrics import ExperimentMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.campaign import CampaignRow, CampaignSpec

#: Journal layout version.  History: v1 — header + row/failed lines.
JOURNAL_SCHEMA_VERSION = 1


def spec_fingerprint(spec: "CampaignSpec") -> str:
    """A stable digest of the full campaign grid definition.

    Dataclass ``repr`` is deterministic field-by-field (baselines,
    chaos axes, SLO rules included), so two specs fingerprint equal iff
    they enumerate identical grids.
    """
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()


def _row_payload(row: "CampaignRow") -> dict[str, Any]:
    payload = row.as_dict()
    # as_dict carries the derived metrics view; reconstruction needs
    # the dataclass fields themselves.
    payload["metrics"] = dataclasses.asdict(row.metrics)
    return payload


def _row_from_payload(payload: dict[str, Any]) -> "CampaignRow":
    from repro.experiments.campaign import CampaignRow

    return CampaignRow(
        policy=payload["policy"],
        pattern=payload["pattern"],
        max_workload_units=payload["max_workload_units"],
        seed_offset=payload["seed_offset"],
        metrics=ExperimentMetrics(**payload["metrics"]),
        wall_clock_s=payload["wall_clock_s"],
        max_rss_kb=payload["max_rss_kb"],
        pid=payload["pid"],
        chaos_scenario=payload["chaos_scenario"],
        hardened=payload["hardened"],
        decision_digest=payload["decision_digest"],
        tag=payload["tag"],
        slo=payload["slo"],
    )


class CampaignJournal:
    """Atomic-append cell journal for one campaign run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether a journal file is present (resumable)."""
        return self.path.is_file()

    def start(self, spec: "CampaignSpec", n_cells: int) -> None:
        """Begin a fresh journal (truncates any previous one)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_line(
            {
                "kind": "header",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "fingerprint": spec_fingerprint(spec),
                "n_cells": n_cells,
            },
            mode="w",
        )

    def append_row(self, index: int, row: "CampaignRow") -> None:
        """Durably record one completed cell."""
        self._write_line(
            {"kind": "row", "index": index, "row": _row_payload(row)}
        )

    def append_failure(self, index: int, tag: str, error: str, attempts: int) -> None:
        """Durably record one unrecoverable cell."""
        self._write_line(
            {
                "kind": "failed",
                "index": index,
                "tag": tag,
                "error": error,
                "attempts": attempts,
            }
        )

    def compact(
        self, spec: "CampaignSpec", n_cells: int, rows: dict[int, "CampaignRow"]
    ) -> None:
        """Atomically rewrite the journal to header + the given rows.

        Run before resuming: drops any torn tail (which would otherwise
        corrupt the first post-resume append) and stale failure records
        for cells about to be retried.  Uses a tmp-sibling +
        ``os.replace`` so a crash mid-compaction leaves the old journal
        intact.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                records: list[dict[str, Any]] = [
                    {
                        "kind": "header",
                        "schema_version": JOURNAL_SCHEMA_VERSION,
                        "fingerprint": spec_fingerprint(spec),
                        "n_cells": n_cells,
                    }
                ]
                records.extend(
                    {"kind": "row", "index": index, "row": _row_payload(row)}
                    for index, row in sorted(rows.items())
                )
                for record in records:
                    handle.write(
                        json.dumps(record, separators=(",", ":"), sort_keys=True)
                    )
                    handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, self.path)

    def _write_line(self, record: dict[str, Any], mode: str = "a") -> None:
        # One line per write, flushed and fsynced before returning: a
        # crash between cells never loses a completed cell, and a crash
        # mid-write tears at most the final line (tolerated on load).
        with self.path.open(mode, encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self, spec: "CampaignSpec") -> dict[int, "CampaignRow"]:
        """Reload completed rows, keyed by grid-cell index.

        Verifies the header binds to ``spec`` (a journal from a
        different grid raises instead of silently merging mismatched
        cells).  Failed cells are *not* returned — a resume retries
        them.  Duplicate indices keep the last record.
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read campaign journal {self.path}: {exc}"
            ) from exc
        records: list[dict[str, Any]] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # torn tail from the crash being resumed
                raise ConfigurationError(
                    f"{self.path}:{i + 1}: malformed journal line: {exc}"
                ) from exc
        if not records or records[0].get("kind") != "header":
            raise ConfigurationError(
                f"{self.path} is not a campaign journal (missing header)"
            )
        header = records[0]
        version = header.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: journal schema version {version!r} is not "
                f"supported (expected {JOURNAL_SCHEMA_VERSION})"
            )
        expected = spec_fingerprint(spec)
        if header.get("fingerprint") != expected:
            raise ConfigurationError(
                f"{self.path} was written for a different campaign spec "
                "(fingerprint mismatch); refusing to merge its rows"
            )
        rows: dict[int, "CampaignRow"] = {}
        for record in records[1:]:
            if record.get("kind") != "row":
                continue
            rows[int(record["index"])] = _row_from_payload(record["row"])
        return rows
