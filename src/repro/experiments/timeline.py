"""Per-period time-series extraction and ASCII timeline rendering.

Aggregated metrics hide the *story* of a run — when replication kicked
in, how latency tracked the workload, where deadlines were lost.
:func:`extract_timeline` pulls an aligned per-period series from an
executor/manager pair, and :func:`render_timeline` draws it as an
ASCII strip chart for terminals, examples and bench artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.manager import AdaptiveResourceManager
from repro.errors import ConfigurationError
from repro.experiments.history_index import RunHistoryIndex
from repro.runtime.executor import PeriodicTaskExecutor
from repro.units import s_to_ms


@dataclass(frozen=True)
class Timeline:
    """Aligned per-period series of one run.

    All arrays share the index ``period``; latency is NaN for periods
    that never completed (shed by the watchdog).
    """

    periods: np.ndarray
    workload_tracks: np.ndarray
    latency_s: np.ndarray
    missed: np.ndarray
    total_replicas: np.ndarray
    rm_acted: np.ndarray

    def __len__(self) -> int:
        return int(self.periods.size)

    def miss_ratio(self) -> float:
        """Fraction of periods missed."""
        if self.periods.size == 0:
            return 0.0
        return float(self.missed.mean())

    def adaptation_periods(self) -> list[int]:
        """Period indices at which the manager changed the placement."""
        return [int(p) for p, acted in zip(self.periods, self.rm_acted) if acted]


def extract_timeline(
    executor: PeriodicTaskExecutor,
    manager: AdaptiveResourceManager,
    index: RunHistoryIndex | None = None,
) -> Timeline:
    """Build the aligned per-period series from a finished run.

    Pass the run's :class:`~repro.experiments.history_index.RunHistoryIndex`
    to reuse its accumulated per-step samples instead of rescanning
    ``manager.history``; one is built ad hoc otherwise.
    """
    if index is None:
        index = RunHistoryIndex(executor, manager)
    index.update()
    records = sorted(executor.records, key=lambda r: r.period_index)
    if not records:
        raise ConfigurationError("executor has no records; run it first")
    n = records[-1].period_index + 1
    periods = np.arange(n)
    workload = np.full(n, np.nan)
    latency = np.full(n, np.nan)
    missed = np.zeros(n, dtype=bool)
    replicas = np.full(n, np.nan)
    acted = np.zeros(n, dtype=bool)
    for record in records:
        idx = record.period_index
        workload[idx] = record.d_tracks
        if record.latency is not None:
            latency[idx] = record.latency
        missed[idx] = record.missed
    period_len = executor.task.period
    for time, total_replicas, event_acted in index.timeline_samples():
        idx = int(round(time / period_len))
        if 0 <= idx < n:
            replicas[idx] = total_replicas
            acted[idx] = acted[idx] or event_acted
    # Forward-fill replica counts between manager samples.
    last = np.nan
    for i in range(n):
        if np.isnan(replicas[i]):
            replicas[i] = last
        else:
            last = replicas[i]
    return Timeline(
        periods=periods,
        workload_tracks=workload,
        latency_s=latency,
        missed=missed,
        total_replicas=replicas,
        rm_acted=acted,
    )


_BLOCKS = " ▁▂▃▄▅▆▇█"


def _strip(values: np.ndarray, lo: float | None = None, hi: float | None = None) -> str:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    span = (hi - lo) or 1.0
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append("x")
        else:
            chars.append(_BLOCKS[int((v - lo) / span * (len(_BLOCKS) - 1))])
    return "".join(chars)


def render_timeline(timeline: Timeline, deadline_s: float | None = None) -> str:
    """ASCII strip chart: workload, latency, replicas, misses per period.

    ``x`` marks shed periods in the latency strip; ``!`` marks misses.
    """
    lines = [
        f"periods 0..{len(timeline) - 1}  "
        f"(miss ratio {timeline.miss_ratio():.2f}, "
        f"{len(timeline.adaptation_periods())} adaptation points)",
        f"workload  |{_strip(timeline.workload_tracks)}|",
        f"latency   |{_strip(timeline.latency_s, lo=0.0)}|"
        + (f"  (deadline {s_to_ms(deadline_s):.0f} ms)" if deadline_s else ""),
        f"replicas  |{_strip(timeline.total_replicas, lo=0.0)}|",
        "misses    |"
        + "".join("!" if m else "." for m in timeline.missed)
        + "|",
        "adapted   |"
        + "".join("A" if a else "." for a in timeline.rm_acted)
        + "|",
    ]
    return "\n".join(lines)
