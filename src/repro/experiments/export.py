"""CSV/JSON export of experiment artefacts.

Figures and sweeps become portable data files so downstream users can
plot them with their own tooling.  The formats are deliberately plain:
CSV with a header row for series, flat JSON for metric sets.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.experiments.metrics import ExperimentMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.figures import FigureData


def figure_to_csv(data: "FigureData", path: str | Path) -> Path:
    """Write a figure's x-axis and series as CSV (one row per x)."""
    path = Path(path)
    names = list(data.series)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([data.x_label] + names)
        for i, x in enumerate(data.x_values):
            writer.writerow([x] + [data.series[name][i] for name in names])
    return path


def figure_from_csv(path: str | Path) -> tuple[str, list[float], dict[str, list[float]]]:
    """Read back a figure CSV: ``(x_label, x_values, series)``."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigurationError(f"{path} is empty") from None
        if len(header) < 2:
            raise ConfigurationError(f"{path} has no series columns")
        x_label, names = header[0], header[1:]
        x_values: list[float] = []
        series: dict[str, list[float]] = {name: [] for name in names}
        for row in reader:
            if not row:
                continue
            x_values.append(float(row[0]))
            for name, cell in zip(names, row[1:]):
                series[name].append(float(cell))
    return x_label, x_values, series


def metrics_to_json(
    metrics: ExperimentMetrics, path: str | Path, extra: dict | None = None
) -> Path:
    """Write one experiment's metric set as a flat JSON object."""
    path = Path(path)
    payload = dict(metrics.as_dict())
    payload.update(
        {
            "periods_released": metrics.periods_released,
            "periods_missed": metrics.periods_missed,
            "periods_aborted": metrics.periods_aborted,
            "rm_actions": metrics.rm_actions,
            "max_replicas": metrics.max_replicas,
        }
    )
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def metrics_from_json(path: str | Path) -> dict:
    """Read back a metrics JSON file as a dict."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load metrics from {path}: {exc}") from exc


def rm_history_to_csv(manager, path: str | Path) -> Path:
    """Export a manager's decision log as CSV (one row per step action).

    Columns: time, kind (replicate/shutdown/recovery), subtask index,
    processors touched, total replicas after the step.  Steps that took
    no action are omitted.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time", "kind", "subtask", "processors", "total_replicas"]
        )
        for event in manager.history:
            for outcome in event.outcomes:
                if outcome.changed:
                    writer.writerow(
                        [
                            event.time,
                            "replicate",
                            outcome.subtask_index,
                            "+".join(outcome.added_processors),
                            event.total_replicas,
                        ]
                    )
            for subtask_index, processor in event.shutdowns:
                writer.writerow(
                    [
                        event.time,
                        "shutdown",
                        subtask_index,
                        processor,
                        event.total_replicas,
                    ]
                )
            for subtask_index, dead, target in event.recoveries:
                writer.writerow(
                    [
                        event.time,
                        "recovery",
                        subtask_index,
                        f"{dead}->{target or 'evicted'}",
                        event.total_replicas,
                    ]
                )
    return path
