"""CSV/JSON export of experiment artefacts.

Figures and sweeps become portable data files so downstream users can
plot them with their own tooling.  The formats are deliberately plain:
CSV with a header row for series, flat JSON for metric sets.

Every writer lands its payload *atomically* via
:func:`atomic_write_text` / :func:`atomic_write_json`: the bytes go to a
``<name>.tmp`` sibling first and ``os.replace`` swaps it into place, so
a crash mid-write (the case :mod:`repro.recovery` resumes from) leaves
either the previous complete artefact or the new one — never a
truncated file.
"""

from __future__ import annotations

import csv
import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.experiments.metrics import ExperimentMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.figures import FigureData
    from repro.experiments.history_index import RunHistoryIndex

#: Version stamped into every JSON payload written by ``repro run
#: --json`` (:func:`metrics_to_json`) and campaign exports
#: (:meth:`repro.experiments.campaign.CampaignResult.write_json`).
#: History: v1 (unversioned) — flat metric dict; v2 — identical fields
#: plus this stamp.  Loaders accept v1 with a warning.
SCHEMA_VERSION = 2


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp sibling + rename).

    Parent directories are created.  The temporary file lives next to
    the target (same filesystem, so ``os.replace`` is atomic) and is
    removed if the write fails.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8", newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


def atomic_write_json(path: str | Path, payload: object, **dumps_kwargs) -> Path:
    """Serialize ``payload`` as JSON and land it atomically.

    ``dumps_kwargs`` pass through to :func:`json.dumps`; the default
    style matches the repository's artefacts (two-space indent, sorted
    keys, trailing newline).
    """
    dumps_kwargs.setdefault("indent", 2)
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(payload, **dumps_kwargs) + "\n")


def figure_to_csv(data: "FigureData", path: str | Path) -> Path:
    """Write a figure's x-axis and series as CSV (one row per x)."""
    import io

    names = list(data.series)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([data.x_label] + names)
    for i, x in enumerate(data.x_values):
        writer.writerow([x] + [data.series[name][i] for name in names])
    return atomic_write_text(path, buffer.getvalue())


def figure_from_csv(path: str | Path) -> tuple[str, list[float], dict[str, list[float]]]:
    """Read back a figure CSV: ``(x_label, x_values, series)``."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigurationError(f"{path} is empty") from None
        if len(header) < 2:
            raise ConfigurationError(f"{path} has no series columns")
        x_label, names = header[0], header[1:]
        x_values: list[float] = []
        series: dict[str, list[float]] = {name: [] for name in names}
        for row in reader:
            if not row:
                continue
            x_values.append(float(row[0]))
            for name, cell in zip(names, row[1:]):
                series[name].append(float(cell))
    return x_label, x_values, series


def metrics_to_json(
    metrics: ExperimentMetrics, path: str | Path, extra: dict | None = None
) -> Path:
    """Write one experiment's metric set as a flat JSON object."""
    path = Path(path)
    payload = dict(metrics.as_dict())
    payload.update(
        {
            "periods_released": metrics.periods_released,
            "periods_missed": metrics.periods_missed,
            "periods_aborted": metrics.periods_aborted,
            "rm_actions": metrics.rm_actions,
            "max_replicas": metrics.max_replicas,
        }
    )
    if extra:
        payload.update(extra)
    payload["schema_version"] = SCHEMA_VERSION
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def metrics_from_json(path: str | Path) -> dict:
    """Read back a metrics JSON file as a dict.

    Payloads without a ``schema_version`` stamp (written before v2)
    load fine but emit a warning; payloads stamped *newer* than this
    library understands are rejected.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load metrics from {path}: {exc}") from exc
    check_schema_version(payload, origin=str(path))
    return payload


def check_schema_version(payload: dict, origin: str = "<payload>") -> int:
    """Validate a payload's ``schema_version``; returns the version.

    Missing stamp → version 1 with a :class:`UserWarning`; a stamp
    newer than :data:`SCHEMA_VERSION` raises
    :class:`~repro.errors.ConfigurationError`.
    """
    version = payload.get("schema_version")
    if version is None:
        warnings.warn(
            f"{origin} has no schema_version (pre-v2 export); "
            "interpreting as schema version 1",
            UserWarning,
            stacklevel=3,
        )
        return 1
    if not isinstance(version, int) or version < 1:
        raise ConfigurationError(
            f"{origin}: schema_version must be a positive integer, "
            f"got {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ConfigurationError(
            f"{origin}: schema version {version} is newer than this "
            f"library understands (max {SCHEMA_VERSION})"
        )
    return version


def rm_history_to_csv(
    manager, path: str | Path, index: "RunHistoryIndex | None" = None
) -> Path:
    """Export a manager's decision log as CSV (one row per step action).

    Columns: time, kind (replicate/shutdown/recovery), subtask index,
    processors touched, total replicas after the step.  Steps that took
    no action are omitted.  Pass the run's
    :class:`~repro.experiments.history_index.RunHistoryIndex` to reuse
    its already-accumulated rows instead of rescanning the history; one
    is built ad hoc otherwise.
    """
    if index is None:
        from repro.experiments.history_index import RunHistoryIndex

        index = RunHistoryIndex(manager.executor, manager)
    index.update()
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", "kind", "subtask", "processors", "total_replicas"])
    writer.writerows(index.action_rows())
    return atomic_write_text(path, buffer.getvalue())
