"""Programmatic paper-claims validation.

:func:`validate_reproduction` runs a (reduced, configurable) version of
the §5 study and checks each qualitative claim of the paper against the
measured series, returning structured :class:`ClaimCheck` results.  It
backs the `repro validate` CLI command, a bench, and EXPERIMENTS.md's
summary table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import BaselineConfig
from repro.experiments.report import format_table
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.runner import sweep_workloads
from repro.regression.estimator import TimingEstimator


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim and its measured verdict."""

    claim: str
    passed: bool
    detail: str


def _series(results, key: str) -> list[float]:
    return [r.metrics.as_dict()[key] for r in results]


def validate_reproduction(
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
    units: tuple[float, ...] = (1.0, 10.0, 20.0, 30.0),
) -> list[ClaimCheck]:
    """Run the triangular-pattern study and check the paper's claims.

    Uses the triangular (fluctuating) pattern — the paper's headline
    setting.  ``units`` should include one no-replication point (~1),
    mid-range points, and one near-saturation point (~30).
    """
    baseline = baseline if baseline is not None else BaselineConfig()
    if estimator is None:
        estimator = get_estimator(baseline)
    sweeps = {
        policy: sweep_workloads(
            policy, "triangular", units, baseline=baseline, estimator=estimator
        )
        for policy in ("predictive", "nonpredictive")
    }
    pred, nonpred = sweeps["predictive"], sweeps["nonpredictive"]
    checks: list[ClaimCheck] = []

    # Claim 1 — identical when no replication is needed.
    c_pred = pred[0].metrics.combined
    c_non = nonpred[0].metrics.combined
    same = abs(c_pred - c_non) <= 0.05 * max(c_non, 1e-9)
    checks.append(
        ClaimCheck(
            claim="policies identical at small workloads (no replication)",
            passed=same and pred[0].metrics.rm_actions == 0,
            detail=f"combined {c_pred:.3f} vs {c_non:.3f} at {units[0]:g} units",
        )
    )

    # Claim 2 — non-predictive uses more replicas.
    heavy = range(1, len(units))
    replica_ok = all(
        nonpred[i].metrics.avg_replicas >= pred[i].metrics.avg_replicas - 0.25
        for i in heavy
    ) and any(
        nonpred[i].metrics.avg_replicas > pred[i].metrics.avg_replicas
        for i in heavy
    )
    checks.append(
        ClaimCheck(
            claim="non-predictive uses more subtask replicas",
            passed=replica_ok,
            detail="avg replicas "
            + ", ".join(
                f"{units[i]:g}u: {nonpred[i].metrics.avg_replicas:.2f} vs "
                f"{pred[i].metrics.avg_replicas:.2f}"
                for i in heavy
            ),
        )
    )

    # Claim 3 — ... and hence more network utilization.
    net_ok = all(
        nonpred[i].metrics.avg_network_utilization
        >= 0.9 * pred[i].metrics.avg_network_utilization
        for i in heavy
    )
    checks.append(
        ClaimCheck(
            claim="non-predictive drives network utilization at least as high",
            passed=net_ok,
            detail="net util "
            + ", ".join(
                f"{units[i]:g}u: {nonpred[i].metrics.avg_network_utilization:.3f}"
                f" vs {pred[i].metrics.avg_network_utilization:.3f}"
                for i in heavy
            ),
        )
    )

    # Claim 4 — non-predictive CPU utilization is not higher.
    cpu_ok = all(
        nonpred[i].metrics.avg_cpu_utilization
        <= pred[i].metrics.avg_cpu_utilization + 0.03
        for i in heavy
    )
    checks.append(
        ClaimCheck(
            claim="non-predictive CPU utilization is not higher "
            "(replicas split quadratic work)",
            passed=cpu_ok,
            detail="cpu util "
            + ", ".join(
                f"{units[i]:g}u: {nonpred[i].metrics.avg_cpu_utilization:.3f}"
                f" vs {pred[i].metrics.avg_cpu_utilization:.3f}"
                for i in heavy
            ),
        )
    )

    # Claim 5 — predictive wins the combined metric on the fluctuating
    # pattern at replication-relevant workloads.
    wins = sum(
        1
        for i in heavy
        if pred[i].metrics.combined <= nonpred[i].metrics.combined * 1.01
    )
    checks.append(
        ClaimCheck(
            claim="predictive wins the combined metric on the "
            "fluctuating workload",
            passed=wins >= max(1, int(0.6 * len(list(heavy)))),
            detail=f"wins {wins}/{len(list(heavy))} replication-relevant points",
        )
    )

    # Claim 6 — the adaptation loop is live (actions at heavy loads).
    acted = all(
        pred[i].metrics.rm_actions > 0 and nonpred[i].metrics.rm_actions > 0
        for i in heavy
        if units[i] >= 10.0
    )
    checks.append(
        ClaimCheck(
            claim="both algorithms adapt (replicate/shutdown) under load",
            passed=acted,
            detail="rm actions "
            + ", ".join(
                f"{units[i]:g}u: {pred[i].metrics.rm_actions}/"
                f"{nonpred[i].metrics.rm_actions}"
                for i in heavy
            ),
        )
    )
    return checks


def render_checks(checks: list[ClaimCheck]) -> str:
    """ASCII rendering of a validation run."""
    rows = [
        [("PASS" if check.passed else "FAIL"), check.claim, check.detail]
        for check in checks
    ]
    return format_table(
        ["verdict", "claim", "measured"],
        rows,
        title="Paper-claims validation (triangular pattern)",
    )
