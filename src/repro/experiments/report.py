"""Plain-text rendering of experiment outputs.

The renderers themselves live in :mod:`repro.formatting` (foundation
layer) so that lower layers — regression diagnostics, bench logs — can
produce tables without importing the experiment harness (LAY-DAG).  This
module re-exports them under their historical import path; experiment
code may keep importing from here.
"""

from __future__ import annotations

from repro.formatting import (
    format_series_table,
    format_sparkline,
    format_table,
    paper_vs_measured,
)

__all__ = [
    "format_series_table",
    "format_sparkline",
    "format_table",
    "paper_vs_measured",
]
