"""Table reproduction (paper Tables 1-3).

* Table 1 — the baseline parameters (rendered from
  :class:`~repro.experiments.config.BaselineConfig`, which carries the
  published values as defaults).
* Table 2 — execution-latency regression coefficients for the two
  replicable subtasks: the published values next to the coefficients we
  fit from profiling the synthetic benchmark.  Absolute values differ
  (different application), but the *structure* should match: a
  dominant positive ``d^2`` curvature growing with utilization.
* Table 3 — the buffer-delay slope ``k``: published next to fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.app import aaw_task
from repro.bench.datasets import PAPER_BUFFER_K, PAPER_TABLE2_COEFFICIENTS
from repro.bench.profiler import profile_buffer_delay, profile_subtask
from repro.experiments.config import BaselineConfig
from repro.experiments.report import format_table
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.latency_model import ExecutionLatencyModel


def render_table1(baseline: BaselineConfig | None = None) -> str:
    """Table 1: the baseline parameters of the experimental study."""
    baseline = baseline if baseline is not None else BaselineConfig()
    return format_table(
        ["Parameter", "Value"],
        baseline.as_table_rows(),
        title="Table 1. Baseline parameters",
    )


@dataclass(frozen=True)
class Table2Row:
    """One subtask's fitted-vs-published coefficient comparison."""

    subtask_index: int
    fitted: ExecutionLatencyModel
    published: dict[str, float]


def reproduce_table2(
    baseline: BaselineConfig | None = None,
    repetitions: int = 2,
) -> list[Table2Row]:
    """Fit eq. 3 for the replicable subtasks and pair with Table 2."""
    baseline = baseline if baseline is not None else BaselineConfig()
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    rows: list[Table2Row] = []
    for index in sorted(PAPER_TABLE2_COEFFICIENTS):
        result = profile_subtask(
            task.subtask(index),
            repetitions=repetitions,
            seed=baseline.seed + index,
        )
        rows.append(
            Table2Row(
                subtask_index=index,
                fitted=result.model,
                published=PAPER_TABLE2_COEFFICIENTS[index],
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """ASCII rendering of the Table 2 comparison."""
    headers = ["subtask", "source", "a1", "a2", "a3", "b1", "b2", "b3", "R^2"]
    body: list[list[object]] = []
    for row in rows:
        c = row.fitted.coefficients()
        body.append(
            [
                row.subtask_index,
                "fitted",
                c["a1"],
                c["a2"],
                c["a3"],
                c["b1"],
                c["b2"],
                c["b3"],
                row.fitted.r_squared,
            ]
        )
        p = row.published
        body.append(
            [
                row.subtask_index,
                "paper",
                p["a1"],
                p["a2"],
                p["a3"],
                p["b1"],
                p["b2"],
                p["b3"],
                "-",
            ]
        )
    return format_table(
        headers,
        body,
        title="Table 2. Execution-latency regression coefficients "
        "(fitted from the synthetic benchmark vs published)",
    )


@dataclass(frozen=True)
class Table3Result:
    """Fitted buffer-delay slope next to the published one."""

    fitted: BufferDelayModel
    published_k: float


def reproduce_table3(baseline: BaselineConfig | None = None) -> Table3Result:
    """Fit eq. 5's slope from the simulated medium."""
    baseline = baseline if baseline is not None else BaselineConfig()
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    result = profile_buffer_delay(
        task,
        bandwidth_bps=baseline.bandwidth_bps,
        overhead_bytes=baseline.message_overhead_bytes,
    )
    return Table3Result(fitted=result.model, published_k=PAPER_BUFFER_K)


def render_table3(result: Table3Result) -> str:
    """ASCII rendering of the Table 3 comparison."""
    rows = [
        [
            "fitted",
            result.fitted.k_ms_per_track,
            result.fitted.k_ms_per_track * 500.0,
            result.fitted.r_squared,
        ],
        ["paper", result.published_k / 500.0, result.published_k, "-"],
    ]
    return format_table(
        ["source", "k (ms/track)", "k (ms/500-track unit)", "R^2"],
        rows,
        title="Table 3. Buffer-delay regression slope",
    )
