"""Evaluation harness (paper §5).

* :mod:`repro.experiments.config` — Table 1 baseline parameters and the
  experiment descriptor.
* :mod:`repro.experiments.metrics` — the four §5.2 metrics plus the
  combined performance metric ``C``.
* :mod:`repro.experiments.runner` — builds a system, runs one
  experiment, sweeps maximum workloads.
* :mod:`repro.experiments.figures` — series generators for every figure
  (9-13) and the extension/ablation studies.
* :mod:`repro.experiments.tables` — Table 1/2/3 reproduction.
* :mod:`repro.experiments.report` — plain-text rendering used by the
  benchmark harness and EXPERIMENTS.md.
"""

from repro.experiments.breakdown import LatencyBreakdown, compute_breakdown
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    run_campaign,
)
from repro.experiments.capacity import CapacityPlan, plan_capacity
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.forecast_eval import CalibrationReport, evaluate_forecasts
from repro.experiments.metrics import ExperimentMetrics, compute_metrics
from repro.experiments.multitask import MultiTaskResult, run_multi_task_experiment
from repro.experiments.paper_report import PaperReport, generate_report
from repro.experiments.replication import ReplicatedResult, replicate_experiment
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    sweep_workloads,
)
from repro.experiments.timeline import Timeline, extract_timeline, render_timeline
from repro.experiments.validation import validate_reproduction

__all__ = [
    "BaselineConfig",
    "CalibrationReport",
    "CampaignResult",
    "CampaignSpec",
    "CapacityPlan",
    "ExperimentConfig",
    "ExperimentMetrics",
    "ExperimentResult",
    "LatencyBreakdown",
    "MultiTaskResult",
    "PaperReport",
    "ReplicatedResult",
    "Timeline",
    "compute_breakdown",
    "compute_metrics",
    "evaluate_forecasts",
    "extract_timeline",
    "generate_report",
    "plan_capacity",
    "render_timeline",
    "replicate_experiment",
    "run_campaign",
    "run_experiment",
    "run_multi_task_experiment",
    "sweep_workloads",
    "validate_reproduction",
]


def __getattr__(name: str):
    # Pre-facade estimator entry point (PEP 562 shim); the supported
    # spelling is repro.api.fit_estimator.
    if name == "get_default_estimator":
        import warnings

        from repro.experiments import estimator_cache

        warnings.warn(
            "repro.experiments.get_default_estimator is deprecated; "
            "use repro.api.fit_estimator",
            DeprecationWarning,
            stacklevel=2,
        )
        return estimator_cache.get_estimator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
