"""Experiment metrics (paper §5.2).

Four per-experiment metrics, all reported as fractions in [0, 1]:

* **missed-deadline ratio** ``MD`` — fraction of released periods whose
  end-to-end latency exceeded the deadline (aborted/shed periods count
  as missed; periods still in flight at the measurement horizon count
  as missed as well, since they are by construction overdue);
* **average CPU utilization** ``U_cpu`` — busy fraction over the run,
  averaged across processors;
* **average network utilization** ``U_net`` — busy fraction of the
  shared medium over the run;
* **replica ratio** ``R / Max(R)`` — the time-averaged total number of
  replicas of the replicable subtasks over the maximum possible
  (``n_processors`` per replicable subtask, the placement-invariant
  ceiling: replicas of one subtask must sit on distinct processors).

The **combined performance metric** is their unweighted sum
``C = MD + U_cpu + U_net + R/Max(R)`` (lower is better), exactly the
paper's aggregate.

With the allocator zoo (:mod:`repro.core.zoo`) C also anchors a
*regret* measure: :func:`regret_by_policy` scores each policy's C
against the :class:`~repro.core.zoo.OracleAllocator`'s C on the same
cell, isolating how much a policy gives up to imperfect forecasting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.topology import System
from repro.core.manager import AdaptiveResourceManager
from repro.errors import ConfigurationError
from repro.experiments.history_index import RunHistoryIndex
from repro.runtime.executor import PeriodicTaskExecutor

#: Registry name of the allocator whose C anchors the regret measure.
ORACLE_POLICY = "oracle"


@dataclass(frozen=True)
class ExperimentMetrics:
    """The §5.2 metric set for one experiment run."""

    missed_deadline_ratio: float
    avg_cpu_utilization: float
    avg_network_utilization: float
    avg_replicas: float
    max_replicas: int

    # Raw counts for reporting/debugging.
    periods_released: int = 0
    periods_missed: int = 0
    periods_aborted: int = 0
    rm_actions: int = 0

    @property
    def replica_ratio(self) -> float:
        """``R / Max(R)``."""
        if self.max_replicas <= 0:
            return 0.0
        return self.avg_replicas / self.max_replicas

    @property
    def combined(self) -> float:
        """``C = MD + U_cpu + U_net + R/Max(R)`` (lower is better)."""
        return (
            self.missed_deadline_ratio
            + self.avg_cpu_utilization
            + self.avg_network_utilization
            + self.replica_ratio
        )

    def as_dict(self) -> dict[str, float]:
        """All metrics keyed by short name (for tables and CSV)."""
        return {
            "missed": self.missed_deadline_ratio,
            "cpu": self.avg_cpu_utilization,
            "net": self.avg_network_utilization,
            "replicas": self.avg_replicas,
            "replica_ratio": self.replica_ratio,
            "combined": self.combined,
        }


def compute_metrics(
    system: System,
    executor: PeriodicTaskExecutor,
    manager: AdaptiveResourceManager,
    t_start: float,
    t_end: float,
    index: RunHistoryIndex | None = None,
) -> ExperimentMetrics:
    """Derive the metric set from a finished run.

    Parameters
    ----------
    t_start / t_end:
        Measurement interval (usually 0 to ``n_periods * period``).
    index:
        The run's :class:`~repro.experiments.history_index.RunHistoryIndex`,
        if the caller already maintains one; its accumulated counters
        replace the full history/record rescans with bit-identical
        results.  Without it the legacy scans run unchanged.
    """
    if t_end <= t_start:
        raise ConfigurationError(f"bad measurement interval [{t_start}, {t_end}]")
    span = t_end - t_start

    if index is not None:
        index.update()
        released, missed, aborted = index.period_counts(t_end)
    else:
        records = [r for r in executor.records if r.release_time < t_end]
        released = len(records)
        missed = sum(
            1 for r in records if r.missed or (not r.completed and not r.aborted)
        )
        aborted = sum(1 for r in records if r.aborted)
    md = missed / released if released else 0.0

    cpu_utils = [
        p.meter.busy_between(t_start, t_end) / span for p in system.processors
    ]
    avg_cpu = sum(cpu_utils) / len(cpu_utils)
    avg_net = system.network.meter.busy_between(t_start, t_end) / span

    task = executor.task
    n_replicable = len(task.replicable_indices())
    if index is not None:
        mean = index.windowed_replica_mean(t_start, t_end)
        avg_replicas = (
            mean if mean is not None
            else float(executor.assignment.total_replicas())
        )
    else:
        samples = [
            count
            for time, count in manager.replica_samples()
            if t_start <= time < t_end
        ]
        if samples:
            avg_replicas = sum(samples) / len(samples)
        else:
            avg_replicas = float(executor.assignment.total_replicas())
    max_replicas = system.size * n_replicable

    return ExperimentMetrics(
        missed_deadline_ratio=md,
        avg_cpu_utilization=avg_cpu,
        avg_network_utilization=avg_net,
        avg_replicas=avg_replicas,
        max_replicas=max_replicas,
        periods_released=released,
        periods_missed=missed,
        periods_aborted=aborted,
        rm_actions=(
            index.actions_taken() if index is not None else manager.actions_taken()
        ),
    )


def regret_by_policy(
    combined_by_policy: Mapping[str, float],
    oracle_policy: str = ORACLE_POLICY,
) -> dict[str, float]:
    """Per-policy regret: ``C_policy - C_oracle`` on one cell.

    Takes the combined metric C of several policies measured under
    identical conditions (same pattern, workload, seed, scenario) and
    returns how much C each gives up relative to the perfect-forecast
    reference — 0.0 for the oracle itself, positive when a policy's
    imperfect forecasting cost it, negative in the (possible) event a
    heuristic beat the oracle's greedy plan on that cell.

    Raises :class:`~repro.errors.ConfigurationError` when the reference
    policy is missing from the input.
    """
    if oracle_policy not in combined_by_policy:
        raise ConfigurationError(
            f"regret needs the reference policy {oracle_policy!r}; got "
            f"{sorted(combined_by_policy)}"
        )
    reference = combined_by_policy[oracle_policy]
    return {
        policy: combined - reference
        for policy, combined in combined_by_policy.items()
    }
