"""Series generators for every evaluation figure (paper Figs. 8-13).

Each ``figN_*`` function returns a :class:`FigureData`: the x-axis, one
named series per curve of the original figure, and a rendering helper.
The benchmark harness times these and prints the series; EXPERIMENTS.md
records the paper-vs-measured comparison.

Extension studies (E-X1..E-X4 of DESIGN.md) live here too:
threshold-region sweep, slack-fraction ablation, utilization-threshold
ablation, deadline-strategy ablation and the deadline-reference
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import (
    DEFAULT_SWEEP_UNITS,
    BaselineConfig,
    ExperimentConfig,
)
from repro.experiments.metrics import ExperimentMetrics
from repro.experiments.report import format_series_table
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.runner import (
    run_experiment,
    sweep_workloads,
)
from repro.regression.estimator import TimingEstimator
from repro.workloads.patterns import make_pattern

#: The four panel metrics of Figs. 9/11/12, keyed by panel letter.
PANEL_METRICS = {
    "a": ("missed", "Missed deadline ratio"),
    "b": ("cpu", "Average CPU utilization"),
    "c": ("net", "Average network utilization"),
    "d": ("replicas", "Average subtask replicas"),
}

POLICIES = ("predictive", "nonpredictive")


@dataclass
class FigureData:
    """One reproduced figure (or panel set)."""

    figure_id: str
    title: str
    x_label: str
    x_values: list[float]
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """ASCII rendering for bench output / EXPERIMENTS.md."""
        return format_series_table(
            self.x_label,
            self.x_values,
            self.series,
            title=f"{self.figure_id}: {self.title}",
        )


def _metric_value(metrics: ExperimentMetrics, key: str) -> float:
    return metrics.as_dict()[key]


def _pattern_sweep(
    pattern: str,
    units: tuple[float, ...],
    baseline: BaselineConfig,
    estimator: TimingEstimator | None,
    n_jobs: int = 1,
) -> dict[str, list[ExperimentMetrics]]:
    if estimator is None and n_jobs == 1:
        estimator = get_estimator(baseline)
    out: dict[str, list[ExperimentMetrics]] = {}
    for policy in POLICIES:
        results = sweep_workloads(
            policy, pattern, units, baseline=baseline, estimator=estimator,
            n_jobs=n_jobs,
        )
        out[policy] = [r.metrics for r in results]
    return out


# ---------------------------------------------------------------------------
# Figure 8 — the workload patterns themselves
# ---------------------------------------------------------------------------

def fig8_workload_patterns(
    max_workload_units: float = 20.0,
    n_periods: int = 60,
    baseline: BaselineConfig | None = None,
) -> FigureData:
    """Figure 8: the three evaluation workload patterns over time."""
    baseline = baseline if baseline is not None else BaselineConfig()
    max_tracks = max_workload_units * 500.0
    min_tracks = baseline.min_workload_units * 500.0
    data = FigureData(
        figure_id="Figure 8",
        title="Workload patterns (tracks per period)",
        x_label="period",
        x_values=[float(i) for i in range(n_periods)],
    )
    for name in ("increasing", "decreasing", "triangular"):
        pattern = make_pattern(name, min_tracks, max_tracks, n_periods)
        data.series[name] = [pattern(i) for i in range(n_periods)]
    return data


# ---------------------------------------------------------------------------
# Figures 9-13 — the policy comparison sweeps
# ---------------------------------------------------------------------------

_PATTERN_BY_FIGURE = {
    "Figure 9": "triangular",
    "Figure 10": "triangular",
    "Figure 11": "increasing",
    "Figure 12": "decreasing",
}


def metric_panels(
    figure_id: str,
    pattern: str,
    units: tuple[float, ...] = DEFAULT_SWEEP_UNITS,
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
    n_jobs: int = 1,
) -> dict[str, FigureData]:
    """The four (a)-(d) panels of a Figure 9/11/12-style comparison."""
    baseline = baseline if baseline is not None else BaselineConfig()
    metrics_by_policy = _pattern_sweep(pattern, units, baseline, estimator, n_jobs)
    panels: dict[str, FigureData] = {}
    for letter, (key, label) in PANEL_METRICS.items():
        data = FigureData(
            figure_id=f"{figure_id}({letter})",
            title=f"{label} — {pattern} pattern",
            x_label="max workload (1 unit = 500 tracks)",
            x_values=list(units),
        )
        for policy in POLICIES:
            data.series[policy] = [
                _metric_value(m, key) for m in metrics_by_policy[policy]
            ]
        panels[letter] = data
    return panels


def combined_figure(
    figure_id: str,
    pattern: str,
    units: tuple[float, ...] = DEFAULT_SWEEP_UNITS,
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
    n_jobs: int = 1,
) -> FigureData:
    """A Figure 10/13-style combined-performance-metric comparison."""
    baseline = baseline if baseline is not None else BaselineConfig()
    metrics_by_policy = _pattern_sweep(pattern, units, baseline, estimator, n_jobs)
    data = FigureData(
        figure_id=figure_id,
        title=f"Combined performance metric — {pattern} pattern",
        x_label="max workload (1 unit = 500 tracks)",
        x_values=list(units),
    )
    for policy in POLICIES:
        data.series[policy] = [m.combined for m in metrics_by_policy[policy]]
    return data


def fig9_triangular_panels(**kwargs) -> dict[str, FigureData]:
    """Figure 9(a-d): the four metrics under the triangular pattern."""
    return metric_panels("Figure 9", "triangular", **kwargs)


def fig10_triangular_combined(**kwargs) -> FigureData:
    """Figure 10: combined metric under the triangular pattern."""
    return combined_figure("Figure 10", "triangular", **kwargs)


def fig11_increasing_panels(**kwargs) -> dict[str, FigureData]:
    """Figure 11(a-d): the four metrics under the increasing ramp."""
    return metric_panels("Figure 11", "increasing", **kwargs)


def fig12_decreasing_panels(**kwargs) -> dict[str, FigureData]:
    """Figure 12(a-d): the four metrics under the decreasing ramp."""
    return metric_panels("Figure 12", "decreasing", **kwargs)


def fig13_ramp_combined(**kwargs) -> dict[str, FigureData]:
    """Figure 13(a, b): combined metric under both ramps."""
    return {
        "a": combined_figure("Figure 13(a)", "increasing", **kwargs),
        "b": combined_figure("Figure 13(b)", "decreasing", **kwargs),
    }


# ---------------------------------------------------------------------------
# Extension and ablation studies (DESIGN.md E-X1..E-X4)
# ---------------------------------------------------------------------------

def extended_threshold_sweep(
    pattern: str = "increasing",
    units: tuple[float, ...] = (25.0, 28.0, 31.0, 34.0, 37.0, 40.0, 45.0, 50.0),
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
) -> FigureData:
    """E-X1: the beyond-threshold region (§5.2's "larger workload ranges").

    The paper reports that past a threshold (~28 units) the two
    algorithms' ordering fluctuates; this sweep extends the x-axis to
    make that region visible.
    """
    return combined_figure(
        "E-X1", pattern, units=units, baseline=baseline, estimator=estimator
    )


def ablation_slack_fraction(
    fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.4),
    pattern: str = "triangular",
    max_workload_units: float = 20.0,
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
) -> FigureData:
    """E-X2: sensitivity of the predictive algorithm to ``sl`` (paper: 0.2)."""
    baseline = baseline if baseline is not None else BaselineConfig()
    if estimator is None:
        estimator = get_estimator(baseline)
    data = FigureData(
        figure_id="E-X2",
        title=f"Slack-fraction ablation (predictive, {pattern}, "
        f"max={max_workload_units:g} units)",
        x_label="slack fraction",
        x_values=list(fractions),
        series={"missed": [], "replica_ratio": [], "combined": []},
    )
    for sl in fractions:
        config = ExperimentConfig(
            policy="predictive",
            pattern=pattern,
            max_workload_units=max_workload_units,
            baseline=baseline.with_overrides(slack_fraction=sl),
        )
        metrics = run_experiment(config, estimator=estimator).metrics
        data.series["missed"].append(metrics.missed_deadline_ratio)
        data.series["replica_ratio"].append(metrics.replica_ratio)
        data.series["combined"].append(metrics.combined)
    return data


def ablation_utilization_threshold(
    thresholds: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.6),
    pattern: str = "triangular",
    max_workload_units: float = 20.0,
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
) -> FigureData:
    """E-X3: sensitivity of the non-predictive baseline to ``UT``."""
    baseline = baseline if baseline is not None else BaselineConfig()
    if estimator is None:
        estimator = get_estimator(baseline)
    data = FigureData(
        figure_id="E-X3",
        title=f"Utilization-threshold ablation (non-predictive, {pattern}, "
        f"max={max_workload_units:g} units)",
        x_label="UT",
        x_values=list(thresholds),
        series={"missed": [], "replica_ratio": [], "combined": []},
    )
    for ut in thresholds:
        config = ExperimentConfig(
            policy="nonpredictive",
            pattern=pattern,
            max_workload_units=max_workload_units,
            baseline=baseline.with_overrides(utilization_threshold=ut),
        )
        metrics = run_experiment(config, estimator=estimator).metrics
        data.series["missed"].append(metrics.missed_deadline_ratio)
        data.series["replica_ratio"].append(metrics.replica_ratio)
        data.series["combined"].append(metrics.combined)
    return data


def ablation_deadline_strategy(
    strategies: tuple[str, ...] = ("sequential_eqf", "paper_eqf", "proportional"),
    pattern: str = "triangular",
    max_workload_units: float = 20.0,
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
) -> FigureData:
    """E-X4: the deadline-decomposition ablation (predictive policy)."""
    baseline = baseline if baseline is not None else BaselineConfig()
    if estimator is None:
        estimator = get_estimator(baseline)
    data = FigureData(
        figure_id="E-X4",
        title=f"Deadline-strategy ablation (predictive, {pattern}, "
        f"max={max_workload_units:g} units)",
        x_label="strategy index",
        x_values=list(range(len(strategies))),
        series={"missed": [], "replica_ratio": [], "combined": []},
    )
    data.strategy_names = list(strategies)  # type: ignore[attr-defined]
    for strategy in strategies:
        config = ExperimentConfig(
            policy="predictive",
            pattern=pattern,
            max_workload_units=max_workload_units,
            baseline=baseline.with_overrides(deadline_strategy=strategy),
        )
        metrics = run_experiment(config, estimator=estimator).metrics
        data.series["missed"].append(metrics.missed_deadline_ratio)
        data.series["replica_ratio"].append(metrics.replica_ratio)
        data.series["combined"].append(metrics.combined)
    return data
