"""Statistical replication of experiments (seeds, means, intervals).

The paper reports single runs per data point ("each data point ... is
obtained by a single experiment").  For a trustworthy reproduction we
also quantify run-to-run variability: :func:`replicate_experiment` runs
an experiment under ``n_seeds`` independent seeds and summarizes each
metric with mean, standard deviation and a Student-t confidence
interval (scipy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import ExperimentMetrics
from repro.experiments.runner import run_experiment
from repro.regression.estimator import TimingEstimator


@dataclass(frozen=True)
class MetricSummary:
    """Mean/spread of one metric over replications."""

    name: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def ci_half_width(self) -> float:
        """Half width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class ReplicatedResult:
    """All metric summaries for one replicated experiment."""

    config: ExperimentConfig
    summaries: dict[str, MetricSummary]
    runs: tuple[ExperimentMetrics, ...]

    def summary(self, name: str) -> MetricSummary:
        """Look up one metric's summary by its short name."""
        try:
            return self.summaries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}; available: {sorted(self.summaries)}"
            ) from None


@lru_cache(maxsize=None)
def _t_critical(confidence: float, df: int) -> float:
    """Memoized Student-t critical value.

    ``summarize`` is called once per metric per replication study with
    identical ``(confidence, df)`` arguments, and ``scipy.stats.t.ppf``
    dominates its cost — cache the quantile instead of recomputing it.
    """
    return float(stats.t.ppf(0.5 + confidence / 2.0, df=df))


def summarize(name: str, values: list[float], confidence: float = 0.95) -> MetricSummary:
    """Mean, sd and Student-t CI of a sample of metric values."""
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    n = arr.size
    if n == 1:
        return MetricSummary(name, mean, 0.0, mean, mean, 1)
    sd = float(arr.std(ddof=1))
    half = _t_critical(confidence, n - 1) * sd / math.sqrt(n)
    return MetricSummary(name, mean, sd, mean - half, mean + half, n)


def replicate_experiment(
    config: ExperimentConfig,
    n_seeds: int = 5,
    estimator: TimingEstimator | None = None,
    confidence: float = 0.95,
    n_jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> ReplicatedResult:
    """Run ``config`` under ``n_seeds`` seeds and summarize every metric.

    Seeds offset both the system RNG registry (execution noise, clock
    offsets) and nothing else; the fitted estimator is shared, matching
    the paper's methodology (one profiled model, many runs).

    With ``n_jobs > 1`` the seeds run across a process pool
    (:mod:`repro.parallel`): offsets are derived per job before
    dispatch and runs are reassembled in seed order, so the result is
    bit-identical to a serial replication.
    """
    if n_seeds < 1:
        raise ConfigurationError(f"need at least one seed, got {n_seeds}")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_jobs != 1:
        # Imported lazily: repro.parallel imports the experiment stack.
        from repro.parallel import run_configs_parallel

        job_results = run_configs_parallel(
            [config] * n_seeds,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            estimator=estimator,
            seed_offsets=list(range(n_seeds)),
        )
        runs = [jr.metrics for jr in job_results]
    else:
        if estimator is None:
            from repro.experiments.estimator_cache import get_estimator

            estimator = get_estimator(config.baseline, cache_dir=cache_dir)
        runs = [
            run_experiment(config, estimator=estimator, seed_offset=offset).metrics
            for offset in range(n_seeds)
        ]
    series: dict[str, list[float]] = {}
    for metrics in runs:
        for key, value in metrics.as_dict().items():
            series.setdefault(key, []).append(value)
    summaries = {
        name: summarize(name, values, confidence)
        for name, values in series.items()
    }
    return ReplicatedResult(config=config, summaries=summaries, runs=tuple(runs))
