"""Process-shared cache of profiled + fitted timing estimators.

Profiling the regression models (paper §4.2.1) is the expensive step of
every experiment — ~1 s against the simulated hardware versus ~20 ms
for the experiment itself — so fits are cached at two levels:

* **in memory**, keyed by the configuration fields that shape the fit
  (noise, bandwidth, overhead, profiling seed, repetitions);
* **on disk** (optional), as the JSON produced by
  :mod:`repro.regression.serialization`, so *other processes* — the
  :mod:`repro.parallel` worker pool in particular — can load a fit by
  key instead of re-profiling.

The parallel runner relies on the disk layer for determinism as well as
speed: the parent fits once, :func:`warm` persists the models, and every
worker loads the identical coefficients (JSON float round-trips are
exact), so a parallel campaign is bit-identical to a serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bench.app import aaw_task
from repro.bench.profiler import build_estimator
from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig
from repro.regression.estimator import TimingEstimator
from repro.regression.serialization import load_models, save_models

#: In-process cache, keyed by :func:`cache_key`.  Shared with
#: :mod:`repro.experiments.runner` (its ``_ESTIMATOR_CACHE`` alias).
_MEMORY_CACHE: dict[tuple, TimingEstimator] = {}


@dataclass
class CacheStats:
    """Counters for observing cache behaviour (tests, diagnostics)."""

    memory_hits: int = 0
    disk_hits: int = 0
    fits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.memory_hits = self.disk_hits = self.fits = 0


#: Module-wide counters; reset with ``STATS.reset()``.
STATS = CacheStats()


def cache_key(baseline: BaselineConfig, repetitions: int = 2) -> tuple:
    """The tuple of configuration fields that shape a fitted model set."""
    return (
        round(baseline.noise_sigma, 6),
        round(baseline.bandwidth_bps, 3),
        round(baseline.message_overhead_bytes, 3),
        baseline.seed,
        repetitions,
    )


def cache_path(cache_dir: str | Path, key: tuple) -> Path:
    """Deterministic JSON file name for a cache key."""
    stem = "_".join(str(part).replace(".", "p") for part in key)
    return Path(cache_dir) / f"models_{stem}.json"


def _ensure_parent(path: Path) -> None:
    """Create ``path``'s directory, rejecting non-directory cache dirs."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
    except (FileExistsError, NotADirectoryError) as exc:
        raise ConfigurationError(
            f"cache dir {str(path.parent)!r} is not a usable directory"
        ) from exc


def clear_memory_cache() -> None:
    """Drop every in-process entry (disk files are left alone)."""
    _MEMORY_CACHE.clear()


def get_estimator(
    baseline: BaselineConfig,
    cache_dir: str | Path | None = None,
    repetitions: int = 2,
) -> TimingEstimator:
    """The fitted estimator for ``baseline``: memory, then disk, then fit.

    On a memory miss with ``cache_dir`` set, the JSON produced by an
    earlier process is loaded instead of re-profiling; on a full miss
    the models are fitted and (with ``cache_dir``) persisted for other
    processes.
    """
    # The memo cache and hit counters below are deliberate per-process
    # state: entries are keyed on the full config, so a worker's copy
    # can only ever hold values byte-identical to what the parent would
    # compute, and the counters are observability-only.  Safe on worker
    # paths, hence the CONC-GLOBAL-MUT suppressions (see
    # docs/static_analysis.md, "Reviewed baselines").
    key = cache_key(baseline, repetitions)
    cached = _MEMORY_CACHE.get(key)
    if cached is not None:
        STATS.memory_hits += 1  # repro: noqa CONC-GLOBAL-MUT
        return cached

    task = aaw_task(
        period=baseline.period,
        deadline=baseline.deadline,
        noise_sigma=baseline.noise_sigma,
    )
    path: Path | None = None
    if cache_dir is not None:
        path = cache_path(cache_dir, key)
        if path.exists():
            latency_models, comm_model = load_models(path)
            estimator = TimingEstimator(
                task=task, latency_models=latency_models, comm_model=comm_model
            )
            _MEMORY_CACHE[key] = estimator  # repro: noqa CONC-GLOBAL-MUT
            STATS.disk_hits += 1  # repro: noqa CONC-GLOBAL-MUT
            return estimator

    estimator = build_estimator(
        task,
        repetitions=repetitions,
        seed=baseline.seed,
        bandwidth_bps=baseline.bandwidth_bps,
        overhead_bytes=baseline.message_overhead_bytes,
    )
    STATS.fits += 1  # repro: noqa CONC-GLOBAL-MUT
    if path is not None:
        _ensure_parent(path)
        save_models(path, estimator.latency_models, estimator.comm_model)
    _MEMORY_CACHE[key] = estimator  # repro: noqa CONC-GLOBAL-MUT
    return estimator


def warm(
    baseline: BaselineConfig,
    cache_dir: str | Path,
    estimator: TimingEstimator | None = None,
    repetitions: int = 2,
) -> Path:
    """Ensure the disk cache holds a fit for ``baseline``; return its path.

    With ``estimator`` given, *those* models are persisted under the
    baseline's key (so workers reuse a caller-supplied fit exactly);
    otherwise a fit is obtained via :func:`get_estimator` (which may
    itself hit either cache layer).  Called by the parallel fan-out
    sites before dispatching workers.
    """
    key = cache_key(baseline, repetitions)
    path = cache_path(cache_dir, key)
    if estimator is not None:
        # Overwrite unconditionally: workers must load exactly these
        # models even if an older fit sits under the same key.
        _MEMORY_CACHE[key] = estimator
        _ensure_parent(path)
        save_models(path, estimator.latency_models, estimator.comm_model)
        return path
    fitted = get_estimator(baseline, cache_dir=cache_dir, repetitions=repetitions)
    if not path.exists():
        # A memory hit skips the disk write; workers still need the file.
        _ensure_parent(path)
        save_models(path, fitted.latency_models, fitted.comm_model)
    return path
