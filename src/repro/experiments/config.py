"""Experiment configuration (paper §5.1, Table 1).

:class:`BaselineConfig` captures the published baseline parameters plus
the reproduction's own knobs (documented substitutions: event counts,
noise, overheads).  :class:`ExperimentConfig` adds the per-run axes —
policy, workload pattern, maximum workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.cluster.processor import Discipline
from repro.errors import ConfigurationError
from repro.telemetry.slo import SloRule
from repro.units import (
    ETHERNET_100_MBPS,
    MS,
    TRACK_BYTES,
    s_to_ms,
    workload_units_to_tracks,
)


def _check_override_names(config: Any, overrides: dict[str, Any]) -> None:
    """Reject override names that are not fields of ``config``."""
    known = {f.name for f in fields(config)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown {type(config).__name__} field(s) "
            f"{', '.join(map(repr, unknown))}; valid fields: "
            f"{', '.join(sorted(known))}"
        )


@dataclass(frozen=True, kw_only=True)
class BaselineConfig:
    """Table 1 baseline parameters plus reproduction knobs.

    Published (Table 1)
    -------------------
    * ``n_nodes`` = 6
    * round-robin CPU scheduling, 1 ms time slice (we default to its
      processor-sharing limit; set ``discipline`` to ``ROUND_ROBIN`` for
      quantum-exact runs)
    * Ethernet at 100 Mbit/s
    * 80-byte tracks, 1 s data arrival period, 990 ms relative deadline
    * 1 periodic task, 5 subtasks, 2 replicable
    * non-predictive utilization threshold ``UT`` = 20 %

    Reproduction knobs
    ------------------
    * ``n_periods`` — periods simulated per experiment
    * ``min_workload_units`` — the pattern's floor (Figure 8's minimum)
    * ``noise_sigma`` — execution-time noise of the synthetic benchmark
    * ``message_overhead_bytes`` — per-message protocol overhead
    * ``slack_fraction`` etc. — RM loop tunables (paper's §4 defaults)
    """

    # Table 1
    n_nodes: int = 6
    discipline: Discipline = Discipline.PROCESSOR_SHARING
    quantum: float = 1.0 * MS
    bandwidth_bps: float = ETHERNET_100_MBPS
    track_bytes: int = TRACK_BYTES
    period: float = 1.0
    deadline: float = 990.0 * MS
    utilization_threshold: float = 0.20

    # Reproduction
    n_periods: int = 60
    min_workload_units: float = 0.5
    noise_sigma: float = 0.08
    message_overhead_bytes: float = 1500.0
    network_mode: str = "shared"
    #: Per-transmission loss probability (0 = the reliable baseline).
    message_loss_probability: float = 0.0
    #: One service-rate factor per node (None = homogeneous, Table 1).
    speed_factors: tuple[float, ...] | None = None
    utilization_window: float = 5.0
    slack_fraction: float = 0.2
    shutdown_slack_fraction: float = 0.6
    monitor_window: int = 3
    deadline_strategy: str = "sequential_eqf"
    shutdown_strategy: str = "lifo"
    drop_factor: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_periods < 1:
            raise ConfigurationError(
                f"n_periods must be >= 1, got {self.n_periods}"
            )
        if self.deadline > self.period:
            raise ConfigurationError(
                "the benchmark task is constrained-deadline: deadline "
                f"{self.deadline} must not exceed period {self.period}"
            )
        if self.min_workload_units <= 0.0:
            raise ConfigurationError(
                f"min_workload_units must be positive, got "
                f"{self.min_workload_units}"
            )
        if self.shutdown_strategy not in ("lifo", "forecast_aware"):
            raise ConfigurationError(
                "shutdown_strategy must be 'lifo' or 'forecast_aware', got "
                f"{self.shutdown_strategy!r}"
            )

    def with_overrides(self, **overrides: Any) -> "BaselineConfig":
        """A copy with some fields replaced.

        Unknown names raise :class:`~repro.errors.ConfigurationError`
        (a typo in a sweep override would otherwise silently produce a
        ``TypeError`` deep inside ``dataclasses.replace``).
        """
        _check_override_names(self, overrides)
        return replace(self, **overrides)

    def as_table_rows(self) -> list[tuple[str, str]]:
        """Table 1 rendered as (parameter, value) rows."""
        scheduler = (
            f"Round-Robin (time slice = {s_to_ms(self.quantum):g} ms; "
            "simulated as its processor-sharing limit)"
            if self.discipline is Discipline.PROCESSOR_SHARING
            else f"Round-Robin (time slice = {s_to_ms(self.quantum):g} ms; exact)"
        )
        return [
            ("Number of nodes", str(self.n_nodes)),
            ("CPU scheduler at each node", scheduler),
            (
                "Network",
                f"Ethernet (transmission speed = "
                f"{self.bandwidth_bps / 1e6:g} Mbps)",
            ),
            ("Data item (track) size", f"{self.track_bytes} bytes"),
            ("Data arrival period", f"{self.period:g} sec"),
            ("Relative end-to-end deadline", f"{s_to_ms(self.deadline):g} ms"),
            ("Number of periodic tasks", "1"),
            ("Number of subtasks per task", "5"),
            ("Number of replicable subtasks per task", "2"),
            (
                "CPU utilization threshold (non-predictive)",
                f"{self.utilization_threshold * 100:g}%",
            ),
        ]


@dataclass(frozen=True, kw_only=True)
class ExperimentConfig:
    """One experiment: a policy meets a workload pattern.

    Attributes
    ----------
    policy:
        ``"predictive"`` or ``"nonpredictive"``.
    pattern:
        One of :data:`repro.workloads.patterns.PATTERN_NAMES`.
    max_workload_units:
        Figure 9-13 x-axis value (1 unit = 500 tracks).
    baseline:
        Shared baseline parameters.
    chaos_scenario:
        Name of a :mod:`repro.chaos` scenario to inject (``None`` — the
        default — runs fault-free and is bit-identical to a build that
        never imports chaos; ``"none"`` arms an empty scenario, which
        is equivalent by construction).
    hardened:
        Run the RM loop with the default
        :class:`repro.core.hardening.HardeningConfig` defenses (stale
        record aging, placement guard, allocation backoff, forecast
        circuit breaker).
    engine:
        Event-calendar implementation: ``"scalar"`` (binary heap) or
        ``"vectorized"`` (array-backed batched calendar).  Decision
        sequences are bit-identical either way; vectorized is faster at
        scale.
    slo:
        Optional tuple of :class:`repro.telemetry.slo.SloRule` to
        evaluate during the run.  ``None`` (the default) runs without
        an SLO engine; the runner then arms an internal telemetry hub
        when rules are present, so SLO verdicts work even for callers
        that never touch telemetry.  The decision sequence is
        unaffected either way.
    checkpoint:
        Sim-time interval (seconds) between periodic run snapshots
        (:mod:`repro.recovery`).  ``None`` (the default) never
        checkpoints.  Checkpoint events never change decisions: a
        checkpointed run's decision digest equals the unarmed run's.
    failover:
        Arm a standby controller with heartbeat/lease detection
        (:class:`repro.recovery.failover.FailoverCoordinator`); on an
        ``rm_crash`` chaos fault the standby takes over from the last
        controller-state checkpoint instead of leaving the run without
        adaptation.
    """

    policy: str
    pattern: str
    max_workload_units: float
    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    chaos_scenario: str | None = None
    hardened: bool = False
    engine: str = "scalar"
    slo: tuple[SloRule, ...] | None = None
    checkpoint: float | None = None
    failover: bool = False

    def __post_init__(self) -> None:
        if self.max_workload_units <= 0.0:
            raise ConfigurationError(
                f"max_workload_units must be positive, got "
                f"{self.max_workload_units}"
            )
        if self.engine not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f"engine must be 'scalar' or 'vectorized', got {self.engine!r}"
            )
        if self.checkpoint is not None and self.checkpoint <= 0.0:
            raise ConfigurationError(
                f"checkpoint interval must be positive, got {self.checkpoint}"
            )

    def with_overrides(self, **overrides: Any) -> "ExperimentConfig":
        """A copy with some fields replaced (symmetric with
        :meth:`BaselineConfig.with_overrides`); unknown names raise
        :class:`~repro.errors.ConfigurationError`.
        """
        _check_override_names(self, overrides)
        return replace(self, **overrides)

    @property
    def max_tracks(self) -> float:
        """Pattern maximum in tracks."""
        return workload_units_to_tracks(self.max_workload_units)

    @property
    def min_tracks(self) -> float:
        """Pattern minimum in tracks (never above the maximum)."""
        return min(
            workload_units_to_tracks(self.baseline.min_workload_units),
            self.max_tracks,
        )


#: The Figure 9-13 sweep (x-axis points, 1 unit = 500 tracks).
DEFAULT_SWEEP_UNITS: tuple[float, ...] = (1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0)
