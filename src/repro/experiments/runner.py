"""Experiment execution.

:func:`run_experiment` assembles the full stack — system, benchmark
task, profiled estimator, executor, policy, resource manager — runs the
configured number of periods, and returns the §5.2 metrics.
:func:`sweep_workloads` repeats it over the Figure 9-13 x-axis.

The assembly and the finalization are independently reusable:
:func:`build_world` returns a started :class:`RunWorld` (the object
:mod:`repro.recovery` snapshots), and :func:`finalize_world` turns a
finished world into the :class:`ExperimentResult` —
``run_experiment`` is exactly ``build_world`` + ``run_until`` +
``finalize_world``, and a checkpoint-resumed run reuses the same two
halves around a restored world.

Profiling the regression models is the expensive step, so estimators
are cached: in-process by configuration key, and optionally on disk via
:mod:`repro.regression.serialization`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import System, build_system
from repro.core.allocation import get_policy
from repro.core.hardening import HardeningConfig
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import ForecastAwareShutdown, LifoShutdown
from repro.errors import ConfigurationError
from repro.experiments import estimator_cache
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.history_index import RunHistoryIndex
from repro.experiments.metrics import ExperimentMetrics, compute_metrics
from repro.regression.estimator import TimingEstimator
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.sim.trace import Tracer
from repro.tasks.state import ReplicaAssignment
from repro.telemetry.hub import TelemetryHub
from repro.workloads.patterns import make_pattern

if TYPE_CHECKING:  # imported lazily at runtime: forecast_eval imports us
    from repro.chaos.scorecard import ResilienceScorecard
    from repro.experiments.forecast_eval import CalibrationReport
    from repro.telemetry.slo import SloReport

#: Backwards-compatible alias for the in-process estimator cache, now
#: owned by :mod:`repro.experiments.estimator_cache` (same dict object).
_ESTIMATOR_CACHE = estimator_cache._MEMORY_CACHE


@dataclass(frozen=True)
class ExperimentResult:
    """Everything a sweep needs from one run.

    ``forecasts`` carries the in-vivo forecast-calibration report when
    the run used the predictive policy (``None`` otherwise — there are
    no Figure 5 forecasts to audit without it); ``scorecard`` carries
    the resilience scorecard when the run armed a chaos scenario.
    """

    config: ExperimentConfig
    metrics: ExperimentMetrics
    final_placement: dict[int, tuple[str, ...]]
    forecasts: "CalibrationReport | None" = None
    scorecard: "ResilienceScorecard | None" = None
    #: SLO verdicts when the run armed rules (``config.slo`` or a
    #: caller-armed hub); ``None`` otherwise.
    slo: "SloReport | None" = None
    #: SHA-256 over the run's canonical decision sequence (see
    #: :func:`repro.experiments.history_index.decision_event_key`); two
    #: runs of the same config match byte for byte iff their managers
    #: took identical decisions — the engine/sharding equivalence gates
    #: compare these instead of whole histories.
    decision_digest: str = ""


def __getattr__(name: str):
    # Pre-facade name, shimmed per PEP 562: the implementation moved to
    # repro.experiments.estimator_cache and the public entry point is
    # repro.api.fit_estimator.
    if name == "get_default_estimator":
        import warnings

        warnings.warn(
            "repro.experiments.runner.get_default_estimator is "
            "deprecated; use repro.api.fit_estimator",
            DeprecationWarning,
            stacklevel=2,
        )
        return estimator_cache.get_estimator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class RunWorld:
    """One assembled, started run — everything a snapshot must capture.

    :func:`build_world` returns one with the manager and executor
    already started; driving ``system.engine.run_until(end_time)`` and
    handing it to :func:`finalize_world` completes the experiment.
    :mod:`repro.recovery` pickles this object whole (shared references
    and the event calendar included), which is why it is a plain
    mutable dataclass of live components rather than derived views.
    """

    config: ExperimentConfig
    system: System
    task: object
    assignment: ReplicaAssignment
    executor: PeriodicTaskExecutor
    manager: AdaptiveResourceManager
    injector: object | None
    horizon: float
    #: Where ``run_experiment`` drives the engine (horizon + cooldown).
    end_time: float
    #: Armed when ``config.checkpoint`` is set.
    checkpointer: "object | None" = None
    #: Armed when ``config.failover`` is set.
    failover: "object | None" = None

    @property
    def controller(self) -> AdaptiveResourceManager:
        """The manager currently in charge (standby after a takeover)."""
        if self.failover is not None:
            return self.failover.active  # type: ignore[attr-defined]
        return self.manager


def _make_policy(config: ExperimentConfig):
    """Instantiate the configured step-2 allocator with Table 1 parameters.

    Returns either contract level — the manager lifts per-candidate
    policies through :func:`repro.core.allocation.as_allocator`.
    """
    if config.policy == "predictive":
        return PredictivePolicy(slack_fraction=config.baseline.slack_fraction)
    if config.policy == "nonpredictive":
        return NonPredictivePolicy(
            utilization_threshold=config.baseline.utilization_threshold
        )
    if config.policy in ("market", "fairshare", "oracle"):
        # The zoo reuses Figure 5's slack target as its acceptance bound.
        return get_policy(
            config.policy, slack_fraction=config.baseline.slack_fraction
        )
    # Fall through to the registry for user-registered policies.
    return get_policy(config.policy)


def build_world(
    config: ExperimentConfig,
    estimator: TimingEstimator | None = None,
    seed_offset: int = 0,
    tracer: Tracer | None = None,
    telemetry: TelemetryHub | None = None,
) -> RunWorld:
    """Assemble and start one experiment, returning its live world.

    Everything through ``manager.start`` / ``executor.start`` happens
    here — including arming chaos, the checkpointer
    (``config.checkpoint``) and controller failover
    (``config.failover``).  The caller drives
    ``world.system.engine.run_until(world.end_time)`` and then
    :func:`finalize_world`.
    """
    baseline = config.baseline
    if estimator is None:
        estimator = estimator_cache.get_estimator(baseline)
    if config.slo is not None and telemetry is None:
        # SLO rules need a live event stream; arm an internal hub so
        # callers that never touch telemetry still get verdicts.
        telemetry = TelemetryHub()

    system: System = build_system(
        n_processors=baseline.n_nodes,
        bandwidth_bps=baseline.bandwidth_bps,
        discipline=baseline.discipline,
        quantum=baseline.quantum,
        utilization_window=baseline.utilization_window,
        message_overhead_bytes=baseline.message_overhead_bytes,
        network_mode=baseline.network_mode,
        message_loss_probability=baseline.message_loss_probability,
        speed_factors=baseline.speed_factors,
        seed=baseline.seed + seed_offset,
        tracer=tracer,
        telemetry=telemetry,
        engine=config.engine,
    )
    task = aaw_task(
        period=baseline.period,
        deadline=baseline.deadline,
        noise_sigma=baseline.noise_sigma,
    )
    if estimator.task.n_subtasks != task.n_subtasks:
        raise ConfigurationError(
            "estimator was fitted for a different task shape"
        )
    placement = default_initial_placement(
        task, [p.name for p in system.processors]
    )
    assignment = ReplicaAssignment(task, placement)
    pattern = make_pattern(
        config.pattern,
        min_tracks=config.min_tracks,
        max_tracks=config.max_tracks,
        n_periods=baseline.n_periods,
    )
    horizon = baseline.n_periods * baseline.period
    injector = None
    rm_estimator = estimator
    workload = pattern
    if config.chaos_scenario is not None:
        # Imported lazily: repro.chaos sits above experiments in the
        # layering contract (it wires scenarios *into* runs), so the
        # fault-free path must not pay for the import.
        from repro.chaos import ChaosInjector, get_scenario

        injector = ChaosInjector(
            system, get_scenario(config.chaos_scenario)
        ).arm(horizon)
        workload = injector.wrap_workload(pattern)
        rm_estimator = injector.wrap_estimator(estimator)
    executor = PeriodicTaskExecutor(
        system,
        task,
        assignment,
        workload=workload,
        config=ExecutorConfig(drop_factor=baseline.drop_factor),
    )
    shutdown_strategy = (
        ForecastAwareShutdown(slack_fraction=baseline.slack_fraction)
        if baseline.shutdown_strategy == "forecast_aware"
        else LifoShutdown()
    )
    manager = AdaptiveResourceManager(
        system,
        executor,
        rm_estimator,
        policy=_make_policy(config),
        config=RMConfig(
            slack_fraction=baseline.slack_fraction,
            shutdown_slack_fraction=baseline.shutdown_slack_fraction,
            monitor_window=baseline.monitor_window,
            deadline_strategy=baseline.deadline_strategy,
            initial_d_tracks=config.min_tracks,
            initial_utilization=0.1,
        ),
        shutdown_strategy=shutdown_strategy,
        hardening=HardeningConfig() if config.hardened else None,
    )

    hub = system.engine.telemetry
    if config.slo is not None and hub.enabled and hub.slo is None:
        hub.arm_slo(config.slo)
    if hub.enabled:
        hub.set_run_meta(
            policy=config.policy,
            pattern=config.pattern,
            max_units=config.max_workload_units,
            n_periods=baseline.n_periods,
            n_nodes=baseline.n_nodes,
            seed=baseline.seed + seed_offset,
            horizon=horizon,
        )
    manager.start(baseline.n_periods)
    executor.start(baseline.n_periods)
    end_time = horizon + (baseline.drop_factor + 1.0) * baseline.period
    world = RunWorld(
        config=config,
        system=system,
        task=task,
        assignment=assignment,
        executor=executor,
        manager=manager,
        injector=injector,
        horizon=horizon,
        end_time=end_time,
    )
    if injector is not None:
        # The rm_crash fault actually kills the controller: without
        # failover armed, no further adaptation happens (the baseline
        # the failover gate compares against).
        injector.on_rm_crash = manager.on_rm_crash
    if config.failover:
        # Imported lazily: repro.recovery sits above experiments in the
        # layering contract (it snapshots whole RunWorlds).
        from repro.recovery.failover import FailoverCoordinator

        coordinator = FailoverCoordinator(manager).arm(baseline.n_periods)
        world.failover = coordinator
        if injector is not None:
            injector.on_rm_crash = coordinator.on_rm_crash
    if config.checkpoint is not None:
        from repro.recovery.checkpoint import Checkpointer

        world.checkpointer = Checkpointer(world, config.checkpoint).arm()
    return world


def finalize_world(world: RunWorld) -> ExperimentResult:
    """Compute one finished world's metrics, reports, and digest."""
    config = world.config
    baseline = config.baseline
    system = world.system
    executor = world.executor
    manager = world.controller
    horizon = world.horizon
    hub = system.engine.telemetry
    # One indexed pass over the run's histories feeds the metrics and
    # the calibration pairing below (no consumer rescans the history).
    index = RunHistoryIndex(executor, manager).update()
    metrics = compute_metrics(system, executor, manager, 0.0, horizon, index=index)
    if hub.enabled:
        for processor in system.processors:
            hub.registry.gauge(
                "proc.utilization", {"processor": processor.name}
            ).set(processor.meter.busy_between(0.0, horizon) / horizon)
    forecasts: "CalibrationReport | None" = None
    if config.policy == "predictive":
        # Imported lazily: forecast_eval imports this module.
        from repro.experiments.forecast_eval import calibration_from_run

        forecasts = calibration_from_run(
            world.task, executor, manager, baseline.n_periods, index=index
        )
    scorecard: "ResilienceScorecard | None" = None
    if world.injector is not None:
        from repro.chaos import compute_scorecard

        injector = world.injector
        scorecard = compute_scorecard(
            executor.completed_records(),
            injector.fault_log,
            horizon,
            rm_actions=manager.actions_taken(),
            faults_by_kind=injector.faults_by_kind(),
        )
        scorecard = _with_failover_fields(scorecard, world)
        if hub.enabled:
            scorecard.to_registry(hub.registry)
    slo_report: "SloReport | None" = None
    if hub.slo is not None:
        # One final evaluation at the end of the cooldown window so the
        # tail of the run is covered, then freeze the verdicts.
        hub.slo.evaluate(system.engine.now)
        slo_report = hub.slo.report()
    return ExperimentResult(
        config=config,
        metrics=metrics,
        final_placement=world.assignment.snapshot(),
        forecasts=forecasts,
        scorecard=scorecard,
        decision_digest=index.decision_digest,
        slo=slo_report,
    )


def _with_failover_fields(
    scorecard: "ResilienceScorecard", world: RunWorld
) -> "ResilienceScorecard":
    """Fill the scorecard's controller-crash fields from the run."""
    injector = world.injector
    assert injector is not None
    horizon = world.horizon
    crash_times = [
        injection.time
        for injection in injector.fault_log
        if injection.kind == "rm_crash" and injection.time < horizon
    ]
    if not crash_times:
        return scorecard
    coordinator = world.failover
    if coordinator is not None:
        return dataclass_replace(
            scorecard,
            rm_crashes=len(crash_times),
            takeover_latency_s=coordinator.takeover_latency_s,
            missed_rm_cycles=coordinator.missed_cycles(),
        )
    # No failover: every monitoring boundary after the first crash was
    # silently skipped.
    crash_t = min(crash_times)
    period = world.config.baseline.period
    missed = sum(
        1
        for c in range(world.config.baseline.n_periods)
        if c * period > crash_t
    )
    return dataclass_replace(
        scorecard,
        rm_crashes=len(crash_times),
        missed_rm_cycles=missed,
    )


def run_experiment(
    config: ExperimentConfig,
    estimator: TimingEstimator | None = None,
    seed_offset: int = 0,
    tracer: Tracer | None = None,
    telemetry: TelemetryHub | None = None,
) -> ExperimentResult:
    """Run one experiment end to end and compute its metrics.

    Parameters
    ----------
    config:
        The experiment descriptor.
    estimator:
        A pre-built estimator (profiled once, shared across a sweep).
        Built on demand when omitted.
    seed_offset:
        Added to the baseline seed for replication studies.
    tracer:
        Optional tracer wired into the engine (e.g. a
        :class:`~repro.sim.trace.StreamingTracer` writing JSONL).
    telemetry:
        Optional :class:`~repro.telemetry.hub.TelemetryHub`; instrumented
        components report to it and the run's per-processor utilizations
        are recorded as gauges before returning.  The caller owns the
        hub (and closes its sink).
    """
    world = build_world(
        config,
        estimator=estimator,
        seed_offset=seed_offset,
        tracer=tracer,
        telemetry=telemetry,
    )
    # Let stragglers finish or hit the shedding watchdog.
    world.system.engine.run_until(world.end_time)
    return finalize_world(world)


def sweep_workloads(
    policy: str,
    pattern: str,
    units: tuple[float, ...],
    baseline: BaselineConfig | None = None,
    estimator: TimingEstimator | None = None,
    n_jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[ExperimentResult]:
    """Run one experiment per maximum-workload point (a figure's x-axis).

    With ``n_jobs > 1`` the points are fanned out over a process pool
    (:mod:`repro.parallel`); the parent fits/warms the estimator cache
    once, workers load the identical models by key, and the results come
    back in sweep order — bit-identical to a serial run.
    """
    baseline = baseline if baseline is not None else BaselineConfig()
    configs = [
        ExperimentConfig(
            policy=policy,
            pattern=pattern,
            max_workload_units=max_units,
            baseline=baseline,
        )
        for max_units in units
    ]
    if n_jobs != 1:
        # Imported lazily: repro.parallel imports this module.
        from repro.parallel import run_configs_parallel

        job_results = run_configs_parallel(
            configs, n_jobs=n_jobs, cache_dir=cache_dir, estimator=estimator
        )
        return [
            ExperimentResult(
                config=jr.spec.config,
                metrics=jr.metrics,
                final_placement=jr.final_placement,
            )
            for jr in job_results
        ]
    if estimator is None:
        estimator = estimator_cache.get_estimator(baseline, cache_dir=cache_dir)
    return [run_experiment(config, estimator=estimator) for config in configs]
