"""Offline capacity planning from the fitted models.

The predictive algorithm answers "how many replicas *now*?" online;
the same regression models answer the planning question offline: *for
a given sustained workload, how many replicas of each replicable
subtask does the machine need, and at what workload does it saturate?*

:func:`plan_capacity` replays Figure 5's budget check analytically —
no simulation — over a workload grid, producing the capacity curve
operators would use to size the machine for a mission.

A subtlety inherited from Figure 5's greedy semantics: each subtask
independently takes the *minimum* replica count meeting its own stage
budget, which is not end-to-end optimal.  Right at a replica-step
boundary a slightly *larger* workload can flip a subtask to one more
replica, lowering the end-to-end forecast enough to turn an infeasible
point feasible again.  Feasibility is therefore monotone only once the
allocation saturates (every replicable subtask at ``n_processors``);
within the stepping region the curve may briefly flicker at budget
boundaries — the property tests pin down exactly this contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deadlines import DeadlineAssignment, assign_deadlines
from repro.errors import ConfigurationError
from repro.experiments.report import format_table
from repro.regression.estimator import TimingEstimator
from repro.units import s_to_ms


@dataclass(frozen=True)
class CapacityPoint:
    """Planned allocation at one sustained workload."""

    d_tracks: float
    replicas: dict[int, int]
    feasible: bool
    forecast_end_to_end_s: float

    @property
    def total_replicas(self) -> int:
        """Total replicas across replicable subtasks."""
        return sum(self.replicas.values())


@dataclass(frozen=True)
class CapacityPlan:
    """The capacity curve over a workload grid."""

    points: tuple[CapacityPoint, ...]
    n_processors: int
    utilization_assumption: float

    def saturation_tracks(self) -> float | None:
        """The smallest planned workload that is infeasible (or None)."""
        for point in self.points:
            if not point.feasible:
                return point.d_tracks
        return None

    def render(self) -> str:
        """ASCII capacity table."""
        indices = sorted(self.points[0].replicas) if self.points else []
        headers = ["tracks/period"] + [f"k(st{j})" for j in indices] + [
            "forecast e2e (ms)",
            "feasible",
        ]
        rows = []
        for point in self.points:
            rows.append(
                [point.d_tracks]
                + [point.replicas[j] for j in indices]
                + [s_to_ms(point.forecast_end_to_end_s), str(point.feasible)]
            )
        return format_table(
            headers,
            rows,
            title=f"Capacity plan ({self.n_processors} processors, "
            f"assumed utilization {self.utilization_assumption:.0%})",
        )


def _plan_one(
    estimator: TimingEstimator,
    deadlines: DeadlineAssignment,
    d_tracks: float,
    n_processors: int,
    utilization: float,
    slack_fraction: float,
) -> CapacityPoint:
    task = estimator.task
    replicas: dict[int, int] = {}
    feasible = True
    for subtask in task.subtasks:
        if not subtask.replicable:
            continue
        budget = deadlines.stage_budget(subtask.index)
        threshold = budget * (1.0 - slack_fraction)
        chosen = None
        for k in range(1, n_processors + 1):
            share = d_tracks / k
            eex = estimator.eex_seconds(subtask.index, share, utilization)
            ecd = 0.0
            if subtask.index > 1:
                ecd = estimator.ecd_seconds(
                    subtask.index - 1, share, d_tracks
                )
            if eex + ecd <= threshold:
                chosen = k
                break
        if chosen is None:
            chosen = n_processors
            feasible = False
        replicas[subtask.index] = chosen

    # Forecast end-to-end with the planned allocation.
    total = 0.0
    for subtask in task.subtasks:
        k = replicas.get(subtask.index, 1)
        total += estimator.eex_seconds(subtask.index, d_tracks / k, utilization)
    for message in task.messages:
        k_next = replicas.get(message.index + 1, 1)
        total += estimator.ecd_seconds(
            message.index, d_tracks / k_next, d_tracks
        )
    if total > task.deadline:
        feasible = False
    return CapacityPoint(
        d_tracks=d_tracks,
        replicas=replicas,
        feasible=feasible,
        forecast_end_to_end_s=total,
    )


def plan_capacity(
    estimator: TimingEstimator,
    workload_grid: tuple[float, ...],
    n_processors: int = 6,
    utilization: float = 0.3,
    slack_fraction: float = 0.2,
    deadline_strategy: str = "sequential_eqf",
    reference_d_tracks: float | None = None,
) -> CapacityPlan:
    """Plan replica counts for each sustained workload in the grid.

    Parameters
    ----------
    estimator:
        The fitted timing models.
    workload_grid:
        Sustained tracks/period values to plan for (ascending).
    n_processors:
        Replica ceiling per subtask.
    utilization:
        Assumed background utilization of every node (the planning
        pessimism knob).
    slack_fraction:
        Figure 5's ``sl``.
    reference_d_tracks:
        Workload used for the EQF budget decomposition (defaults to the
        grid's smallest value, mirroring ``dinit``).
    """
    if not workload_grid:
        raise ConfigurationError("workload grid must be non-empty")
    if any(d <= 0 for d in workload_grid):
        raise ConfigurationError("workloads must be positive")
    if list(workload_grid) != sorted(workload_grid):
        raise ConfigurationError("workload grid must be ascending")
    task = estimator.task
    d_ref = (
        reference_d_tracks if reference_d_tracks is not None else workload_grid[0]
    )
    exec_est, comm_est = estimator.chain_estimate_seconds(d_ref, utilization)
    deadlines = assign_deadlines(
        task,
        [max(e, 1e-6) for e in exec_est],
        comm_est,
        strategy=deadline_strategy,
    )
    points = tuple(
        _plan_one(
            estimator, deadlines, d, n_processors, utilization, slack_fraction
        )
        for d in workload_grid
    )
    return CapacityPlan(
        points=points,
        n_processors=n_processors,
        utilization_assumption=utilization,
    )
