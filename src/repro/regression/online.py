"""Online refinement of the regression estimates.

The paper's forecasts are *static*: eq. 3/5 coefficients are fitted
once from offline profiles.  Its related work (§2: [RSYJ97], [BN+98])
refines a-priori estimates with run-time observations — and our in-vivo
audit (E-X11) shows exactly why that matters here: the static forecasts
drift optimistic near saturation because the profiled conditions no
longer match the live ones.

:class:`OnlineCorrectedEstimator` wraps a fitted
:class:`~repro.regression.estimator.TimingEstimator` with one
multiplicative correction factor per subtask, updated as an
exponentially-weighted moving average of observed/predicted execution
ratios:

``c_j <- (1 - alpha) * c_j + alpha * observed / predicted``

The resource manager feeds it observations automatically (duck-typed
``observe_stage`` hook) when it is used as the manager's estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RegressionError
from repro.regression.estimator import TimingEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


@dataclass
class OnlineCorrectedEstimator:
    """EWMA-corrected wrapper around a fitted estimator.

    Implements the same interface the resource manager consumes
    (``task``, ``eex_seconds``, ``ecd_seconds``,
    ``chain_estimate_seconds``) plus the ``observe_stage`` feedback
    hook.

    Attributes
    ----------
    base:
        The statically fitted estimator.
    alpha:
        EWMA weight of each new observation (0 disables learning).
    clamp:
        Correction factors are clamped to ``[1/clamp, clamp]`` so a few
        pathological observations cannot destabilize allocation.
    """

    base: TimingEstimator
    alpha: float = 0.3
    clamp: float = 5.0
    corrections: dict[int, float] = field(default_factory=dict)
    observations: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise RegressionError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.clamp < 1.0:
            raise RegressionError(f"clamp must be >= 1, got {self.clamp}")
        for subtask in self.base.task.subtasks:
            self.corrections.setdefault(subtask.index, 1.0)

    # -- estimator interface ------------------------------------------------------

    @property
    def task(self):
        """The task the base estimator was fitted for."""
        return self.base.task

    @property
    def latency_models(self):
        """The base eq. 3 surfaces (corrections are applied on top)."""
        return self.base.latency_models

    @property
    def comm_model(self):
        """The base eq. 4 communication model."""
        return self.base.comm_model

    def correction(self, subtask_index: int) -> float:
        """Current multiplicative correction for a subtask."""
        try:
            return self.corrections[subtask_index]
        except KeyError:
            raise RegressionError(
                f"unknown subtask index {subtask_index}"
            ) from None

    def eex_seconds(self, subtask_index: int, d_tracks: float, u: float) -> float:
        """Corrected ``eex``: base forecast times the learned factor."""
        return self.base.eex_seconds(subtask_index, d_tracks, u) * (
            self.correction(subtask_index)
        )

    def eex_seconds_many(
        self, subtask_index: int, d_tracks: float, utilizations: list[float]
    ) -> "np.ndarray":
        """Corrected batched ``eex`` (element-wise ``base * factor``)."""
        return self.base.eex_seconds_many(subtask_index, d_tracks, utilizations) * (
            self.correction(subtask_index)
        )

    def ecd_seconds(
        self, message_index: int, d_tracks: float, total_periodic_tracks: float
    ) -> float:
        """``ecd`` passes through uncorrected (eq. 5/6 are structural)."""
        return self.base.ecd_seconds(message_index, d_tracks, total_periodic_tracks)

    def chain_estimate_seconds(
        self, d_tracks: float, u: float, total_periodic_tracks: float | None = None
    ) -> tuple[list[float], list[float]]:
        """Corrected whole-chain estimates (for deadline assignment)."""
        exec_est, comm_est = self.base.chain_estimate_seconds(
            d_tracks, u, total_periodic_tracks
        )
        corrected = [
            est * self.correction(subtask.index)
            for est, subtask in zip(exec_est, self.base.task.subtasks)
        ]
        return corrected, comm_est

    def end_to_end_estimate_seconds(
        self, d_tracks: float, u: float, total_periodic_tracks: float | None = None
    ) -> float:
        """Corrected end-to-end estimate."""
        exec_est, comm_est = self.chain_estimate_seconds(
            d_tracks, u, total_periodic_tracks
        )
        return sum(exec_est) + sum(comm_est)

    # -- feedback -----------------------------------------------------------------

    def observe_stage(
        self,
        subtask_index: int,
        share_tracks: float,
        utilization: float,
        observed_exec_s: float,
    ) -> None:
        """Update the subtask's correction from one observed execution.

        ``share_tracks``/``utilization`` are the conditions the base
        model would have been queried with; ``observed_exec_s`` is the
        stage's measured execution latency.
        """
        if observed_exec_s <= 0.0 or share_tracks <= 0.0:
            return
        predicted = self.base.eex_seconds(subtask_index, share_tracks, utilization)
        if predicted <= 0.0:
            return
        ratio = observed_exec_s / predicted
        current = self.correction(subtask_index)
        updated = (1.0 - self.alpha) * current + self.alpha * ratio
        self.corrections[subtask_index] = min(
            self.clamp, max(1.0 / self.clamp, updated)
        )
        self.observations += 1
