"""The timing-estimator facade used by the resource manager.

:class:`TimingEstimator` binds one
:class:`~repro.regression.latency_model.ExecutionLatencyModel` per
subtask and one
:class:`~repro.regression.comm.CommunicationDelayModel` per task to a
:class:`~repro.tasks.model.PeriodicTask`, and answers the two questions
the algorithms of §4 ask:

* ``eex(st, d, u)`` — estimated execution time of a subtask (replica)
  processing ``d`` items on a processor at utilization ``u``;
* ``ecd(m, d, c)`` — estimated communication delay of a message carrying
  ``d`` items in a period whose total workload is known.

Both the predictive and the non-predictive algorithm consume the
estimator (the paper's step 1 — EQF deadline assignment and monitoring —
is common to both); only the predictive algorithm uses it for allocation
forecasting (step 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RegressionError
from repro.regression.comm import CommunicationDelayModel
from repro.regression.latency_model import ExecutionLatencyModel
from repro.tasks.model import PeriodicTask


@dataclass(frozen=True)
class TimingEstimator:
    """Regression-backed implementation of the paper's ``eex``/``ecd``.

    Attributes
    ----------
    task:
        The task whose subtasks/messages are estimated.
    latency_models:
        One fitted eq. 3 surface per subtask index (1-based; **every**
        subtask needs one — deadline assignment covers the whole chain).
    comm_model:
        The fitted eq. 4/5/6 communication model.
    """

    task: PeriodicTask
    latency_models: dict[int, ExecutionLatencyModel]
    comm_model: CommunicationDelayModel

    def __post_init__(self) -> None:
        missing = [
            s.index for s in self.task.subtasks if s.index not in self.latency_models
        ]
        if missing:
            raise RegressionError(
                f"no latency model for subtask indices {missing} of task "
                f"{self.task.name}"
            )

    # -- paper interface ---------------------------------------------------------

    def eex_seconds(self, subtask_index: int, d_tracks: float, u: float) -> float:
        """``eex(st, d, u)`` in seconds (§3 property 9)."""
        model = self.latency_models.get(subtask_index)
        if model is None:
            raise RegressionError(
                f"unknown subtask index {subtask_index} for task {self.task.name}"
            )
        return model.predict_seconds(d_tracks, u)

    def eex_seconds_many(
        self, subtask_index: int, d_tracks: float, utilizations: list[float]
    ) -> np.ndarray:
        """Batched ``eex``: one share forecast at many utilizations.

        Element ``i`` is bit-identical to ``eex_seconds(subtask_index,
        d_tracks, utilizations[i])``; used by the Figure 5 / Figure 6
        replica sweeps so one NumPy call covers the whole replica set.
        """
        model = self.latency_models.get(subtask_index)
        if model is None:
            raise RegressionError(
                f"unknown subtask index {subtask_index} for task {self.task.name}"
            )
        return model.predict_seconds_many(d_tracks, utilizations)

    def ecd_seconds(
        self, message_index: int, d_tracks: float, total_periodic_tracks: float
    ) -> float:
        """``ecd(m, d, c)`` in seconds (§3 property 10).

        ``d_tracks`` is the share carried by *this* message (plus the
        per-replica context traffic the message spec defines); the
        buffer term uses the total periodic workload per eq. 5.
        """
        message = self.task.message(message_index)
        return self.comm_model.predict_seconds(
            message.wire_payload_bytes(
                d_tracks, max(d_tracks, total_periodic_tracks)
            ),
            total_periodic_tracks,
        )

    # -- chain-level helpers -------------------------------------------------------

    def chain_estimate_seconds(
        self, d_tracks: float, u: float, total_periodic_tracks: float | None = None
    ) -> tuple[list[float], list[float]]:
        """Estimated per-stage durations for the whole unreplicated chain.

        Returns ``(subtask_seconds, message_seconds)`` where the data
        stream of size ``d_tracks`` flows through every stage and every
        processor sits at utilization ``u``.  This is what the EQF
        deadline assignment feeds on (paper §4.1, with ``dinit``,
        ``uinit``, ``cinit``).
        """
        total = d_tracks if total_periodic_tracks is None else total_periodic_tracks
        exec_times = [
            self.eex_seconds(s.index, d_tracks, u) for s in self.task.subtasks
        ]
        comm_times = [
            self.ecd_seconds(m.index, d_tracks, total) for m in self.task.messages
        ]
        return exec_times, comm_times

    def end_to_end_estimate_seconds(
        self, d_tracks: float, u: float, total_periodic_tracks: float | None = None
    ) -> float:
        """Estimated unreplicated end-to-end latency of the chain."""
        exec_times, comm_times = self.chain_estimate_seconds(
            d_tracks, u, total_periodic_tracks
        )
        return sum(exec_times) + sum(comm_times)
