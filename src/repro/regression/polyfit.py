"""Ordinary least squares with diagnostics.

A thin, explicit OLS layer over :func:`numpy.linalg.lstsq`: callers build
a design matrix (see :mod:`repro.regression.design`), get back an
:class:`OLSResult` carrying coefficients, goodness-of-fit statistics and
(optional, via scipy) coefficient standard errors.  The regression models
of the paper (eqs. 3 and 5) are all small dense problems, so numerical
exotica (regularization, QR pivoting) is deliberately out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InsufficientDataError, RegressionError


@dataclass(frozen=True)
class OLSResult:
    """Result of an ordinary-least-squares fit.

    Attributes
    ----------
    coefficients:
        Fitted parameter vector, one entry per design-matrix column.
    r_squared:
        Coefficient of determination against the mean-only model (may be
        negative for through-origin fits on pathological data).
    rmse:
        Root-mean-square residual in the units of ``y``.
    n_samples:
        Number of observations used.
    std_errors:
        Per-coefficient standard errors (NaN when the fit is saturated).
    """

    coefficients: np.ndarray
    r_squared: float
    rmse: float
    n_samples: int
    std_errors: np.ndarray

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Apply the fitted coefficients to a design matrix."""
        design = np.asarray(design, dtype=float)
        if design.ndim != 2 or design.shape[1] != self.coefficients.shape[0]:
            raise RegressionError(
                f"design matrix shape {design.shape} incompatible with "
                f"{self.coefficients.shape[0]} coefficients"
            )
        return design @ self.coefficients


def ols_fit(design: np.ndarray, y: np.ndarray) -> OLSResult:
    """Fit ``y ~ design @ beta`` by ordinary least squares.

    Parameters
    ----------
    design:
        ``(n, p)`` design matrix.  Include a column of ones explicitly if
        an intercept is wanted; through-origin fits simply omit it.
    y:
        ``(n,)`` response vector.

    Raises
    ------
    InsufficientDataError
        If ``n < p``.
    RegressionError
        If the inputs contain NaN/inf or the design is empty.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if design.ndim != 2:
        raise RegressionError(f"design must be 2-D, got shape {design.shape}")
    n, p = design.shape
    if p == 0:
        raise RegressionError("design matrix has no columns")
    if y.shape[0] != n:
        raise RegressionError(
            f"{n} design rows but {y.shape[0]} responses"
        )
    if n < p:
        raise InsufficientDataError(
            f"need at least {p} samples to fit {p} coefficients, got {n}"
        )
    if not (np.all(np.isfinite(design)) and np.all(np.isfinite(y))):
        raise RegressionError("design/response contain non-finite values")

    coeffs, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
    if rank < p:
        # Rank-deficient designs happen when the profile grid degenerates
        # (e.g. a single utilization level feeding the stage-2 fit).  The
        # minimum-norm solution is still returned, but flag it loudly.
        raise RegressionError(
            f"rank-deficient design (rank {rank} < {p} columns); "
            "widen the profiling grid"
        )

    residuals = y - design @ coeffs
    ss_res = float(residuals @ residuals)
    centered = y - y.mean()
    ss_tot = float(centered @ centered)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    rmse = float(np.sqrt(ss_res / n))

    dof = n - p
    if dof > 0:
        sigma2 = ss_res / dof
        try:
            cov = sigma2 * np.linalg.inv(design.T @ design)
            std_errors = np.sqrt(np.clip(np.diag(cov), 0.0, None))
        except np.linalg.LinAlgError:  # pragma: no cover - guarded by rank check
            std_errors = np.full(p, np.nan)
    else:
        std_errors = np.full(p, np.nan)

    return OLSResult(
        coefficients=coeffs,
        r_squared=float(r_squared),
        rmse=rmse,
        n_samples=n,
        std_errors=std_errors,
    )
