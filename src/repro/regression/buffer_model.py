"""Buffer-delay regression — paper eq. 5.

``Dbuf(d, c) = k * sum_i ds(T_i, c)``

The paper observed that the time a message spends in host/network buffers
before transmission grows linearly with the *total* periodic workload
(all tasks' data items in the current period) and fit a single slope
``k`` (Table 3: k = 0.7 for both replicable subtasks).  We reproduce
that: a through-origin linear fit of measured queueing delays against
total periodic track counts.

Units: the model stores ``k`` in **milliseconds per track** so that a
Table 3-style coefficient can be plugged in directly; helper methods
convert to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RegressionError
from repro.regression.design import linear_through_origin_features
from repro.regression.polyfit import ols_fit
from repro.units import ms_to_s


@dataclass(frozen=True)
class BufferDelayModel:
    """Fitted eq. 5 line: buffer delay vs total periodic workload.

    Attributes
    ----------
    k_ms_per_track:
        Slope: milliseconds of buffer delay per data item in the period's
        total workload.
    r_squared:
        Goodness of fit (1.0 for hand-specified models).
    n_samples:
        Observations used by the fit.
    """

    k_ms_per_track: float
    r_squared: float = 1.0
    n_samples: int = 0

    def predict_ms(self, total_tracks: float) -> float:
        """Forecast buffer delay in milliseconds for a period carrying
        ``total_tracks`` items across all tasks."""
        if total_tracks < 0.0:
            raise RegressionError(f"negative workload {total_tracks}")
        return max(0.0, self.k_ms_per_track * total_tracks)

    def predict_seconds(self, total_tracks: float) -> float:
        """Forecast buffer delay in seconds."""
        return ms_to_s(self.predict_ms(total_tracks))

    @classmethod
    def fit(
        cls, total_tracks: np.ndarray, buffer_delay_ms: np.ndarray
    ) -> "BufferDelayModel":
        """Fit the through-origin line from measurements.

        Parameters
        ----------
        total_tracks:
            Per-observation total periodic workload (items).
        buffer_delay_ms:
            Observed buffer delays in milliseconds.
        """
        x = np.asarray(total_tracks, dtype=float).ravel()
        y = np.asarray(buffer_delay_ms, dtype=float).ravel()
        if x.shape != y.shape:
            raise RegressionError("workload and delay arrays must align")
        result = ols_fit(linear_through_origin_features(x), y)
        return cls(
            k_ms_per_track=float(result.coefficients[0]),
            r_squared=result.r_squared,
            n_samples=result.n_samples,
        )
