"""JSON persistence for fitted regression models.

Profiling a full (utilization x data size) grid is the slow part of an
experiment, so fitted models can be saved once and reloaded by later
runs (the benchmark harness caches them per configuration).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import RegressionError
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel

_FORMAT_VERSION = 1


def latency_model_to_dict(model: ExecutionLatencyModel) -> dict[str, Any]:
    """Serializable representation of an eq. 3 surface."""
    return {
        "kind": "execution_latency",
        "version": _FORMAT_VERSION,
        "subtask_name": model.subtask_name,
        "a": list(model.a),
        "b": list(model.b),
        "r_squared": model.r_squared,
        "n_samples": model.n_samples,
    }


def latency_model_from_dict(data: dict[str, Any]) -> ExecutionLatencyModel:
    """Inverse of :func:`latency_model_to_dict`."""
    _check_kind(data, "execution_latency")
    a = data["a"]
    b = data["b"]
    if len(a) != 3 or len(b) != 3:
        raise RegressionError("latency model requires 3 a- and 3 b-coefficients")
    return ExecutionLatencyModel(
        subtask_name=str(data["subtask_name"]),
        a=(float(a[0]), float(a[1]), float(a[2])),
        b=(float(b[0]), float(b[1]), float(b[2])),
        r_squared=float(data.get("r_squared", 1.0)),
        n_samples=int(data.get("n_samples", 0)),
    )


def comm_model_to_dict(model: CommunicationDelayModel) -> dict[str, Any]:
    """Serializable representation of an eq. 4 model."""
    return {
        "kind": "communication_delay",
        "version": _FORMAT_VERSION,
        "buffer": {
            "k_ms_per_track": model.buffer.k_ms_per_track,
            "r_squared": model.buffer.r_squared,
            "n_samples": model.buffer.n_samples,
        },
        "transmission": {
            "bandwidth_bps": model.transmission.bandwidth_bps,
            "overhead_bytes": model.transmission.overhead_bytes,
        },
    }


def comm_model_from_dict(data: dict[str, Any]) -> CommunicationDelayModel:
    """Inverse of :func:`comm_model_to_dict`."""
    _check_kind(data, "communication_delay")
    buf = data["buffer"]
    trans = data["transmission"]
    return CommunicationDelayModel(
        buffer=BufferDelayModel(
            k_ms_per_track=float(buf["k_ms_per_track"]),
            r_squared=float(buf.get("r_squared", 1.0)),
            n_samples=int(buf.get("n_samples", 0)),
        ),
        transmission=TransmissionModel(
            bandwidth_bps=float(trans["bandwidth_bps"]),
            overhead_bytes=float(trans["overhead_bytes"]),
        ),
    )


def save_models(
    path: str | Path,
    latency_models: dict[int, ExecutionLatencyModel],
    comm_model: CommunicationDelayModel,
) -> None:
    """Save an estimator's model set to a JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "latency_models": {
            str(idx): latency_model_to_dict(m) for idx, m in latency_models.items()
        },
        "comm_model": comm_model_to_dict(comm_model),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_models(
    path: str | Path,
) -> tuple[dict[int, ExecutionLatencyModel], CommunicationDelayModel]:
    """Load a model set saved by :func:`save_models`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RegressionError(f"cannot load models from {path}: {exc}") from exc
    latency_models = {
        int(idx): latency_model_from_dict(entry)
        for idx, entry in payload["latency_models"].items()
    }
    comm_model = comm_model_from_dict(payload["comm_model"])
    return latency_models, comm_model


def _check_kind(data: dict[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise RegressionError(f"expected a {expected!r} payload, got {kind!r}")
